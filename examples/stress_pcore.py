#!/usr/bin/env python
"""Test case 1 of the paper: stress-test pCore with 16 quicksort tasks.

"pTest kept the number of active tasks at 16 in pCore ... All of 16
active tasks performed the same quick-sort algorithm to individually
sort 128 integer elements ... During the first testing period, pTest
detected the crash of pCore that was caused by the failure of garbage
collection."

This script runs the scenario twice: with the seeded GC fault (the
kernel leaks tasks deleted mid-flight and eventually panics in
task_create) and with the fault fixed (the control — no crash).

Run:  python examples/stress_pcore.py [seed]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.scenarios import stress_case1


def run(buggy: bool, seed: int) -> None:
    label = "buggy GC (paper's pCore)" if buggy else "fixed GC (control)"
    print(f"\n--- stress test with {label}, seed={seed} ---")
    test = stress_case1(seed=seed, buggy_gc=buggy, max_ticks=60_000)
    result = test.run()
    print(f"result: {result.summary()}")
    print(
        f"  rounds of create/churn/delete: {result.rounds}, "
        f"commands issued: {result.commands_issued}"
    )
    if result.found_bug:
        report = result.report
        print(f"  found at tick {report.found_at}")
        print(f"  anomaly: {report.primary.describe()}")
        print(f"  kernel panic: {report.kernel_panic}")
        print("  reproduction: re-run stress_case1 with the same seed —")
        print(f"    every component derives from seed={report.config.seed}.")
    else:
        print("  no crash: the garbage collector reclaimed every task.")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print("pTest test case 1: 16 quicksort-128 tasks under churn")
    run(buggy=True, seed=seed)
    run(buggy=False, seed=seed)


if __name__ == "__main__":
    main()
