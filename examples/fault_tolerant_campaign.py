#!/usr/bin/env python
"""Fault-tolerant campaign: survive a hostile execution fabric.

A dining-philosophers deadlock hunt runs under deliberately injected
chaos — seeded transient worker kills and delays from
:class:`repro.ptest.chaos.ChaosSpec`, plus one *planted hang* (a poison
cell that sleeps far past any deadline).  The watchdog's per-cell
deadline detects the hang, the quarantine machinery bisects the batch
down to the offending ``(variant, seed)`` cell, and the campaign still
completes — reporting the same deadlock detections a clean run finds on
the surviving seeds, plus an explicit quarantine ledger for the cell it
had to give up on.

Run:  python examples/fault_tolerant_campaign.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ptest.campaign import Campaign
from repro.ptest.chaos import ChaosSpec

SEEDS = tuple(range(6))
HUNG_SEED = 3  # the planted poison cell: hangs every time it runs


def build_campaign(chaos: ChaosSpec | None) -> Campaign:
    campaign = Campaign(
        seeds=SEEDS,
        workers=2,
        batch_size=1,
        chaos=chaos,
        cell_timeout=2.0 if chaos else None,
        quarantine=chaos is not None,
    )
    campaign.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
    return campaign


def main() -> None:
    print("fault-tolerant campaign: philosophers deadlock hunt under chaos")

    chaos = ChaosSpec(
        seed=17,
        kill_rate=0.25,  # transient: resubmission re-draws the fate
        delay_rate=0.25,
        delay_s=0.01,
        hang_seeds=frozenset({HUNG_SEED}),  # poison: hangs on every attempt
        hang_s=30.0,
    )
    print(f"chaos: {chaos.describe()}")
    print(f"watchdog: 2.0s/cell; quarantine: on; planted hang: seed {HUNG_SEED}")

    campaign = build_campaign(chaos)
    rows = campaign.run()
    report = campaign.last_quarantine

    row = rows[0]
    print(
        f"\nsurvived: {row.runs} of {len(SEEDS)} cells ran, "
        f"{row.detections} deadlock detection(s) [{row.kinds or '-'}]"
    )
    print(report.describe())
    for cell in report.cells:
        print(f"  quarantined: {cell.describe()}")

    # The invariant that makes chaos testing trustworthy: completed
    # cells are bit-identical to a clean run over the surviving seeds.
    reference = Campaign(seeds=tuple(s for s in SEEDS if s != HUNG_SEED))
    reference.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
    clean_row = reference.run()[0]
    identical = (row.runs, row.detections, row.kinds) == (
        clean_row.runs,
        clean_row.detections,
        clean_row.kinds,
    )
    print(
        "\ncross-check vs clean run on surviving seeds: "
        + ("bit-identical" if identical else "MISMATCH")
    )
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
