#!/usr/bin/env python
"""Quickstart: run an adaptive stress test against the simulated pCore.

Builds the paper's pipeline end to end with defaults: RE (2) + the
Fig. 5 probability distribution -> PFA -> test patterns -> merged
pattern -> committer driving the simulated OMAP5912 -> bug detector.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ptest import PTestConfig, run_adaptive_test
from repro.ptest.pcore_model import PCORE_REGULAR_EXPRESSION


def main() -> None:
    print("pTest quickstart")
    print(f"  behaviour model RE (2): {PCORE_REGULAR_EXPRESSION}")

    config = PTestConfig(
        pattern_count=4,   # n: patterns = master-thread/slave-task pairs
        pattern_size=8,    # s: services per pattern
        op="round_robin",  # the merge policy
        seed=2009,         # everything derives from this seed
        max_ticks=20_000,
    )
    print(f"  config: {config.describe()}")

    result = run_adaptive_test(config)

    print(f"\nresult: {result.summary()}")
    print(f"  generated patterns (one per pair):")
    for index, pattern in enumerate(result.patterns):
        print(f"    pair {index}: {' -> '.join(pattern)}")
    print(f"  merged pattern length: {result.merged_length}")
    print(f"  kernel service counts: {result.service_counts}")
    print(
        f"  commands: {result.commands_issued} issued, "
        f"{result.commands_completed} completed, "
        f"{result.commands_failed} error replies"
    )
    if result.found_bug:
        print("\nbug report:")
        print(result.report.describe())
    else:
        print("\nno anomalies — the default kernel is healthy.")
        print("try examples/stress_pcore.py for the paper's test case 1.")


if __name__ == "__main__":
    main()
