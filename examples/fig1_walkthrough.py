#!/usr/bin/env python
"""Walk through the paper's Fig. 1 concurrency-fault example.

Two slave processes S1/S2 (suspended in pCore) spin on shared-memory
flags; master processes resume them remotely.  One resume order
terminates; the other wedges the system with states d, e, i, j
unreachable — and pTest's detector flags the starvation.

Run:  python examples/fig1_walkthrough.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.fig1 import run_fig1


def show(order: str) -> None:
    result = run_fig1(order)
    print(f"\n--- resume order: {order!r} ---")
    print(f"  terminated: {result.terminated} (after {result.ticks} ticks)")
    print(f"  S1 exited: {result.s1_exited}, S2 exited: {result.s2_exited}")
    print(f"  line labels reached: {''.join(sorted(result.reached))}")
    if result.unreachable:
        print(f"  unreachable states: {''.join(sorted(result.unreachable))}")
        print("  (the paper: 'The state d, e, i, j are unreachable.')")
    if result.anomalies:
        for anomaly in result.anomalies:
            print(f"  detector: {anomaly.describe()}")
    else:
        print("  detector: quiet")


def main() -> None:
    print("Fig. 1: a concurrency fault in the master-slave model")
    print("  S1: a: x=1; b: while(y==1) c: yield(); d: x=0; e: end")
    print("  S2: f: y=1; g: while(x==1) h: yield(); i: y=0; j: end")
    print("  M1: K: remote_cmd(Resume, S1);  M2: L: remote_cmd(Resume, S2)")
    show("good")  # L f g K i j a b d e
    show("bad")   # K a L f g h ... (S2 outranks S1 and spins forever)


if __name__ == "__main__":
    main()
