#!/usr/bin/env python
"""Batch sampling: many seeded pattern walks as one vectorized sweep.

Demonstrates the numpy fast path introduced for campaign-scale runs:

1. ``BatchSampler`` draws one pattern per seed in lockstep and the
   result is *bit-identical* to independent ``PatternSampler`` walks —
   verified here pattern by pattern, on the fast path and the scalar
   fallback alike.
2. A ``Campaign`` run with ``batch_sampling`` on/off produces identical
   summary rows (the fast path only changes worker-side throughput).
3. Recorded wait-for-graph deltas (``record_wait_deltas=True``) replay
   through the batched deadlock screen, re-confirming the reported
   cycle offline.

Run:  python examples/batch_sampling.py
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.automata.batch import BatchSampler, numpy_available
from repro.automata.compiled import CompiledPFA
from repro.automata.sampling import PatternSampler
from repro.ptest.batchdetect import audit_deadlocks
from repro.ptest.detector import BugDetector
from repro.ptest.pcore_model import pcore_pfa
from repro.workloads.scenarios import philosophers_case2


def main() -> None:
    print("batch sampling demo")
    print(f"  numpy fast path available: {numpy_available()}")

    # -- 1. lockstep batch == N scalar walks, bit for bit -------------
    compiled = CompiledPFA.from_pfa(pcore_pfa())
    seeds = [(1 << 40) + 977 * index for index in range(256)]
    batch = BatchSampler(compiled, seeds)
    started = time.perf_counter()
    drawn = batch.sample(8)
    elapsed = time.perf_counter() - started
    scalar = [
        PatternSampler(compiled, seed=seed).sample(8) for seed in seeds
    ]
    assert drawn == scalar, "batch must equal the scalar walks exactly"
    print(
        f"  {len(seeds)} patterns in one lockstep sweep "
        f"({elapsed * 1e3:.1f} ms, used_numpy={batch.used_numpy}): "
        f"bit-identical to {len(seeds)} scalar samplers"
    )
    print(f"    cell 0: {' -> '.join(drawn[0].symbols)}")

    fallback = BatchSampler(compiled, seeds, use_numpy=False)
    assert fallback.sample(8) == [
        PatternSampler(compiled, seed=seed).sample(8) for seed in seeds
    ]
    print("    scalar fallback (use_numpy=False): same patterns")

    # -- 2. recorded wait-graph deltas replay through the batch screen
    test = philosophers_case2(seed=0, op="cyclic")
    test.config = replace(test.config, record_wait_deltas=True)
    result = test.run()
    verdict = result.summary().split(":")[0]
    print(
        f"\n  philosophers run: {verdict}, "
        f"{len(result.wait_deltas)} wait-graph delta(s) recorded"
    )
    snapshots = [edges for _tick, edges in result.wait_deltas]
    cycles = BugDetector.sweep_batch(snapshots)
    for (tick, _edges), tids in zip(result.wait_deltas, cycles):
        shown = "acyclic" if tids is None else f"cycle tids={tids}"
        print(f"    tick {tick}: {shown}")
    audit = audit_deadlocks([result])
    print(
        f"  audit: {audit.confirmed}/{audit.runs} reported deadlock(s) "
        f"re-confirmed from recorded deltas "
        f"(consistent={audit.consistent})"
    )


if __name__ == "__main__":
    main()
