#!/usr/bin/env python
"""Zoom-then-replay: a composed refinement pipeline on one warm pool.

Stage 1 (``grid_zoom``, 2 rounds) sweeps the dining philosophers over a
2 x 3 grid — buggy cyclic acquisition vs the ordered control, across
three fork-hold durations — and narrows toward the highest-detection
cell.  Stage 2 (``replay``, 2 rounds) then takes the zoomed-in round's
recorded deadlock interleavings, re-merges them, and re-drives them as
merged-pattern replay cells across every seed.

The :class:`PolicyPipeline` is itself a ``RefinePolicy``, so the
engine, the warm worker pool and the determinism contract are exactly
those of a single-policy adaptive campaign.  Between rounds the
campaign pre-warms the pool: each refined round's new refs (the zoomed
grid, then the replay cells) ship to the workers while the parent is
still setting the round up, so no round's first batch pays scenario
resolution or automaton compilation.  Watch ``pool_id`` stay constant
and the prewarmed-refs counter grow.

Run:  python examples/pipeline_sweep.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ptest.adaptive import AdaptiveCampaign, GridZoom, ReplayFocus
from repro.ptest.pipeline import PipelineStage, PolicyPipeline
from repro.ptest.pool import shutdown_pools

SEEDS = (0, 1, 2)


def main() -> None:
    pipeline = PolicyPipeline(
        (
            PipelineStage(GridZoom(), rounds=2, name="zoom"),
            PipelineStage(
                ReplayFocus(ops=("cyclic",), max_sources=2),
                rounds=2,
                name="replay",
            ),
        )
    )
    campaign = AdaptiveCampaign(
        seeds=SEEDS,
        rounds=pipeline.total_rounds(),
        policy=pipeline,
        workers=2,
    )
    campaign.add_grid(
        "phil",
        "philosophers",
        {"ordered": [False, True], "hold_steps": [15, 30, 60]},
    )
    print(
        f"pipeline sweep: {pipeline.describe()} x {len(SEEDS)} seeds "
        f"({pipeline.total_rounds()} rounds max)"
    )
    result = campaign.run()
    stage_labels = dict(pipeline.stage_log)
    for observation in result.rounds:
        stage = stage_labels.get(observation.index)
        stage_note = f", stage={stage}" if stage else ""
        print(
            f"\nround {observation.index + 1} "
            f"(pool_id={observation.pool_id}{stage_note}): "
            f"{len(observation.rows)} variant(s), "
            f"{observation.total_detections} detection(s)"
        )
        for row in observation.rows:
            kinds = f"  [{', '.join(row.kinds)}]" if row.kinds else ""
            print(
                f"  {row.variant:<58} {row.detections}/{row.runs}{kinds}"
            )
    print(
        f"\npool stable across the composed schedule: {result.pool_stable}"
        f"; prewarmed {result.prewarmed_refs} ref(s) between rounds"
        + ("  (stopped early)" if result.stopped_early else "")
    )
    shutdown_pools()


if __name__ == "__main__":
    main()
