#!/usr/bin/env python
"""Test case 2 of the paper: hunt the dining-philosophers deadlock.

"We implemented a buggy version of the dining philosophers problem ...
We set the pattern merger of pTest to produce the test pattern that
forced these tasks to complete several set of cyclic execution
sequences ... A potential deadlock situation was also discovered."

This script compares merge policies on the buggy workload (cyclic
acquisition order) and shows the ordered-acquisition control staying
clean, then prints the Definition 2 state records of the deadlocked run.

Run:  python examples/deadlock_hunt.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import philosophers_case2

OPS = ("cyclic", "round_robin", "random", "burst")
SEEDS = range(6)


def main() -> None:
    print("pTest test case 2: buggy dining philosophers (3 tasks, 3 forks)")
    print(f"{'merge op':>12} | {'deadlocks':>9} | mean detect tick")
    print("-" * 44)
    sample_report = None
    for op in OPS:
        found, ticks = 0, []
        for seed in SEEDS:
            result = philosophers_case2(seed=seed, op=op).run()
            if (
                result.found_bug
                and result.report.primary.kind is AnomalyKind.DEADLOCK
            ):
                found += 1
                ticks.append(result.report.primary.detected_at)
                if sample_report is None and op == "cyclic":
                    sample_report = result.report
        mean_tick = sum(ticks) / len(ticks) if ticks else float("nan")
        print(f"{op:>12} | {found:>4}/{len(list(SEEDS)):<4} | {mean_tick:10.0f}")

    print("\ncontrol: ordered acquisition (deadlock-free by design)")
    for op in OPS:
        result = philosophers_case2(seed=0, op=op, ordered=True).run()
        verdict = "CLEAN" if not result.found_bug else "ANOMALY?!"
        print(f"{op:>12} | {verdict}")

    if sample_report is not None:
        print("\nstate records at detection (Definition 2 five-tuples):")
        for record in sample_report.state_records:
            print(f"  {record.describe()}")
        print("\nwait-for cycle:")
        print(f"  {sample_report.primary.description}")


if __name__ == "__main__":
    main()
