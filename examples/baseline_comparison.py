#!/usr/bin/env python
"""Compare pTest against ConTest-style random noise and CHESS-lite.

The paper positions pTest between ConTest (random interleaving, cheap
but unstructured) and CHESS (systematic model checking, thorough but
explosive).  This script runs all three against the same seeded faults
and prints detection rate, commands spent, and wasted (error-reply)
commands.

The pTest and random sweeps dispatch through
:class:`~repro.ptest.campaign.Campaign`'s batched work-queue executor
as registry :class:`~repro.workloads.registry.ScenarioRef` variants, so
on a multi-core machine the (variant, seed) cells run in parallel; pass
``--workers 1`` to force the serial path (results are identical either
way).

Run:  python examples/baseline_comparison.py [--workers N]
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.systematic import SystematicExplorer
from repro.ptest.campaign import Campaign
from repro.ptest.generator import PatternGenerator
from repro.workloads.scenarios import lifecycle_pfa, philosophers_case2

SEEDS = tuple(range(5))


def run_sweeps(workers: int) -> dict[str, tuple[int, int, int]]:
    """pTest and random sweeps as one campaign over the executor."""
    campaign = Campaign(seeds=SEEDS, workers=workers)
    campaign.add_scenario("ptest", "philosophers", op="cyclic")
    campaign.add_scenario("random", "philosophers_random")
    campaign.run()
    summary = {}
    for variant, runs in campaign.results.items():
        summary[variant] = (
            sum(int(run.found_bug) for run in runs),
            sum(run.commands_issued for run in runs),
            sum(run.commands_failed for run in runs),
        )
    return summary


def run_systematic() -> tuple[int, int, int]:
    found = runs = 0
    for seed in SEEDS:
        scenario = philosophers_case2(seed=seed)
        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=seed
        )
        explorer = SystematicExplorer(
            config=scenario.config,
            patterns=generator.generate_batch(3, 3),
            programs=dict(scenario.programs),
            switch_bound=4,
            max_runs=30,
        )
        result = explorer.explore()
        runs += result.executed
        found += int(result.found_bug)
    return found, runs, 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="campaign process-pool width (default: min(4, cpu_count))",
    )
    args = parser.parse_args()

    print("baseline comparison on the dining-philosophers fault")
    print(f"(detection over {len(SEEDS)} seeds, workers={args.workers})\n")
    sweeps = run_sweeps(args.workers)
    ptest = sweeps["ptest"]
    random_ = sweeps["random"]
    systematic = run_systematic()
    print(f"{'tester':>24} | {'found':>5} | {'effort':>18}")
    print("-" * 56)
    print(
        f"{'pTest (adaptive, cyclic)':>24} | {ptest[0]:>2}/{len(SEEDS)} "
        f"| {ptest[1]:>5} cmds ({ptest[2]} err)"
    )
    print(
        f"{'ConTest-style random':>24} | {random_[0]:>2}/{len(SEEDS)} "
        f"| {random_[1]:>5} cmds ({random_[2]} err)"
    )
    print(
        f"{'CHESS-lite systematic':>24} | {systematic[0]:>2}/{len(SEEDS)} "
        f"| {systematic[1]:>5} full runs"
    )
    print(
        "\nreading: pTest's PFA keeps every command legal and its merger"
        "\naims at the suspension window; random noise burns its budget on"
        "\nerror replies; the systematic explorer also finds it but pays"
        "\nwhole-run granularity (and explodes combinatorially at scale)."
    )


if __name__ == "__main__":
    main()
