#!/usr/bin/env python
"""Compare pTest against ConTest-style random noise and CHESS-lite.

The paper positions pTest between ConTest (random interleaving, cheap
but unstructured) and CHESS (systematic model checking, thorough but
explosive).  This script runs all three against the same seeded faults
and prints detection rate, commands spent, and wasted (error-reply)
commands.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.baselines.random_tester import RandomTester
from repro.baselines.systematic import SystematicExplorer
from repro.ptest.generator import PatternGenerator
from repro.workloads.scenarios import (
    lifecycle_pfa,
    philosophers_case2,
)

SEEDS = range(5)


def run_ptest() -> tuple[int, int, int]:
    found = commands = wasted = 0
    for seed in SEEDS:
        result = philosophers_case2(seed=seed, op="cyclic").run()
        commands += result.commands_issued
        wasted += result.commands_failed
        found += int(result.found_bug)
    return found, commands, wasted


def run_random() -> tuple[int, int, int]:
    found = commands = wasted = 0
    for seed in SEEDS:
        scenario = philosophers_case2(seed=seed)
        result = RandomTester(
            config=scenario.config, programs=dict(scenario.programs)
        ).run()
        commands += result.commands_issued
        wasted += result.commands_failed
        found += int(result.found_bug)
    return found, commands, wasted


def run_systematic() -> tuple[int, int, int]:
    found = runs = 0
    for seed in SEEDS:
        scenario = philosophers_case2(seed=seed)
        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=seed
        )
        explorer = SystematicExplorer(
            config=scenario.config,
            patterns=generator.generate_batch(3, 3),
            programs=dict(scenario.programs),
            switch_bound=4,
            max_runs=30,
        )
        result = explorer.explore()
        runs += result.executed
        found += int(result.found_bug)
    return found, runs, 0


def main() -> None:
    print("baseline comparison on the dining-philosophers fault")
    print(f"(detection over {len(list(SEEDS))} seeds)\n")
    ptest = run_ptest()
    random_ = run_random()
    systematic = run_systematic()
    print(f"{'tester':>24} | {'found':>5} | {'effort':>18}")
    print("-" * 56)
    print(
        f"{'pTest (adaptive, cyclic)':>24} | {ptest[0]:>2}/{len(list(SEEDS))} "
        f"| {ptest[1]:>5} cmds ({ptest[2]} err)"
    )
    print(
        f"{'ConTest-style random':>24} | {random_[0]:>2}/{len(list(SEEDS))} "
        f"| {random_[1]:>5} cmds ({random_[2]} err)"
    )
    print(
        f"{'CHESS-lite systematic':>24} | {systematic[0]:>2}/{len(list(SEEDS))} "
        f"| {systematic[1]:>5} full runs"
    )
    print(
        "\nreading: pTest's PFA keeps every command legal and its merger"
        "\naims at the suspension window; random noise burns its budget on"
        "\nerror replies; the systematic explorer also finds it but pays"
        "\nwhole-run granularity (and explodes combinatorially at scale)."
    )


if __name__ == "__main__":
    main()
