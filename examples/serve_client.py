#!/usr/bin/env python
"""Campaign-as-a-service: one warm server, many concurrent clients.

Starts a ``repro serve`` instance on a background thread, then fires
three concurrent clients at it, each submitting the same serializable
:class:`~repro.ptest.spec.CampaignSpec` (a dining-philosophers grid on
two workers).  The server multiplexes all three onto one shared warm
worker pool — ``status()`` shows a single pool spawn — and every
client's rounds come back **bit-identical** to running the spec
directly in this process, which the script cross-checks.

This is the in-process flavour; `repro serve` / `repro submit` are the
same machinery across real process boundaries:

    repro serve --port 7341 &
    repro campaign philosophers --grid count=2,3 --dump-spec spec.json
    repro submit --spec spec.json --port 7341

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.client import Client
from repro.ptest.pool import shutdown_pools
from repro.ptest.spec import CampaignSpec, execute_spec
from repro.serve import start_server_thread

CLIENTS = 3

SPEC = CampaignSpec(
    scenario="philosophers",
    params=(("count", "2"),),
    grid=(("hold_steps", ("3", "5")),),
    seeds=(0, 1, 2),
    workers=2,
    batch_size=2,
)


def main() -> None:
    print(f"spec: {SPEC.to_json()}")

    # The reference: the same spec, executed directly in this process.
    direct = execute_spec(SPEC)
    print(
        f"direct run: {len(direct.rows)} row(s), "
        f"{direct.total_detections} detection(s)"
    )

    handle = start_server_thread()
    print(f"server: listening on {handle.host}:{handle.port}")
    try:
        outcomes = [None] * CLIENTS

        def submit(index: int) -> None:
            with Client(*handle.address) as client:
                outcomes[index] = client.run(SPEC)

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for index, remote in enumerate(outcomes):
            match = remote is not None and remote.rounds == direct.rounds
            queued = " (queued)" if remote and remote.queued else ""
            print(
                f"client {index}: {remote.total_detections} detection(s)"
                f"{queued}, bit-identical to direct: {match}"
            )

        with Client(*handle.address) as client:
            status = client.status()
        pools = status["pools"]
        print(
            f"server pools: {pools} "
            f"(served {status['served']} request(s))"
        )
        spawns_ok = all(p["spawns"] == 1 for p in pools)
        print(f"one pool spawn per worker count: {spawns_ok}")
        identical = all(
            remote is not None and remote.rounds == direct.rounds
            for remote in outcomes
        )
        print(f"all clients bit-identical: {identical}")
    finally:
        handle.close()
        shutdown_pools()
    print("server drained and stopped")


if __name__ == "__main__":
    main()
