#!/usr/bin/env python
"""Distribution sensitivity + profiling-based learning (the paper's
future work, closed).

Part 1 compares pattern batches generated under the paper's Fig. 5
distribution, a uniform distribution, and a churn-heavy reweighting:
how long are task lifecycles, how much duplication, how much PFA
coverage per batch?

Part 2 demonstrates "the knowledge about probability distributions can
be learned through system profiling": sample traces from the paper's
distribution, profile them against the RE (2) automaton, and show the
learned transition probabilities converging to Fig. 5's values.

Run:  python examples/distribution_tuning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.coverage import pattern_transition_coverage
from repro.analysis.metrics import duplication_rate
from repro.analysis.profiling import learn_distribution_from_patterns
from repro.automata.analysis import expected_pattern_length, mean_entropy
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_pfa,
    reweighted_pcore_pfa,
    uniform_pcore_pfa,
)

BATCH, SIZE = 200, 10


def main() -> None:
    variants = {
        "paper (Fig. 5)": pcore_pfa(),
        "uniform": uniform_pcore_pfa(),
        "churn-heavy": reweighted_pcore_pfa(
            {("TC", "TD"): 0.6, ("TC", "TCH"): 0.2}
        ),
    }
    print("part 1: distribution variants")
    header = (
        f"{'distribution':>16} | {'E[len]':>7} | {'entropy':>7} "
        f"| {'dup%':>6} | {'cov%':>5}"
    )
    print(header)
    print("-" * len(header))
    for name, pfa in variants.items():
        generator = PatternGenerator.from_pfa(pfa, seed=42)
        batch = [generator.generate(SIZE).symbols for _ in range(BATCH)]
        coverage = pattern_transition_coverage(pfa, batch)
        print(
            f"{name:>16} | {expected_pattern_length(pfa):7.2f} "
            f"| {mean_entropy(pfa):7.3f} "
            f"| {100 * duplication_rate(batch):5.1f}% "
            f"| {100 * coverage.fraction:4.0f}%"
        )

    print("\npart 2: learning the distribution from profiled traces")
    structural = PatternGenerator(
        regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
    )
    source = PatternGenerator.from_pfa(pcore_pfa(), seed=7)
    for trace_count in (10, 100, 1000):
        traces = [source.generate(SIZE).symbols for _ in range(trace_count)]
        learned = learn_distribution_from_patterns(structural.dfa, traces)
        after_tc = structural.dfa.step(structural.dfa.start, "TC")
        row = {
            symbol: learned.get(after_tc, symbol)
            for symbol in ("TCH", "TS", "TD", "TY")
        }
        rendered = ", ".join(f"{k}={v:.2f}" for k, v in row.items())
        print(f"  {trace_count:>5} traces: P(TC -> .) = {rendered}")
    print("  paper's Fig. 5 row:   TCH=0.60, TS=0.10, TD=0.20, TY=0.10")


if __name__ == "__main__":
    main()
