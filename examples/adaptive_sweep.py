#!/usr/bin/env python
"""Three-round adaptive grid zoom on the dining philosophers.

Round 1 sweeps a 2 x 3 grid — the buggy cyclic-acquisition workload and
its ordered-acquisition control, each across three fork-hold durations.
The ``GridZoom`` policy then narrows the grid around the
highest-detection cell: the clean ``ordered=True`` half is pinned away
after round 1 and the ``hold_steps`` window halves every round, so by
round 3 every seed in the budget runs inside the deadlocking region.
All rounds dispatch through one warm worker pool (watch ``pool_id``
stay constant — round 2+ never pays pool spawn).

Run:  python examples/adaptive_sweep.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ptest.adaptive import AdaptiveCampaign, GridZoom
from repro.ptest.pool import shutdown_pools

ROUNDS = 3
SEEDS = (0, 1, 2)


def main() -> None:
    campaign = AdaptiveCampaign(
        seeds=SEEDS,
        rounds=ROUNDS,
        policy=GridZoom(),
        workers=2,
    )
    campaign.add_grid(
        "phil",
        "philosophers",
        {"ordered": [False, True], "hold_steps": [15, 30, 60]},
    )
    print(
        f"adaptive philosophers sweep: {ROUNDS} rounds x "
        f"{len(SEEDS)} seeds, grid zoom"
    )
    result = campaign.run()
    for observation in result.rounds:
        print(
            f"\nround {observation.index + 1} "
            f"(pool_id={observation.pool_id}): "
            f"{len(observation.rows)} variant(s), "
            f"{observation.total_detections} detection(s)"
        )
        for row in observation.rows:
            kinds = f"  [{', '.join(row.kinds)}]" if row.kinds else ""
            print(
                f"  {row.variant:<42} {row.detections}/{row.runs}{kinds}"
            )
    print(
        f"\npool stable across rounds: {result.pool_stable}"
        + ("  (stopped early: converged)" if result.stopped_early else "")
    )
    shutdown_pools()


if __name__ == "__main__":
    main()
