"""``repro serve``: campaign-as-a-service on a newline-JSON protocol.

One long-lived process answers many concurrent campaign/adapt requests,
so request N never pays what PRs 3-9 made cacheable: worker pools stay
warm across requests (one :class:`~repro.ptest.pool.WorkerPool` per
worker count per server process), and the worker-side scenario/PFA/
merged-pattern caches persist with them.

**Protocol.**  Stdlib ``asyncio.start_server``; each line is one JSON
object.  Client → server operations:

``{"op": "run", "id": ..., "spec": {...}, "stream_cells": bool}``
    Execute a :class:`~repro.ptest.spec.CampaignSpec`.  The server
    answers with an ``accepted`` frame (admission telemetry), then —
    incrementally, as execution proceeds — optional ``cell`` frames
    (every completed cell, submission order, when ``stream_cells`` is
    on), one ``round`` frame per completed round, and finally ``done``
    or ``error``.
``{"op": "ping"}`` / ``{"op": "status"}`` / ``{"op": "shutdown"}``
    Liveness, pool/queue telemetry, and graceful drain: ``shutdown``
    stops admitting new runs, lets every in-flight request finish, and
    then closes the listener.

Requests multiplex onto the shared pools under admission control — a
bounded semaphore of ``max_concurrent`` concurrently-executing
requests; excess requests *queue* (their ``accepted`` frame says so,
with the queue depth) rather than being rejected.  Each request's
rows/detections stream back through a socket-backed
:class:`~repro.ptest.executor.ResultSink` bridged from the executor
thread into the connection's writer task, and error handling reuses
the CLI's exit-3 machinery: ``error`` frames carry the same one-line
:func:`~repro.ptest.executor.executor_diagnosis` and quarantine hint,
and a hung request is bounded by the spec's own watchdog
(``cell_timeout``), never by killing the server.

**Determinism.**  ``round`` frames are
:func:`~repro.ptest.spec.round_to_dict` payloads of JSON-exact
scalars, so what a client rebuilds is bit-identical to a direct
:func:`~repro.ptest.spec.execute_spec` of the same spec — at any
(concurrent clients, workers, batch_size).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

from repro.errors import ConfigError, ReproError
from repro.ptest.executor import (
    EXECUTOR_FAILURES,
    QUARANTINE_HINT,
    WorkCell,
    executor_diagnosis,
)
from repro.ptest.harness import TestRunResult
from repro.ptest.pool import pool_telemetry
from repro.ptest.spec import CampaignSpec, execute_spec, round_to_dict

PROTOCOL_VERSION = 1


@dataclass
class _CallbackSink:
    """ResultSink adapter: forwards each completed cell to a callable
    (the server's thread-to-loop bridge)."""

    callback: Callable[[WorkCell, TestRunResult], None]

    def accept(self, cell: WorkCell, result: TestRunResult) -> None:
        self.callback(cell, result)


class CampaignServer:
    """The asyncio front-end.  See the module docstring for protocol.

    ``max_concurrent`` bounds simultaneously *executing* requests;
    arrivals beyond it queue on the admission semaphore in FIFO order.
    Spec execution itself is synchronous (it drives worker pools), so
    each admitted request runs on a thread of ``_work`` while the event
    loop keeps serving other connections.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrent: int = 4,
    ):
        if max_concurrent < 1:
            raise ConfigError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self._server: asyncio.base_events.Server | None = None
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self._work = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-serve"
        )
        self._running = 0
        self._queued = 0
        self._served = 0
        self._request_seq = 0
        self._draining = False
        self._run_tasks: set[asyncio.Task] = set()
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._closed = asyncio.Event()

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def wait_closed(self) -> None:
        """Blocks until a ``shutdown`` request has fully drained."""
        await self._closed.wait()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; also the ``shutdown``
        op's implementation): stop admitting runs, finish in-flight
        ones, then close the listener and release :meth:`wait_closed`."""
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._drain_and_close())

    async def _drain_and_close(self) -> None:
        while self._run_tasks:
            await asyncio.gather(
                *tuple(self._run_tasks), return_exceptions=True
            )
        if self._server is not None:
            self._server.close()
        # Deterministic teardown of the surviving connections: closing
        # each writer EOFs its reader loop, so every handler exits on
        # its normal path before the loop itself shuts down (no
        # cancelled-task noise at interpreter exit).
        for writer in tuple(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(
                *tuple(self._handlers), return_exceptions=True
            )
        self._work.shutdown(wait=True)
        self._closed.set()

    async def aclose(self) -> None:
        """Graceful drain + close, awaitable form of
        :meth:`request_shutdown`."""
        self.request_shutdown()
        await self.wait_closed()

    # -- connection handling -----------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
        self._writers.add(writer)
        frames: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._write_frames(frames, writer)
        )
        conn_tasks: list[asyncio.Task] = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("expected a JSON object")
                except (json.JSONDecodeError, ValueError) as error:
                    # Malformed input is recoverable on a line-framed
                    # protocol: report it and keep the connection.
                    frames.put_nowait(
                        _error_frame(
                            None, "protocol", None, f"malformed request: {error}"
                        )
                    )
                    continue
                task = self._dispatch(message, frames)
                if task is not None:
                    conn_tasks.append(task)
        finally:
            # Client closed (or errored): let this connection's
            # in-flight runs finish — their frames are dropped by the
            # writer if the socket is gone, but shared-pool state and
            # admission accounting always settle.
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            frames.put_nowait(None)
            await writer_task
            self._writers.discard(writer)
            if handler is not None:
                self._handlers.discard(handler)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(
        self, message: dict[str, Any], frames: asyncio.Queue
    ) -> asyncio.Task | None:
        op = message.get("op")
        request_id = message.get("id")
        if op == "ping":
            frames.put_nowait(
                {"type": "pong", "id": request_id, "version": PROTOCOL_VERSION}
            )
            return None
        if op == "status":
            frames.put_nowait(self._status_frame(request_id))
            return None
        if op == "shutdown":
            frames.put_nowait(
                {
                    "type": "shutdown",
                    "id": request_id,
                    "draining": self._running + self._queued,
                }
            )
            self.request_shutdown()
            return None
        if op == "run":
            task = asyncio.get_running_loop().create_task(
                self._run_request(message, frames)
            )
            self._run_tasks.add(task)
            task.add_done_callback(self._run_tasks.discard)
            return task
        frames.put_nowait(
            _error_frame(
                request_id,
                "protocol",
                None,
                f"unknown op {op!r}; expected run, ping, status or shutdown",
            )
        )
        return None

    def _status_frame(self, request_id: Any) -> dict[str, Any]:
        return {
            "type": "status",
            "id": request_id,
            "version": PROTOCOL_VERSION,
            "active": self._running,
            "queue_depth": self._queued,
            "served": self._served,
            "max_concurrent": self.max_concurrent,
            "draining": self._draining,
            "pools": pool_telemetry(),
        }

    async def _write_frames(
        self, frames: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Single writer per connection: serialises frames from every
        producer (reader loop, run tasks, executor threads via
        ``call_soon_threadsafe``) onto the socket in queue order."""
        gone = False
        while True:
            frame = await frames.get()
            if frame is None:
                return
            if gone:
                continue  # drain producers of a dead connection
            try:
                writer.write(json.dumps(frame).encode() + b"\n")
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                gone = True

    # -- request execution -------------------------------------------

    async def _run_request(
        self, message: dict[str, Any], frames: asyncio.Queue
    ) -> None:
        self._request_seq += 1
        request_id = message.get("id")
        if request_id is None:
            request_id = f"r{self._request_seq}"
        try:
            spec = CampaignSpec.from_dict(message.get("spec") or {})
        except ConfigError as error:
            frames.put_nowait(_error_frame(request_id, "config", 2, str(error)))
            return
        if self._draining:
            frames.put_nowait(
                _error_frame(
                    request_id,
                    "shutdown",
                    None,
                    "server is draining; resubmit to a live server",
                )
            )
            return
        queued = self._running >= self.max_concurrent
        self._queued += 1
        frames.put_nowait(
            {
                "type": "accepted",
                "id": request_id,
                "queued": queued,
                "queue_depth": self._queued,
                "active": self._running,
            }
        )
        loop = asyncio.get_running_loop()
        stream_cells = bool(message.get("stream_cells"))
        async with self._semaphore:
            self._queued -= 1
            self._running += 1
            try:
                sink = None
                if stream_cells:
                    sink = _CallbackSink(
                        partial(_post_cell, loop, frames, request_id)
                    )
                outcome, error = await loop.run_in_executor(
                    self._work,
                    partial(
                        _execute_guarded,
                        spec,
                        sink,
                        partial(_post_round, loop, frames, request_id),
                    ),
                )
            finally:
                self._running -= 1
                self._served += 1
        if error is not None:
            frames.put_nowait(_classify_error(request_id, spec, error))
            return
        frames.put_nowait(
            {
                "type": "done",
                "id": request_id,
                "rounds": len(outcome.rounds),
                "stopped_early": outcome.stopped_early,
                "pool_ids": list(outcome.pool_ids),
                "prewarmed_refs": outcome.prewarmed_refs,
                "resumed_rounds": outcome.resumed_rounds,
                "rounds_budget": outcome.rounds_budget,
                "total_detections": outcome.total_detections,
                "schedule": outcome.schedule,
                "quarantine": (
                    outcome.quarantine.describe()
                    if outcome.quarantine is not None
                    else None
                ),
            }
        )


def _execute_guarded(spec, sink, on_round):
    """Run ``execute_spec`` on an executor thread, returning the error
    instead of raising — a raised ``CancelledError`` would otherwise
    read as a cancelled future on the loop side and lose its identity.
    """
    try:
        return execute_spec(spec, sink, on_round=on_round), None
    except BaseException as error:  # noqa: BLE001 - classified by caller
        return None, error


def _post_cell(loop, frames, request_id, cell, result) -> None:
    frame = {
        "type": "cell",
        "id": request_id,
        "variant": cell.variant,
        "seed": cell.seed,
        "found_bug": result.found_bug,
        "kind": (
            result.report.primary.kind.value if result.found_bug else None
        ),
    }
    loop.call_soon_threadsafe(frames.put_nowait, frame)


def _post_round(loop, frames, request_id, round_result) -> None:
    frame = {
        "type": "round",
        "id": request_id,
        "round": round_to_dict(round_result),
    }
    loop.call_soon_threadsafe(frames.put_nowait, frame)


def _error_frame(
    request_id: Any,
    kind: str,
    exit_code: int | None,
    message: str,
    hint: str | None = None,
    quarantine: str | None = None,
) -> dict[str, Any]:
    frame: dict[str, Any] = {
        "type": "error",
        "id": request_id,
        "kind": kind,
        "exit_code": exit_code,
        "message": message,
    }
    if hint is not None:
        frame["hint"] = hint
    if quarantine is not None:
        frame["quarantine"] = quarantine
    return frame


def _classify_error(
    request_id: Any, spec: CampaignSpec, error: BaseException
) -> dict[str, Any]:
    """The CLI's exit-code mapping, as a structured frame: executor
    failures (exit 3) keep the one-line diagnosis and quarantine hint;
    config mistakes (exit 2) carry the message verbatim."""
    if isinstance(error, EXECUTOR_FAILURES):
        return _error_frame(
            request_id,
            "executor",
            3,
            executor_diagnosis(error),
            hint=None if spec.quarantine else QUARANTINE_HINT,
        )
    if isinstance(error, (ReproError, ValueError)):
        return _error_frame(request_id, "config", 2, str(error))
    return _error_frame(
        request_id,
        "internal",
        None,
        f"{type(error).__name__}: {error}",
    )


# -- embedding helpers ---------------------------------------------------------


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_concurrent: int = 4,
    ready: Callable[[tuple[str, int]], None] | None = None,
) -> None:
    """Start a :class:`CampaignServer` and run until a client sends
    ``shutdown`` (the ``repro serve`` entry point).  ``ready`` is
    called with the bound ``(host, port)`` once listening."""
    server = CampaignServer(host, port, max_concurrent=max_concurrent)
    await server.start()
    if ready is not None:
        ready(server.address)
    await server.wait_closed()


@dataclass
class ServerHandle:
    """A server running on a background thread (tests, examples,
    benches).  ``close()`` drains gracefully and joins the thread."""

    host: str
    port: int
    _thread: threading.Thread
    _loop: asyncio.AbstractEventLoop
    _server: CampaignServer

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_server_thread(
    host: str = "127.0.0.1", port: int = 0, *, max_concurrent: int = 4
) -> ServerHandle:
    """Run a :class:`CampaignServer` on a daemon thread; returns once
    it is accepting connections."""
    started = threading.Event()
    box: dict[str, Any] = {}

    def main() -> None:
        async def body() -> None:
            server = CampaignServer(host, port, max_concurrent=max_concurrent)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["port"] = server.port
            started.set()
            await server.wait_closed()

        asyncio.run(body())

    thread = threading.Thread(
        target=main, name="repro-serve-main", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("campaign server failed to start within 30s")
    return ServerHandle(
        host=host,
        port=box["port"],
        _thread=thread,
        _loop=box["loop"],
        _server=box["server"],
    )
