"""Exception hierarchy shared across the repro library.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch one type at an API boundary.  Subsystems define more
specific subclasses here (or in their own ``errors`` module deriving from
these) so that tests can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RegexSyntaxError(ReproError):
    """Raised when a regular expression cannot be parsed.

    Attributes
    ----------
    position:
        Zero-based index into the token stream where parsing failed, or
        ``None`` when the failure is not tied to one token.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class AutomatonError(ReproError):
    """Raised for structurally invalid automata (bad states, arcs, ...)."""


class DistributionError(ReproError):
    """Raised when a probability distribution is malformed.

    This covers negative weights, rows that do not sum to one (violating
    Definition 1's stochasticity condition, Eq. (1) in the paper), and
    distributions naming transitions that do not exist.
    """


class SamplingError(ReproError):
    """Raised when pattern sampling cannot proceed (e.g. dead states)."""


class SimulationError(ReproError):
    """Raised for errors in the discrete-event SoC simulator."""


class MailboxError(SimulationError):
    """Raised on invalid mailbox operations (bad index, overflow policy)."""


class MemoryError_(SimulationError):
    """Raised on invalid shared-memory accesses (out of range, misaligned).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class KernelError(ReproError):
    """Base class for pCore kernel errors (the *modelled* kernel's errors)."""


class ServiceError(KernelError):
    """A kernel service was invoked with invalid arguments or in an
    illegal task state (e.g. resuming a task that is not suspended)."""


class TaskLimitError(ServiceError):
    """Raised when creating a task would exceed the kernel's task limit."""


class KernelPanicError(KernelError):
    """The slave kernel crashed.  The harness converts this into a
    recorded :class:`~repro.ptest.report.BugReport` rather than letting it
    escape a test run."""


class BridgeError(ReproError):
    """Raised for protocol violations in the master-slave bridge."""


class ConfigError(ReproError):
    """Raised when a test-harness configuration is inconsistent."""


class WatchdogTimeout(ReproError):
    """A campaign batch exceeded its watchdog deadline unrecoverably.

    Raised by :class:`~repro.ptest.executor.CellExecutor` when a batch
    keeps blowing through ``cell_timeout`` after the stuck workers were
    killed and the batch resubmitted up to the respawn budget — and
    quarantine is off, so the hang cannot be isolated to a cell.  With
    ``quarantine=True`` the executor bisects instead of raising.
    """


class ChaosInjectedError(ReproError):
    """A fault injected by :mod:`repro.ptest.chaos` (never a real bug).

    Raised inside worker processes for ``raise_seeds`` poison cells so
    the recovery machinery sees a deterministic batch-lethal failure
    whose origin is unambiguous in test assertions and logs.
    """


class CheckpointError(ReproError):
    """An adaptive-campaign checkpoint cannot be written, read, or does
    not match the campaign attempting to resume from it."""


class DetectorError(ReproError):
    """Raised for misuse of the bug detector API."""
