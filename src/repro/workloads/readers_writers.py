"""Readers/writers over a shared counter in SRAM.

Readers repeatedly read a shared cell under a mutex; the writer
increments it.  Two uses:

* the plain variant is a healthy concurrent workload for coverage and
  detector false-positive tests;
* the ``greedy`` reader variant holds the lock across long computes, a
  realistic starvation generator for detector threshold studies (E-ext).
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    Release,
    Syscall,
    TaskContext,
    YieldCpu,
)

COUNTER_ADDR = 0x0E00
RW_MUTEX = "rw_lock"


def make_writer_program(increments: int, hold_steps: int = 2):
    """Increment the shared counter ``increments`` times under the lock."""
    if increments < 1:
        raise ReproError(f"increments must be >= 1, got {increments}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for _ in range(increments):
            yield Acquire(RW_MUTEX)
            value = yield MemRead(COUNTER_ADDR)
            yield Compute(hold_steps)
            yield MemWrite(COUNTER_ADDR, (value + 1) % 2**16)
            yield Release(RW_MUTEX)
            yield YieldCpu()
        yield Exit(increments)

    return program


def make_reader_program(reads: int, hold_steps: int = 2, greedy: bool = False):
    """Read the counter ``reads`` times; monotonicity is asserted.

    ``greedy`` readers hold the lock for 50x longer, starving lower
    priority contenders.
    """
    if reads < 1:
        raise ReproError(f"reads must be >= 1, got {reads}")
    effective_hold = hold_steps * (50 if greedy else 1)

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        last = -1
        for _ in range(reads):
            yield Acquire(RW_MUTEX)
            value = yield MemRead(COUNTER_ADDR)
            yield Compute(effective_hold)
            yield Release(RW_MUTEX)
            if value < last:
                raise ReproError(
                    f"reader {ctx.tid}: counter went backwards "
                    f"({last} -> {value})"
                )
            last = value
            yield YieldCpu()
        yield Exit(last)

    return program
