"""Producer/consumer over shared memory with semaphore flow control.

A bounded ring buffer lives in shared SRAM (the inter-core idiom the
paper's communication-infrastructure section describes); ``items`` and
``space`` counting semaphores guard it, and a mutex serialises index
updates.  The workload exercises semaphores, blocking and shared-memory
syscalls together — the detector must *not* flag its ordinary waiting as
an anomaly (a false-positive regression test), while a missing
``Release`` (the ``faulty`` producer) starves the consumer for real.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    Release,
    Syscall,
    TaskContext,
)

#: Shared-memory layout (u16 slots): ring base, then head/tail indices.
RING_BASE = 0x1000
HEAD_ADDR = 0x0F00
TAIL_ADDR = 0x0F02

ITEMS_SEM = "pc_items"
SPACE_SEM = "pc_space"
INDEX_MUTEX = "pc_index"


def make_producer_program(
    count: int, ring_slots: int = 8, faulty: bool = False
):
    """Produce ``count`` values; the ``faulty`` variant forgets to signal
    ``items`` on every fourth item (a lost wakeup)."""
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if ring_slots < 1:
        raise ReproError(f"ring_slots must be >= 1, got {ring_slots}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for item in range(count):
            yield Acquire(SPACE_SEM)
            yield Acquire(INDEX_MUTEX)
            tail = yield MemRead(TAIL_ADDR)
            yield MemWrite(RING_BASE + 2 * (tail % ring_slots), item % 2**16)
            yield MemWrite(TAIL_ADDR, (tail + 1) % 2**16)
            yield Release(INDEX_MUTEX)
            lost = faulty and item % 4 == 3
            if not lost:
                yield Release(ITEMS_SEM)
            yield Compute(2)
        yield Exit(count)

    return program


def make_consumer_program(count: int, ring_slots: int = 8):
    """Consume ``count`` values, verifying FIFO order."""
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        expected = 0
        for _ in range(count):
            yield Acquire(ITEMS_SEM)
            yield Acquire(INDEX_MUTEX)
            head = yield MemRead(HEAD_ADDR)
            value = yield MemRead(RING_BASE + 2 * (head % ring_slots))
            yield MemWrite(HEAD_ADDR, (head + 1) % 2**16)
            yield Release(INDEX_MUTEX)
            if value != expected % 2**16:
                raise ReproError(
                    f"consumer {ctx.tid}: expected {expected}, got {value}"
                )
            expected += 1
            yield Release(SPACE_SEM)
            yield Compute(2)
        yield Exit(expected)

    return program
