"""The concurrency-fault example of the paper's Fig. 1.

Two slave processes sit suspended in pCore; two master processes resume
them::

    Process S1              Process S2
    a: x = 1                f: y = 1
    b: while (y == 1)       g: while (x == 1)
    c:     yield();         h:     yield();
    d: x <- 0;              i: y <- 0;
    e: end;                 j: end;

    M1: K: remote_cmd(Resume, S1)    M2: L: remote_cmd(Resume, S2)

with ``x = y = 0`` in shared memory and S2's priority above S1's.  The
order ``L f g K i j a b d e`` terminates; the order ``K a L f g h b c
g h ...`` wedges the system: S2 spins ``g h`` forever (x stays 1) and S1
never reaches ``b`` again — states d, e, i, j become unreachable.  The
paper calls this the deadlock state; structurally it is a livelock /
starvation cycle, and pTest's detector reports S1's starvation (no
wait-for edge exists — nothing blocks on a resource).

:func:`run_fig1` reproduces both orders deterministically on the
simulated SoC and reports which line labels were reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Literal

from repro.bridge.bridge import build_bridge
from repro.master.scheduler import TimeSharingScheduler
from repro.master.system import MasterSystem
from repro.master.thread import Delay, IssueService, MasterThread, WaitReply
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Exit, MemRead, MemWrite, Syscall, TaskContext, YieldCpu
from repro.pcore.services import ServiceCode, ServiceRequest
from repro.ptest.detector import BugDetector, DetectorConfig
from repro.sim.soc import DualCoreSoC, SoCConfig

#: Shared-memory cells (u16): the flags and "reached line d/i" markers.
X_ADDR = 0x0C00
Y_ADDR = 0x0C02
S1_D_MARKER = 0x0C10
S2_I_MARKER = 0x0C12

S1_TID = 1
S2_TID = 2
S1_PRIORITY = 10
S2_PRIORITY = 20  # S2 outranks S1, per the paper


def s1_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """Process S1: lines a-e."""
    del ctx
    yield MemWrite(X_ADDR, 1)  # a
    while True:
        y = yield MemRead(Y_ADDR)  # b
        if y != 1:
            break
        yield YieldCpu()  # c
    yield MemWrite(X_ADDR, 0)  # d
    yield MemWrite(S1_D_MARKER, 1)
    yield Exit("e")  # e


def s2_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """Process S2: lines f-j."""
    del ctx
    yield MemWrite(Y_ADDR, 1)  # f
    while True:
        x = yield MemRead(X_ADDR)  # g
        if x != 1:
            break
        yield YieldCpu()  # h
    yield MemWrite(Y_ADDR, 0)  # i
    yield MemWrite(S2_I_MARKER, 1)
    yield Exit("j")  # j


@dataclass
class Fig1Result:
    """Outcome of one Fig. 1 run."""

    order: str
    terminated: bool
    s1_exited: bool
    s2_exited: bool
    reached: frozenset[str]
    unreachable: frozenset[str]
    anomalies: list
    ticks: int

    @property
    def wedged(self) -> bool:
        return not self.terminated


def _resume(tid: int) -> ServiceRequest:
    return ServiceRequest(service=ServiceCode.TR, target=tid)


def _master_good(thread: MasterThread):
    """Order L ... K: resume S2, let it finish, then resume S1."""
    del thread
    yield IssueService(_resume(S2_TID))  # L
    yield WaitReply()
    yield Delay(60)  # let S2 run f g i j to completion
    yield IssueService(_resume(S1_TID))  # K
    yield WaitReply()


def _master_bad(thread: MasterThread):
    """Order K a L: resume S1, then immediately resume S2."""
    del thread
    yield IssueService(_resume(S1_TID))  # K
    yield IssueService(_resume(S2_TID))  # L (fire-and-forget: lands
    # one slave step after K, right after S1 executed line a)


def run_fig1(
    order: Literal["good", "bad"],
    max_ticks: int = 4_000,
    progress_window: int = 300,
) -> Fig1Result:
    """Run the Fig. 1 system under the given resume order."""
    soc = DualCoreSoC(config=SoCConfig(seed=7))
    kernel = PCoreKernel(
        config=KernelConfig(), shared_memory=soc.sram, tracer=soc.tracer
    )
    kernel.register_program("fig1_s1", s1_program)
    kernel.register_program("fig1_s2", s2_program)
    # Both slave processes exist and are suspended before the masters run.
    for tid, priority, program in (
        (S1_TID, S1_PRIORITY, "fig1_s1"),
        (S2_TID, S2_PRIORITY, "fig1_s2"),
    ):
        created = kernel.execute_service(
            ServiceRequest(
                service=ServiceCode.TC,
                target=tid,
                priority=priority,
                program=program,
            )
        )
        assert created.ok, created
        suspended = kernel.execute_service(
            ServiceRequest(service=ServiceCode.TS, target=tid)
        )
        assert suspended.ok, suspended

    bridge_master, slave_core = build_bridge(soc.mailboxes, kernel)
    program = _master_good if order == "good" else _master_bad
    master = MasterSystem(
        bridge=bridge_master,
        shared_memory=soc.sram,
        scheduler=TimeSharingScheduler(quantum=2),
        tracer=soc.tracer,
    )
    master.add_thread(
        MasterThread(mtid=1, name="m-issuer", program_factory=program)
    )
    soc.attach(master=master, slave=slave_core)
    detector = BugDetector(
        kernel=kernel,
        bridge=bridge_master,
        config=DetectorConfig(
            reply_timeout=max_ticks * 2,  # masters fire-and-forget here
            progress_window=progress_window,
            interval=8,
        ),
    )

    ticks = 0
    terminated = False
    while ticks < max_ticks:
        soc.step()
        ticks += 1
        if ticks % 8 == 0:
            detector.sweep(soc.now)
        if not kernel.live_tasks() and master.is_halted():
            terminated = True
            break
        if detector.triggered:
            break

    s1_exited = S1_TID not in kernel.tasks
    s2_exited = S2_TID not in kernel.tasks
    reached = set("a")  # S1 always executes line a once resumed
    if order == "good" or s2_exited:
        reached.update("fg")
    else:
        reached.update("fgh")
    if order == "good":
        reached.add("b")
    if soc.sram.read_u16(S1_D_MARKER) == 1:
        reached.update("de")
        reached.add("b")
    if soc.sram.read_u16(S2_I_MARKER) == 1:
        reached.update("ij")
    unreachable = frozenset("abcdefghij") - frozenset(reached) - {"c", "h"}
    return Fig1Result(
        order=order,
        terminated=terminated,
        s1_exited=s1_exited,
        s2_exited=s2_exited,
        reached=frozenset(reached),
        unreachable=unreachable,
        anomalies=list(detector.anomalies),
        ticks=ticks,
    )
