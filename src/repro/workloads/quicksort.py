"""The paper's stress workload: quick-sort of 128 two-byte integers.

"All of 16 active tasks performed the same quick-sort algorithm to
individually sort 128 integer elements.  The size of integer data is
2 bytes and the stack size of each task is 512 bytes."

The sort really runs (an explicit-stack quicksort, matching a 512-byte
embedded stack discipline), charging :class:`~repro.pcore.programs.
Compute` units per partition pass and yielding the CPU between
partitions so the scheduler can interleave tasks.  The program verifies
its own output and raises on a mis-sort, so any kernel bug that corrupts
task state surfaces as a loud failure rather than silent data damage.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import Compute, Exit, Syscall, TaskContext, YieldCpu

#: Elements per task, per the paper.
QSORT_ELEMENTS = 128

#: Values fit the paper's 2-byte integers.
_VALUE_RANGE = (0, 2**16 - 1)


def quicksort_steps(data: list[int]) -> Generator[int, None, list[int]]:
    """Iterative quicksort yielding the partition size after each pass.

    Yields once per partition step (its cost), returns the sorted list.
    Separated from the task program so it is unit-testable on its own.
    """
    values = list(data)
    stack: list[tuple[int, int]] = [(0, len(values) - 1)]
    while stack:
        low, high = stack.pop()
        if low >= high:
            continue
        pivot = values[(low + high) // 2]
        left, right = low, high
        while left <= right:
            while values[left] < pivot:
                left += 1
            while values[right] > pivot:
                right -= 1
            if left <= right:
                values[left], values[right] = values[right], values[left]
                left += 1
                right -= 1
        stack.append((low, right))
        stack.append((left, high))
        yield high - low + 1
    return values


def make_quicksort_program(elements: int = QSORT_ELEMENTS, compute_scale: int = 8):
    """Build the task program; data is seeded by task id so every task
    sorts a different (but reproducible) array."""
    if elements < 1:
        raise ReproError(f"elements must be >= 1, got {elements}")
    if compute_scale < 1:
        raise ReproError(f"compute_scale must be >= 1, got {compute_scale}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        rng = random.Random(ctx.tid * 2654435761 % 2**32)
        data = [rng.randint(*_VALUE_RANGE) for _ in range(elements)]
        sorter = quicksort_steps(data)
        result: list[int] | None = None
        while True:
            try:
                cost = next(sorter)
            except StopIteration as stop:
                result = stop.value
                break
            yield Compute(max(1, cost // compute_scale))
            yield YieldCpu()
        if result is None or any(
            result[i] > result[i + 1] for i in range(len(result) - 1)
        ):
            raise ReproError(
                f"task {ctx.tid}: quicksort produced an unsorted result"
            )
        if sorted(data) != result:
            raise ReproError(
                f"task {ctx.tid}: quicksort lost or invented elements"
            )
        yield Exit(len(result))

    return program
