"""A long-running, detection-free compute workload.

Executor benchmarking needs campaign cells whose runtime is tunable and
whose outcome is always clean — the ROADMAP's note that the
``ordered=True`` philosophers control trips STARVATION once its
``hold_steps`` exceed the detector's progress window ruled the existing
controls out.  A *spinner* computes in short chunks with a polite
``YieldCpu`` between chunks, so it always makes progress, touches no
shared resources, and exits after exactly ``total_steps`` compute units
— nothing for the detector to report at any duration.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import Compute, Exit, Syscall, TaskContext, YieldCpu


def make_spin_program(total_steps: int, chunk: int = 20):
    """A task that computes ``total_steps`` units, ``chunk`` at a time.

    The yield between chunks keeps the task's progress counter moving
    (no starvation window ever opens) while still letting the scheduler
    interleave it with anything else.
    """
    if total_steps < 1:
        raise ReproError(f"total_steps must be >= 1, got {total_steps}")
    if chunk < 1:
        raise ReproError(f"chunk must be >= 1, got {chunk}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        remaining = total_steps
        while remaining > 0:
            step = min(chunk, remaining)
            yield Compute(step)
            remaining -= step
            yield YieldCpu()
        yield Exit(total_steps)

    return program
