"""Priority inversion: the classic three-task starvation pattern.

A low-priority task holds a mutex; a medium-priority compute hog
preempts it; a high-priority task blocks on the mutex and now waits on
the hog — effectively inverted priorities (the Mars Pathfinder bug).
With the kernel's ``priority_inheritance`` switch on, the blocked
high-priority waiter donates its priority to the low-priority owner,
which then outruns the hog and releases promptly.

Used by the priority-inheritance ablation (A2) and the fault catalogue.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    Release,
    Sleep,
    Syscall,
    TaskContext,
)

PI_LOCK = "pi_lock"


def make_low_locker_program(hold_steps: int = 120):
    """Low priority: take the lock, work under it, release, exit."""
    if hold_steps < 1:
        raise ReproError(f"hold_steps must be >= 1, got {hold_steps}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        yield Acquire(PI_LOCK)
        yield Compute(hold_steps)
        yield Release(PI_LOCK)
        yield Exit(0)

    return program


def make_hog_program(burn_steps: int = 3_000):
    """Medium priority: a long uninterruptible-ish compute burst."""
    if burn_steps < 1:
        raise ReproError(f"burn_steps must be >= 1, got {burn_steps}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        # Start slightly late so the low task can take the lock first.
        yield Sleep(8)
        yield Compute(burn_steps)
        yield Exit(0)

    return program


def make_high_waiter_program(start_delay: int = 16, work_steps: int = 10):
    """High priority: arrives last, needs the lock briefly."""
    if start_delay < 1:
        raise ReproError(f"start_delay must be >= 1, got {start_delay}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        yield Sleep(start_delay)
        yield Acquire(PI_LOCK)
        yield Compute(work_steps)
        yield Release(PI_LOCK)
        yield Exit(0)

    return program
