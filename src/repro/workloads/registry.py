"""Name-addressable scenario registry.

Every workload the repo ships is registered here under a stable name
with a *typed parameter spec*, so examples, benches, tests, the CLI and
— crucially — campaign worker processes can all construct the same
scenario from nothing but a string and a parameter mapping.

Three pieces:

* :class:`ScenarioRegistry` — maps ``name -> ScenarioSpec``.  Scenario
  functions register through the :func:`scenario` decorator; the
  parameter spec (names, types, defaults) is inferred from the
  function signature, so the registry validates and coerces parameters
  before a run ever starts.
* :class:`ScenarioRef` — the *portable* form of "scenario ``name`` with
  these parameters".  A ref is a frozen, picklable value object that is
  also a :class:`~repro.ptest.executor.ScenarioBuilder`: calling
  ``ref(seed)`` resolves the builder **inside the calling process**
  through the registry.  Shipping refs (not callables) to worker
  processes is what lets :class:`~repro.ptest.executor.CellExecutor`
  parallelise any scenario — lambdas-wrapped-in-refs never cross the
  process boundary, only ``(name, params)`` does.  Refs hash and
  compare by ``(name, sorted(params))`` (see the class docstring), so
  they double as the dedupe keys of the executor's batch tables and
  the per-process memoization keys of the worker-side scenario/PFA
  caches in :mod:`repro.ptest.pool`.
* The module-level default registry (:data:`REGISTRY`) plus the
  :func:`scenario` / :func:`scenario_ref` / :func:`build_scenario`
  conveniences.  The default registry lazily imports
  :mod:`repro.workloads.scenarios` on first lookup so that worker
  processes (which never imported the scenario module themselves) still
  resolve every built-in name.

Builders registered here take ``(seed, **params)`` and return any
object with a ``.run() -> TestRunResult`` method (normally an
:class:`~repro.ptest.harness.AdaptiveTest`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConfigError

#: Parameter types the spec knows how to coerce (CLI strings included).
_COERCIBLE = (bool, int, float, str)


@dataclass(frozen=True)
class ParamSpec:
    """One typed, defaulted parameter of a registered scenario."""

    name: str
    type: type
    default: Any

    def coerce(self, value: Any) -> Any:
        """Validate ``value`` against the spec, converting when safe.

        Accepts exact-type values, int->float widening, and string
        forms (so CLI ``--param key=value`` pairs round-trip); anything
        else raises :class:`~repro.errors.ConfigError`.
        """
        if self.type not in _COERCIBLE:
            return value  # opaque parameter: pass through untouched
        if self.type is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
            raise ConfigError(
                f"parameter {self.name!r} expects a bool, got {value!r}"
            )
        if isinstance(value, bool):  # bool is an int subclass: reject
            raise ConfigError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got bool {value!r}"
            )
        if isinstance(value, self.type):
            return value
        if self.type is float and isinstance(value, int):
            return float(value)
        if isinstance(value, str):
            try:
                return self.type(value)
            except ValueError:
                pass
        raise ConfigError(
            f"parameter {self.name!r} expects {self.type.__name__}, "
            f"got {value!r}"
        )

    def describe(self) -> str:
        return f"{self.name}: {self.type.__name__} = {self.default!r}"


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: builder + parameter spec + description."""

    name: str
    builder: Callable[..., Any]
    params: tuple[ParamSpec, ...]
    description: str = ""

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        known = [spec.name for spec in self.params]
        raise ConfigError(
            f"scenario {self.name!r} has no parameter {name!r}; "
            f"known: {known}"
        )

    def validate(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Coerce ``params`` against the spec; unknown names raise."""
        return {name: self.param(name).coerce(value) for name, value in params.items()}

    def describe(self) -> str:
        signature = ", ".join(spec.describe() for spec in self.params)
        return f"{self.name}({signature})"


def _infer_params(builder: Callable[..., Any]) -> tuple[ParamSpec, ...]:
    """Derive the parameter spec from the builder's signature.

    The first parameter is the seed (by convention); every following
    parameter must have a default, whose runtime type becomes the
    spec's type (``None`` defaults stay uncoerced).
    """
    signature = inspect.signature(builder)
    names = list(signature.parameters)
    if not names:
        raise ConfigError(
            f"scenario builder {builder!r} must accept a seed parameter"
        )
    specs = []
    for name in names[1:]:
        parameter = signature.parameters[name]
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            raise ConfigError(
                f"scenario builder {builder!r} may not use *args/**kwargs"
            )
        if parameter.default is inspect.Parameter.empty:
            raise ConfigError(
                f"scenario parameter {name!r} of {builder!r} needs a default"
            )
        default = parameter.default
        kind = type(default) if default is not None else object
        specs.append(ParamSpec(name=name, type=kind, default=default))
    return tuple(specs)


@dataclass
class ScenarioRegistry:
    """Maps scenario names to builders with typed parameter specs.

    ``loader`` (when set) is invoked once before the first lookup that
    would otherwise miss — the default registry uses it to import the
    built-in scenario module, so freshly-spawned worker processes
    resolve names without any caller-side imports.
    """

    loader: Callable[[], None] | None = None
    _specs: dict[str, ScenarioSpec] = field(default_factory=dict)
    _loaded: bool = False
    #: Bumped on every successful registration.  Warm worker pools
    #: record the default registry's version at spawn and respawn when
    #: it moves, so workers forked before a late ``@scenario``
    #: registration never serve stale name tables.
    version: int = 0

    def register(
        self,
        name: str,
        builder: Callable[..., Any] | None = None,
        *,
        description: str | None = None,
    ):
        """Register ``builder`` under ``name`` (usable as a decorator).

        Duplicate names raise ``ValueError`` — names are the public,
        stable addressing scheme and silent replacement would make a
        campaign's meaning depend on import order.
        """

        def add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._specs:
                raise ValueError(f"scenario {name!r} already registered")
            doc = description
            if doc is None:
                doc = (inspect.getdoc(fn) or "").split("\n", 1)[0].strip()
            self._specs[name] = ScenarioSpec(
                name=name,
                builder=fn,
                params=_infer_params(fn),
                description=doc,
            )
            self.version += 1
            return fn

        if builder is not None:
            return add(builder)
        return add

    def _ensure_loaded(self) -> None:
        if self.loader is not None and not self._loaded:
            self._loaded = True  # before the call: loader may recurse
            try:
                self.loader()
            except BaseException:
                # Surface the real import failure again on the next
                # lookup instead of a misleading empty-registry error.
                self._loaded = False
                raise

    def get(self, name: str) -> ScenarioSpec:
        self._ensure_loaded()
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(
                f"unknown scenario {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        self._ensure_loaded()
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        self._ensure_loaded()
        return iter([self._specs[name] for name in self.names()])

    def ref(self, name: str, **params: Any) -> "ScenarioRef":
        """A validated, portable reference to ``name`` with ``params``.

        Refs from the default registry stay unbound (they resolve
        through the process-global :data:`REGISTRY`, which is what a
        worker process reconstructs); refs from a custom registry bind
        to it, so they resolve against the registry that validated
        them — at the cost of only being as picklable as that
        registry's builders are.
        """
        validated = self.get(name).validate(params)
        return ScenarioRef(
            name=name,
            params=tuple(sorted(validated.items())),
            registry=None if self is REGISTRY else self,
        )

    def build(
        self, name: str, seed: int, params: Mapping[str, Any] | None = None
    ) -> Any:
        """Instantiate scenario ``name`` for ``seed`` (validating params)."""
        spec = self.get(name)
        validated = spec.validate(params or {})
        return spec.builder(seed, **validated)


@dataclass(frozen=True, eq=False)
class ScenarioRef:
    """A picklable ``(scenario name, parameters)`` pair.

    Calling a ref with a seed builds the scenario through the default
    registry *in the calling process* — this is the only thing campaign
    workers ever unpickle, so no scenario builder (lambda, closure,
    bound method, whatever) needs to cross a process boundary itself.

    **Cache-key contract.**  Refs are value objects: equality and hash
    are defined over ``(name, sorted(params))`` and nothing else (the
    minting registry is deliberately excluded), so two refs naming the
    same scenario with the same parameters always collapse to one entry
    in a dict/set.  This is what the batched wire format and the
    worker-side caches of :mod:`repro.ptest.pool` key on: a batch table
    ships each distinct ref once, and a worker memoizes its resolved
    builder and compiled sampling automaton under :attr:`cache_key` —
    so every parameter value must itself be hashable, which is enforced
    at construction time rather than at first cache insert deep inside
    a worker process.  Parameter order is canonicalised (sorted by
    name) in ``__post_init__``, so hand-built refs dedupe exactly like
    registry-minted ones.
    """

    name: str
    #: Sorted ``(key, value)`` pairs — hashable and order-canonical.
    params: tuple[tuple[str, Any], ...] = ()
    #: The registry that minted this ref; ``None`` (the portable common
    #: case) means the process-global default registry.
    registry: "ScenarioRegistry | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        raw = self.params
        if isinstance(raw, Mapping):  # ergonomic: accept {'k': v} too
            raw = raw.items()
        try:
            pairs = tuple((key, value) for key, value in raw)
            canonical = tuple(sorted(pairs, key=lambda kv: kv[0]))
        except (TypeError, ValueError):
            raise ConfigError(
                f"ScenarioRef params must be a mapping or (key, value) "
                f"pairs, got {self.params!r}"
            ) from None
        object.__setattr__(self, "params", canonical)
        previous = None
        for key, value in canonical:
            if not isinstance(key, str):
                raise ConfigError(
                    f"ScenarioRef parameter names must be strings, "
                    f"got {key!r}"
                )
            if key == previous:
                raise ConfigError(
                    f"duplicate parameter {key!r} in ScenarioRef for "
                    f"{self.name!r}"
                )
            previous = key
            try:
                hash(value)
            except TypeError:
                raise ConfigError(
                    f"scenario parameter {key!r} of {self.name!r} has "
                    f"unhashable value {value!r} ({type(value).__name__}); "
                    "ScenarioRef parameters must be hashable to serve as "
                    "batch-table and worker-cache keys"
                ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioRef):
            return NotImplemented
        return (self.name, self.params) == (other.name, other.params)

    def __hash__(self) -> int:
        return hash((self.name, self.params))

    @property
    def cache_key(self) -> tuple[str, tuple[tuple[str, Any], ...]]:
        """The ``(name, sorted params)`` pair worker caches key on."""
        return (self.name, self.params)

    def _registry(self) -> "ScenarioRegistry":
        return self.registry if self.registry is not None else REGISTRY

    def __call__(self, seed: int) -> Any:
        return self._registry().build(self.name, seed, dict(self.params))

    def with_params(self, **params: Any) -> "ScenarioRef":
        """A new ref with ``params`` overlaid on this ref's parameters."""
        merged = dict(self.params)
        merged.update(params)
        return self._registry().ref(self.name, **merged)

    def describe(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({rendered})"


def _load_builtin_scenarios() -> None:
    """Import the built-in scenario module for its registration side
    effects (runs at most once, lazily, in every process)."""
    import repro.workloads.scenarios  # noqa: F401


#: The process-wide default registry, holding the built-in workloads.
REGISTRY = ScenarioRegistry(loader=_load_builtin_scenarios)

#: Decorator registering a scenario in the default registry.
scenario = REGISTRY.register


def scenario_ref(name: str, **params: Any) -> ScenarioRef:
    """A validated :class:`ScenarioRef` from the default registry."""
    return REGISTRY.ref(name, **params)


def build_scenario(name: str, seed: int = 0, **params: Any) -> Any:
    """Build one scenario instance from the default registry."""
    return REGISTRY.build(name, seed, params)


def scenario_names() -> list[str]:
    """All names in the default registry (imports built-ins)."""
    return REGISTRY.names()
