"""A dataflow pipeline over kernel message queues.

``source -> stage_1 -> ... -> stage_k -> sink``: the source emits a
numbered stream, each stage applies ``value + 1`` and forwards, the
sink verifies it receives exactly ``count`` values each equal to its
index plus the stage count.  Exercises QSend/QRecv blocking both ways
(full and empty queues) and is the workload for the context-switch-cost
ablation (A1): pipeline throughput is context-switch bound.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import Compute, Exit, QRecv, QSend, Syscall, TaskContext


def queue_name(index: int) -> str:
    return f"pipe{index}"


def make_source_program(count: int, work: int = 1):
    """Emit ``0..count-1`` into the first queue."""
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for value in range(count):
            yield Compute(work)
            yield QSend(queue_name(0), value)
        yield Exit(count)

    return program


def make_stage_program(stage: int, count: int, work: int = 1):
    """Receive from ``pipe{stage}``, add one, forward to ``pipe{stage+1}``."""

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for _ in range(count):
            value = yield QRecv(queue_name(stage))
            yield Compute(work)
            yield QSend(queue_name(stage + 1), (value + 1) % 2**32)
        yield Exit(count)

    return program


def make_sink_program(stage_count: int, count: int):
    """Verify the stream arrives in order, each value bumped per stage."""

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        for index in range(count):
            value = yield QRecv(queue_name(stage_count))
            expected = index + stage_count
            if value != expected:
                raise ReproError(
                    f"sink {ctx.tid}: expected {expected}, got {value}"
                )
        yield Exit(count)

    return program


def build_pipeline(
    kernel: PCoreKernel,
    stages: int = 2,
    count: int = 16,
    queue_capacity: int = 2,
    work: int = 1,
    base_priority: int = 1,
) -> list[int]:
    """Create queues and tasks for a full pipeline; returns the tids.

    Priorities ascend along the pipeline (the sink runs hottest), which
    keeps queues short and maximises context-switch pressure.
    """
    if stages < 1:
        raise ReproError(f"stages must be >= 1, got {stages}")
    for index in range(stages + 1):
        kernel.add_message_queue(queue_name(index), capacity=queue_capacity)
    kernel.register_program("pipe_source", make_source_program(count, work=work))
    for stage in range(stages):
        kernel.register_program(
            f"pipe_stage{stage}", make_stage_program(stage, count, work=work)
        )
    kernel.register_program("pipe_sink", make_sink_program(stages, count))

    from repro.pcore.services import ServiceCode, ServiceRequest

    names = (
        ["pipe_source"]
        + [f"pipe_stage{s}" for s in range(stages)]
        + ["pipe_sink"]
    )
    tids = []
    for offset, name in enumerate(names):
        result = kernel.execute_service(
            ServiceRequest(
                service=ServiceCode.TC,
                priority=base_priority + offset,
                program=name,
            )
        )
        if not result.ok:
            raise ReproError(f"pipeline task {name} not created: {result}")
        tids.append(result.value)
    return tids


def run_pipeline_to_completion(
    kernel: PCoreKernel, max_ticks: int = 100_000
) -> int:
    """Step the kernel until every pipeline task exits; returns ticks."""
    for tick in range(max_ticks):
        kernel.step(tick)
        if not kernel.tasks:
            return tick + 1
    raise ReproError(f"pipeline did not drain within {max_ticks} ticks")
