"""Slave task programs and ready-made test scenarios.

* :mod:`repro.workloads.quicksort` — the paper's stress workload: each
  task quick-sorts 128 two-byte integers (test case 1).
* :mod:`repro.workloads.philosophers` — the buggy dining-philosophers of
  test case 2 (3 tasks, 3 mutually exclusive resources) plus a correct
  ordered-acquisition variant.
* :mod:`repro.workloads.producer_consumer` — a bounded-buffer pair over
  shared memory and a semaphore.
* :mod:`repro.workloads.readers_writers` — readers/writers over a mutex,
  with a starvation-prone writer variant.
* :mod:`repro.workloads.fig1` — the exact four-process example of the
  paper's Fig. 1.
* :mod:`repro.workloads.spin` — a tunable-duration, detection-free
  spinner (clean campaign cells for executor benchmarking).
* :mod:`repro.workloads.scenarios` — helpers binding workloads, faults
  and configs into runnable :class:`~repro.ptest.harness.AdaptiveTest`
  scenarios (the per-experiment entry points).
* :mod:`repro.workloads.registry` — the scenario registry: every
  scenario above is registered by name with a typed parameter spec,
  and :class:`~repro.workloads.registry.ScenarioRef` is the picklable
  form campaigns ship to worker processes.
"""

from repro.workloads.quicksort import (
    QSORT_ELEMENTS,
    make_quicksort_program,
    quicksort_steps,
)
from repro.workloads.philosophers import (
    make_philosopher_program,
    fork_names,
)
from repro.workloads.producer_consumer import (
    make_consumer_program,
    make_producer_program,
)
from repro.workloads.readers_writers import (
    make_reader_program,
    make_writer_program,
)
from repro.workloads.registry import (
    REGISTRY,
    ParamSpec,
    ScenarioRef,
    ScenarioRegistry,
    ScenarioSpec,
    build_scenario,
    scenario,
    scenario_names,
    scenario_ref,
)
from repro.workloads.spin import make_spin_program
from repro.workloads import barrier, fig1, pipeline, priority_inversion, scenarios

__all__ = [
    "REGISTRY",
    "ParamSpec",
    "ScenarioRef",
    "ScenarioRegistry",
    "ScenarioSpec",
    "build_scenario",
    "scenario",
    "scenario_names",
    "scenario_ref",
    "make_spin_program",
    "QSORT_ELEMENTS",
    "make_quicksort_program",
    "quicksort_steps",
    "make_philosopher_program",
    "fork_names",
    "make_consumer_program",
    "make_producer_program",
    "make_reader_program",
    "make_writer_program",
    "barrier",
    "fig1",
    "pipeline",
    "priority_inversion",
    "scenarios",
]
