"""Ready-made test scenarios binding workloads to the pTest harness.

Each scenario function returns a fully-wired
:class:`~repro.ptest.harness.AdaptiveTest` so examples, tests and
benches share one definition of "the paper's test case N".

Every scenario here is also registered, by name, in the default
:class:`~repro.workloads.registry.ScenarioRegistry` — the
``@scenario("...")`` decorators below are what make
``scenario_ref("philosophers", op="cyclic")`` resolvable in campaign
worker processes, the CLI and downstream scripts.
"""

from __future__ import annotations

from repro.automata.pfa import PFA, Transition
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest
from repro.workloads.barrier import make_barrier_program, setup_barrier
from repro.workloads.philosophers import make_philosopher_program
from repro.workloads.pipeline import (
    make_sink_program,
    make_source_program,
    make_stage_program,
    queue_name,
)
from repro.workloads.producer_consumer import (
    ITEMS_SEM,
    SPACE_SEM,
    make_consumer_program,
    make_producer_program,
)
from repro.workloads.quicksort import make_quicksort_program
from repro.workloads.readers_writers import (
    make_reader_program,
    make_writer_program,
)
from repro.workloads.registry import scenario
from repro.workloads.spin import make_spin_program


def lifecycle_pfa(symbols: tuple[str, ...]) -> PFA:
    """A degenerate PFA whose every walk is exactly ``symbols`` — used
    when a scenario needs a *crafted* pattern (the paper "set the
    pattern merger ... to produce the test pattern that forced ..."),
    while still flowing through the ordinary generator machinery."""
    transitions: dict[int, dict[str, Transition]] = {}
    for index, symbol in enumerate(symbols):
        transitions[index] = {
            symbol: Transition(
                source=index, symbol=symbol, target=index + 1, probability=1.0
            )
        }
    return PFA(
        num_states=len(symbols) + 1,
        alphabet=frozenset(symbols),
        transitions=transitions,
        start=0,
        accepts=frozenset({len(symbols)}),
        state_labels={len(symbols): "end"},
    )


@scenario("quicksort_stress")
def stress_case1(
    seed: int = 0,
    buggy_gc: bool = True,
    memory_bytes: int = 24 * 1024,
    max_ticks: int = 200_000,
    pattern_size: int = 6,
) -> AdaptiveTest:
    """Test case 1: 16 quick-sort tasks under create/delete churn.

    "pTest kept the number of active tasks at 16 in pCore ... All of 16
    active tasks performed the same quick-sort algorithm to individually
    sort 128 integer elements ... pTest continued to create tasks and
    removed them when their work was done."

    With ``buggy_gc=True`` the kernel leaks the memory of tasks deleted
    mid-flight and eventually panics in ``task_create`` — the crash the
    paper's first test period found.  ``memory_bytes`` is shrunk from
    160 KB so the leak reaches exhaustion in simulation-scale time; the
    fault and its detection path are unchanged.
    """
    config = PTestConfig(
        pattern_count=16,
        pattern_size=pattern_size,
        op="random",
        seed=seed,
        program="qsort",
        lockstep=True,
        restart_patterns=True,
        max_ticks=max_ticks,
        # Under strict priority scheduling the lowest-priority quicksort
        # task legitimately waits for its betters; the no-progress window
        # must exceed that latency or starvation masks the crash.
        progress_window=50_000,
        reply_timeout=10_000,
        kernel=KernelConfig(
            max_tasks=16,
            buggy_gc=buggy_gc,
            memory_bytes=memory_bytes,
            gc_interval=32,
        ),
    )
    return AdaptiveTest(
        config=config,
        programs={"qsort": make_quicksort_program()},
    )


@scenario("philosophers")
def philosophers_case2(
    seed: int = 0,
    op: str = "cyclic",
    chunk: int = 2,
    count: int = 3,
    ordered: bool = False,
    max_ticks: int = 30_000,
    hold_steps: int = 60,
) -> AdaptiveTest:
    """Test case 2: the buggy dining philosophers.

    Three tasks, three mutually exclusive resources; each pattern is the
    crafted lifecycle ``TC TS TR`` and the cyclic merge op interleaves
    them so every philosopher grabs its first fork, is suspended, and is
    resumed straight into the deadlock cycle.  ``ordered=True`` swaps in
    the correct acquisition order (control: no deadlock under any op).
    """
    programs = {
        f"phil{seat}": make_philosopher_program(
            seat, count=count, ordered=ordered, hold_steps=hold_steps
        )
        for seat in range(count)
    }

    # Each pair's pattern: create, suspend (mid-acquisition), resume.
    pfa = lifecycle_pfa(("TC", "TS", "TR"))
    config = PTestConfig(
        pattern_count=count,
        pattern_size=3,
        op=op,
        chunk=chunk,
        seed=seed,
        program="phil0",
        pair_programs=tuple(f"phil{seat}" for seat in range(count)),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=2_000,  # let deadlock win over starvation
        reply_timeout=5_000,
    )
    return AdaptiveTest(config=config, programs=programs, pfa=pfa)


def philosophers_programs(count: int = 3, ordered: bool = False) -> dict:
    """The per-seat philosopher programs, for custom harness wiring."""
    return {
        f"phil{seat}": make_philosopher_program(seat, count=count, ordered=ordered)
        for seat in range(count)
    }


@scenario("philosophers_random")
def build_philosophers_random(seed: int):
    """ConTest-style random noise on the philosophers scenario (same
    fault, unstructured interleaving)."""
    from repro.baselines.random_tester import RandomTester

    scenario = philosophers_case2(seed=seed)
    return RandomTester(
        config=scenario.config, programs=dict(scenario.programs)
    )


@scenario("priority_inversion")
def priority_inversion_scenario(
    seed: int = 0,
    inheritance: bool = False,
    hog_steps: int = 3_000,
    max_ticks: int = 15_000,
) -> AdaptiveTest:
    """The classic priority-inversion triple (low locker / medium hog /
    high waiter) as a *latency* study.

    Without ``inheritance`` the high-priority waiter's lock acquisition
    waits behind the medium hog's whole burst (inverted priorities);
    with the kernel's priority-inheritance switch the low owner is
    boosted, releases promptly, and the high task completes ~20x
    earlier.  Use :func:`high_task_completion_tick` on the returned
    test's tracer after running to extract the metric.  The detector is
    configured quiet here (waits are finite); the fault-catalogue's
    ``priority_starvation`` entry covers the detection path.
    """
    from repro.workloads.priority_inversion import (
        make_high_waiter_program,
        make_hog_program,
        make_low_locker_program,
    )

    config = PTestConfig(
        pattern_count=3,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="pi_low",
        # Pair bands make pair0 < pair1 < pair2 in priority.
        pair_programs=("pi_low", "pi_hog", "pi_high"),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=4 * max_ticks,
        reply_timeout=4 * max_ticks,
        kernel=KernelConfig(priority_inheritance=inheritance),
    )
    return AdaptiveTest(
        config=config,
        programs={
            "pi_low": make_low_locker_program(),
            "pi_hog": make_hog_program(burn_steps=hog_steps),
            "pi_high": make_high_waiter_program(),
        },
        pfa=lifecycle_pfa(("TC",)),
    )


def high_task_completion_tick(test: AdaptiveTest) -> int | None:
    """Tick at which the high-priority waiter of
    :func:`priority_inversion_scenario` terminated (``None`` if it never
    did).  Pair 2's task is created third, so it holds tid 3."""
    for event in test.tracer.events:
        if (
            event.category == "task"
            and event.payload.get("event") == "terminate"
            and event.payload.get("tid") == 3
        ):
            return event.time
    return None


@scenario("producer_consumer")
def producer_consumer_scenario(
    seed: int = 0,
    items: int = 12,
    ring_slots: int = 4,
    faulty: bool = False,
    max_ticks: int = 40_000,
) -> AdaptiveTest:
    """A two-pair producer/consumer run (detector sanity + lost-wakeup
    starvation when ``faulty``)."""

    def setup(kernel: PCoreKernel) -> None:
        kernel.add_semaphore(ITEMS_SEM, 0)
        kernel.add_semaphore(SPACE_SEM, ring_slots)

    pfa = lifecycle_pfa(("TC",))
    config = PTestConfig(
        pattern_count=2,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="producer",
        pair_programs=("producer", "consumer"),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=800,
        reply_timeout=5_000,
    )
    return AdaptiveTest(
        config=config,
        programs={
            "producer": make_producer_program(
                items, ring_slots=ring_slots, faulty=faulty
            ),
            "consumer": make_consumer_program(items, ring_slots=ring_slots),
        },
        pfa=pfa,
        setup=setup,
    )


@scenario("barrier")
def barrier_scenario(
    seed: int = 0,
    parties: int = 3,
    phases: int = 4,
    work: int = 5,
    faulty: bool = False,
    max_ticks: int = 25_000,
    progress_window: int = 2_000,
) -> AdaptiveTest:
    """Cyclic-barrier group: ``parties`` tasks meeting every phase.

    Healthy runs drain cleanly; with ``faulty=True`` the last arriver
    drops one turnstile release on every third phase, so from the next
    phase on the whole group blocks on the turnstile forever and the
    detector reports STARVATION of the blocked tasks.
    """
    program = make_barrier_program(
        parties, phases=phases, work=work, faulty=faulty
    )
    config = PTestConfig(
        pattern_count=parties,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="barrier_member",
        pair_programs=("barrier_member",) * parties,
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=progress_window,
        reply_timeout=5_000,
    )
    return AdaptiveTest(
        config=config,
        programs={"barrier_member": program},
        pfa=lifecycle_pfa(("TC",)),
        setup=setup_barrier,
    )


@scenario("readers_writers")
def readers_writers_scenario(
    seed: int = 0,
    readers: int = 2,
    reads: int = 6,
    increments: int = 6,
    hold_steps: int = 2,
    greedy: bool = False,
    max_ticks: int = 30_000,
    progress_window: int = 5_000,
) -> AdaptiveTest:
    """Readers/writers over the shared counter: one writer (pair 0, the
    lowest priority band) plus ``readers`` reader tasks.

    The plain variant is a healthy concurrent mutex workload (detector
    false-positive coverage); ``greedy=True`` readers hold the lock 50x
    longer, squeezing the writer — shrink ``progress_window`` to study
    the detector's starvation threshold against it.
    """
    config = PTestConfig(
        pattern_count=readers + 1,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="rw_writer",
        pair_programs=("rw_writer",) + ("rw_reader",) * readers,
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=progress_window,
        reply_timeout=5_000,
    )
    return AdaptiveTest(
        config=config,
        programs={
            "rw_writer": make_writer_program(
                increments, hold_steps=hold_steps
            ),
            "rw_reader": make_reader_program(
                reads, hold_steps=hold_steps, greedy=greedy
            ),
        },
        pfa=lifecycle_pfa(("TC",)),
    )


@scenario("pipeline")
def pipeline_scenario(
    seed: int = 0,
    stages: int = 2,
    count: int = 12,
    queue_capacity: int = 2,
    work: int = 1,
    max_ticks: int = 40_000,
    progress_window: int = 5_000,
) -> AdaptiveTest:
    """``source -> stage_1 .. stage_k -> sink`` over kernel queues.

    Pair bands ascend along the pipeline, so the sink runs hottest and
    queues stay short (maximum context-switch pressure), mirroring
    :func:`repro.workloads.pipeline.build_pipeline`.  The sink asserts
    the stream arrives in order; a healthy run drains clean.
    """
    stage_names = tuple(f"pipe_stage{index}" for index in range(stages))
    pair_programs = ("pipe_source",) + stage_names + ("pipe_sink",)
    programs = {
        "pipe_source": make_source_program(count, work=work),
        "pipe_sink": make_sink_program(stages, count),
    }
    for index, name in enumerate(stage_names):
        programs[name] = make_stage_program(index, count, work=work)

    def setup(kernel: PCoreKernel) -> None:
        for index in range(stages + 1):
            kernel.add_message_queue(
                queue_name(index), capacity=queue_capacity
            )

    config = PTestConfig(
        pattern_count=len(pair_programs),
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="pipe_source",
        pair_programs=pair_programs,
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=progress_window,
        reply_timeout=5_000,
    )
    return AdaptiveTest(
        config=config,
        programs=programs,
        pfa=lifecycle_pfa(("TC",)),
        setup=setup,
    )


@scenario("clean_spin")
def clean_spin_scenario(
    seed: int = 0,
    tasks: int = 3,
    total_steps: int = 600,
    chunk: int = 20,
) -> AdaptiveTest:
    """Long-running *clean* campaign cell for executor benchmarking.

    ``tasks`` spinners each compute ``total_steps`` units in polite
    ``chunk``-sized slices and exit; under strict priority scheduling
    they run to completion one band at a time, so the run lasts about
    ``tasks * total_steps`` ticks and never detects anything — the
    detector windows are derived from the duration so no legitimate
    wait can trip them (the ordered-philosophers control cannot make
    that promise once its holds outgrow the progress window).
    """
    duration = tasks * total_steps
    config = PTestConfig(
        pattern_count=tasks,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="spinner",
        pair_programs=("spinner",) * tasks,
        lockstep=True,
        max_ticks=4 * duration + 10_000,
        progress_window=2 * duration + 2_000,
        reply_timeout=2 * duration + 2_000,
    )
    return AdaptiveTest(
        config=config,
        programs={"spinner": make_spin_program(total_steps, chunk=chunk)},
        pfa=lifecycle_pfa(("TC",)),
    )
