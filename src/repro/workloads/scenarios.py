"""Ready-made test scenarios binding workloads to the pTest harness.

Each scenario function returns a fully-wired
:class:`~repro.ptest.harness.AdaptiveTest` so examples, tests and
benches share one definition of "the paper's test case N".
"""

from __future__ import annotations

from repro.automata.pfa import PFA, Transition
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest
from repro.workloads.philosophers import make_philosopher_program
from repro.workloads.producer_consumer import (
    ITEMS_SEM,
    SPACE_SEM,
    make_consumer_program,
    make_producer_program,
)
from repro.workloads.quicksort import make_quicksort_program


def lifecycle_pfa(symbols: tuple[str, ...]) -> PFA:
    """A degenerate PFA whose every walk is exactly ``symbols`` — used
    when a scenario needs a *crafted* pattern (the paper "set the
    pattern merger ... to produce the test pattern that forced ..."),
    while still flowing through the ordinary generator machinery."""
    transitions: dict[int, dict[str, Transition]] = {}
    for index, symbol in enumerate(symbols):
        transitions[index] = {
            symbol: Transition(
                source=index, symbol=symbol, target=index + 1, probability=1.0
            )
        }
    return PFA(
        num_states=len(symbols) + 1,
        alphabet=frozenset(symbols),
        transitions=transitions,
        start=0,
        accepts=frozenset({len(symbols)}),
        state_labels={len(symbols): "end"},
    )


def stress_case1(
    seed: int = 0,
    buggy_gc: bool = True,
    memory_bytes: int = 24 * 1024,
    max_ticks: int = 200_000,
    pattern_size: int = 6,
) -> AdaptiveTest:
    """Test case 1: 16 quick-sort tasks under create/delete churn.

    "pTest kept the number of active tasks at 16 in pCore ... All of 16
    active tasks performed the same quick-sort algorithm to individually
    sort 128 integer elements ... pTest continued to create tasks and
    removed them when their work was done."

    With ``buggy_gc=True`` the kernel leaks the memory of tasks deleted
    mid-flight and eventually panics in ``task_create`` — the crash the
    paper's first test period found.  ``memory_bytes`` is shrunk from
    160 KB so the leak reaches exhaustion in simulation-scale time; the
    fault and its detection path are unchanged.
    """
    config = PTestConfig(
        pattern_count=16,
        pattern_size=pattern_size,
        op="random",
        seed=seed,
        program="qsort",
        lockstep=True,
        restart_patterns=True,
        max_ticks=max_ticks,
        # Under strict priority scheduling the lowest-priority quicksort
        # task legitimately waits for its betters; the no-progress window
        # must exceed that latency or starvation masks the crash.
        progress_window=50_000,
        reply_timeout=10_000,
        kernel=KernelConfig(
            max_tasks=16,
            buggy_gc=buggy_gc,
            memory_bytes=memory_bytes,
            gc_interval=32,
        ),
    )
    return AdaptiveTest(
        config=config,
        programs={"qsort": make_quicksort_program()},
    )


def philosophers_case2(
    seed: int = 0,
    op: str = "cyclic",
    chunk: int = 2,
    count: int = 3,
    ordered: bool = False,
    max_ticks: int = 30_000,
    hold_steps: int = 60,
) -> AdaptiveTest:
    """Test case 2: the buggy dining philosophers.

    Three tasks, three mutually exclusive resources; each pattern is the
    crafted lifecycle ``TC TS TR`` and the cyclic merge op interleaves
    them so every philosopher grabs its first fork, is suspended, and is
    resumed straight into the deadlock cycle.  ``ordered=True`` swaps in
    the correct acquisition order (control: no deadlock under any op).
    """
    programs = {
        f"phil{seat}": make_philosopher_program(
            seat, count=count, ordered=ordered, hold_steps=hold_steps
        )
        for seat in range(count)
    }

    # Each pair's pattern: create, suspend (mid-acquisition), resume.
    pfa = lifecycle_pfa(("TC", "TS", "TR"))
    config = PTestConfig(
        pattern_count=count,
        pattern_size=3,
        op=op,
        chunk=chunk,
        seed=seed,
        program="phil0",
        pair_programs=tuple(f"phil{seat}" for seat in range(count)),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=2_000,  # let deadlock win over starvation
        reply_timeout=5_000,
    )
    return AdaptiveTest(config=config, programs=programs, pfa=pfa)


def philosophers_programs(count: int = 3, ordered: bool = False) -> dict:
    """The per-seat philosopher programs, for custom harness wiring."""
    return {
        f"phil{seat}": make_philosopher_program(seat, count=count, ordered=ordered)
        for seat in range(count)
    }


def build_philosophers_ptest(seed: int) -> AdaptiveTest:
    """Picklable campaign builder: pTest (cyclic op) on test case 2.

    Module-level so :class:`~repro.ptest.executor.CellExecutor` can
    ship it to worker processes; shared by the comparison bench and
    ``examples/baseline_comparison.py``.
    """
    return philosophers_case2(seed=seed, op="cyclic")


def build_philosophers_random(seed: int):
    """Picklable campaign builder: ConTest-style random noise on the
    philosophers scenario (same fault, unstructured interleaving)."""
    from repro.baselines.random_tester import RandomTester

    scenario = philosophers_case2(seed=seed)
    return RandomTester(
        config=scenario.config, programs=dict(scenario.programs)
    )


def priority_inversion_scenario(
    seed: int = 0,
    inheritance: bool = False,
    hog_steps: int = 3_000,
    max_ticks: int = 15_000,
) -> AdaptiveTest:
    """The classic priority-inversion triple (low locker / medium hog /
    high waiter) as a *latency* study.

    Without ``inheritance`` the high-priority waiter's lock acquisition
    waits behind the medium hog's whole burst (inverted priorities);
    with the kernel's priority-inheritance switch the low owner is
    boosted, releases promptly, and the high task completes ~20x
    earlier.  Use :func:`high_task_completion_tick` on the returned
    test's tracer after running to extract the metric.  The detector is
    configured quiet here (waits are finite); the fault-catalogue's
    ``priority_starvation`` entry covers the detection path.
    """
    from repro.workloads.priority_inversion import (
        make_high_waiter_program,
        make_hog_program,
        make_low_locker_program,
    )

    config = PTestConfig(
        pattern_count=3,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="pi_low",
        # Pair bands make pair0 < pair1 < pair2 in priority.
        pair_programs=("pi_low", "pi_hog", "pi_high"),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=4 * max_ticks,
        reply_timeout=4 * max_ticks,
        kernel=KernelConfig(priority_inheritance=inheritance),
    )
    return AdaptiveTest(
        config=config,
        programs={
            "pi_low": make_low_locker_program(),
            "pi_hog": make_hog_program(burn_steps=hog_steps),
            "pi_high": make_high_waiter_program(),
        },
        pfa=lifecycle_pfa(("TC",)),
    )


def high_task_completion_tick(test: AdaptiveTest) -> int | None:
    """Tick at which the high-priority waiter of
    :func:`priority_inversion_scenario` terminated (``None`` if it never
    did).  Pair 2's task is created third, so it holds tid 3."""
    for event in test.tracer.events:
        if (
            event.category == "task"
            and event.payload.get("event") == "terminate"
            and event.payload.get("tid") == 3
        ):
            return event.time
    return None


def producer_consumer_scenario(
    seed: int = 0,
    items: int = 12,
    ring_slots: int = 4,
    faulty: bool = False,
    max_ticks: int = 40_000,
) -> AdaptiveTest:
    """A two-pair producer/consumer run (detector sanity + lost-wakeup
    starvation when ``faulty``)."""

    def setup(kernel: PCoreKernel) -> None:
        kernel.add_semaphore(ITEMS_SEM, 0)
        kernel.add_semaphore(SPACE_SEM, ring_slots)

    pfa = lifecycle_pfa(("TC",))
    config = PTestConfig(
        pattern_count=2,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="producer",
        pair_programs=("producer", "consumer"),
        lockstep=True,
        max_ticks=max_ticks,
        progress_window=800,
        reply_timeout=5_000,
    )
    return AdaptiveTest(
        config=config,
        programs={
            "producer": make_producer_program(
                items, ring_slots=ring_slots, faulty=faulty
            ),
            "consumer": make_consumer_program(items, ring_slots=ring_slots),
        },
        pfa=pfa,
        setup=setup,
    )
