"""Dining philosophers (the paper's second test case).

"We implemented a buggy version of the dining philosophers problem that
could lead to deadlock.  The algorithm consisted of three concurrent
tasks in pCore and three shared resources that were mutually exclusive.
A task needed two shared resources to resume its execution."

The buggy variant acquires ``fork[i]`` then ``fork[(i+1) % count]`` —
the classic cyclic acquisition order.  Under plain priority scheduling a
single task grabs both forks and eats before anyone else runs; the
deadlock only appears when a scheduler-like force (pTest's cyclic merge
op suspending each task between its two acquisitions) makes every task
hold one fork.  The ``hold_steps`` compute between the acquisitions is
the window that force aims at.

The correct variant acquires forks in ascending name order, which breaks
the cycle regardless of interleaving — the control for E6.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    Release,
    Syscall,
    TaskContext,
    YieldCpu,
)


def fork_names(count: int = 3) -> list[str]:
    """Names of the shared resources (auto-created kernel mutexes)."""
    return [f"fork{i}" for i in range(count)]


def make_philosopher_program(
    seat: int,
    count: int = 3,
    meals: int = 3,
    hold_steps: int = 60,
    eat_steps: int = 5,
    ordered: bool = False,
):
    """Build one philosopher's task program.

    Parameters
    ----------
    seat:
        The philosopher's position (0-based); determines its forks.
    count:
        Number of philosophers/forks.
    meals:
        Meals before the task exits on its own.
    hold_steps:
        Compute units between the first and second acquisition — the
        suspension window for the deadlock-forcing pattern.
    eat_steps:
        Compute units while holding both forks.
    ordered:
        ``True`` = correct ascending acquisition (no deadlock possible),
        ``False`` = the paper's buggy cyclic order.
    """
    if not 0 <= seat < count:
        raise ReproError(f"seat {seat} out of range for {count} philosophers")
    if count < 2:
        raise ReproError(f"need at least 2 philosophers, got {count}")
    forks = fork_names(count)
    first, second = forks[seat], forks[(seat + 1) % count]
    if ordered and first > second:
        first, second = second, first

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for _meal in range(meals):
            yield Acquire(first)
            yield Compute(hold_steps)  # <- the window pTest's TS targets
            yield Acquire(second)
            yield Compute(eat_steps)
            yield Release(second)
            yield Release(first)
            yield YieldCpu()
        yield Exit(meals)

    return program
