"""Cyclic barrier built from kernel semaphores.

``parties`` tasks compute a phase, then meet at a barrier before the
next phase — the lock-step structure of data-parallel DSP kernels.  The
barrier is a classic two-semaphore turnstile over a shared counter in
SRAM.  The ``faulty`` variant drops one turnstile release every third
phase, wedging the whole group (everyone blocked on the turnstile) —
which the detector reports as starvation of blocked tasks.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    Release,
    Syscall,
    TaskContext,
)

COUNT_ADDR = 0x0D00
BARRIER_MUTEX = "barrier_mutex"
TURNSTILE_SEM = "barrier_turnstile"


def setup_barrier(kernel: PCoreKernel) -> None:
    """Register the barrier's semaphore (closed) before tasks start."""
    kernel.add_semaphore(TURNSTILE_SEM, 0)


def make_barrier_program(
    parties: int, phases: int = 3, work: int = 5, faulty: bool = False
):
    """One participant of a ``parties``-task barrier group.

    The last arriver of each phase releases the turnstile ``parties - 1``
    times (once per waiter); the faulty variant releases one short on
    every third phase.
    """
    if parties < 2:
        raise ReproError(f"parties must be >= 2, got {parties}")
    if phases < 1:
        raise ReproError(f"phases must be >= 1, got {phases}")

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        for phase in range(phases):
            yield Compute(work)
            # Arrive: bump the shared counter under the mutex.
            yield Acquire(BARRIER_MUTEX)
            arrived = (yield MemRead(COUNT_ADDR)) + 1
            yield MemWrite(COUNT_ADDR, arrived % 2**16)
            yield Release(BARRIER_MUTEX)
            if arrived == parties:
                # Last arriver: reset and open the turnstile for others.
                yield MemWrite(COUNT_ADDR, 0)
                releases = parties - 1
                if faulty and phase % 3 == 2:
                    releases -= 1  # the dropped release
                for _ in range(releases):
                    yield Release(TURNSTILE_SEM)
            else:
                yield Acquire(TURNSTILE_SEM)
        yield Exit(phases)

    return program
