"""Deterministic finite automata via subset construction.

The paper's ``ConstructPFA`` attaches probabilities to an automaton whose
per-state outgoing arcs are distinguishable by symbol; determinising the
Thompson NFA first gives exactly that structure (one arc per (state,
symbol)), so probability rows are well defined.  Hopcroft-style
minimization keeps the PFA close to the hand-drawn figures in the paper
(Fig. 3 and Fig. 5 are minimal).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.errors import AutomatonError


@dataclass
class DFA:
    """A deterministic finite automaton.

    ``transitions[state][symbol]`` is the unique successor, when defined.
    Missing entries mean the word is rejected (no dead state is stored).
    """

    num_states: int
    alphabet: frozenset[str]
    transitions: dict[int, dict[str, int]]
    start: int
    accepts: frozenset[int]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.num_states:
            raise AutomatonError(f"start state {self.start} out of range")
        for state in self.accepts:
            if not 0 <= state < self.num_states:
                raise AutomatonError(f"accept state {state} out of range")
        for state, arcs in self.transitions.items():
            if not 0 <= state < self.num_states:
                raise AutomatonError(f"state {state} out of range")
            for symbol, target in arcs.items():
                if symbol not in self.alphabet:
                    raise AutomatonError(f"unknown symbol {symbol!r}")
                if not 0 <= target < self.num_states:
                    raise AutomatonError(f"target {target} out of range")

    def step(self, state: int, symbol: str) -> int | None:
        """Return the successor of ``state`` on ``symbol``, or ``None``."""
        return self.transitions.get(state, {}).get(symbol)

    def accepts_word(self, word: list[str] | tuple[str, ...]) -> bool:
        """Run the DFA on a symbol sequence."""
        state: int | None = self.start
        for symbol in word:
            if state is None:
                return False
            state = self.step(state, symbol)
        return state is not None and state in self.accepts

    def outgoing(self, state: int) -> dict[str, int]:
        """Return the outgoing arc map of ``state`` (possibly empty)."""
        return dict(self.transitions.get(state, {}))

    def is_final(self, state: int) -> bool:
        return state in self.accepts


def nfa_to_dfa(nfa: NFA) -> DFA:
    """Subset construction; unreachable subsets are never materialised."""
    start_set = nfa.epsilon_closure([nfa.start])
    ids: dict[frozenset[int], int] = {start_set: 0}
    order: list[frozenset[int]] = [start_set]
    transitions: dict[int, dict[str, int]] = {}
    queue: deque[frozenset[int]] = deque([start_set])
    symbols = sorted(nfa.alphabet)
    while queue:
        subset = queue.popleft()
        source = ids[subset]
        for symbol in symbols:
            moved = nfa.move(subset, symbol)
            if not moved:
                continue
            target_set = nfa.epsilon_closure(moved)
            if target_set not in ids:
                ids[target_set] = len(order)
                order.append(target_set)
                queue.append(target_set)
            transitions.setdefault(source, {})[symbol] = ids[target_set]
    accepts = frozenset(
        ids[subset] for subset in order if subset & nfa.accepts
    )
    return DFA(
        num_states=len(order),
        alphabet=nfa.alphabet,
        transitions=transitions,
        start=0,
        accepts=accepts,
    )


def _partition_refine(dfa: DFA) -> list[set[int]]:
    """Moore-style partition refinement (simple, O(n^2 * |Sigma|))."""
    accepting = set(dfa.accepts)
    non_accepting = set(range(dfa.num_states)) - accepting
    partition = [block for block in (accepting, non_accepting) if block]
    symbols = sorted(dfa.alphabet)
    changed = True
    while changed:
        changed = False
        block_of = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index
        new_partition: list[set[int]] = []
        for block in partition:
            buckets: dict[tuple[int | None, ...], set[int]] = {}
            for state in block:
                signature = tuple(
                    block_of.get(dfa.step(state, symbol))
                    if dfa.step(state, symbol) is not None
                    else None
                    for symbol in symbols
                )
                buckets.setdefault(signature, set()).add(state)
            new_partition.extend(buckets.values())
            if len(buckets) > 1:
                changed = True
        partition = new_partition
    return partition


def minimize_dfa(dfa: DFA) -> DFA:
    """Return an equivalent DFA with the minimum number of live states.

    The start state's block is renumbered to 0 so downstream code can keep
    assuming ``start == 0``.
    """
    partition = _partition_refine(dfa)
    block_of: dict[int, int] = {}
    # Renumber blocks with the start block first, then in discovery order.
    start_block = next(
        index for index, block in enumerate(partition) if dfa.start in block
    )
    ordering = [start_block] + [
        index for index in range(len(partition)) if index != start_block
    ]
    renumber = {old: new for new, old in enumerate(ordering)}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = renumber[index]
    transitions: dict[int, dict[str, int]] = {}
    for state, arcs in dfa.transitions.items():
        source = block_of[state]
        for symbol, target in arcs.items():
            transitions.setdefault(source, {})[symbol] = block_of[target]
    accepts = frozenset(block_of[state] for state in dfa.accepts)
    return DFA(
        num_states=len(partition),
        alphabet=dfa.alphabet,
        transitions=transitions,
        start=block_of[dfa.start],
        accepts=accepts,
    )
