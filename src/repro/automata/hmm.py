"""Hidden Markov models over the PFA state space.

The paper (§III-A): "in practice, a hidden Markov model (HMM) that
emits a sequence of symbols according to probability distributions is
the most common type of probabilistic finite-state automata."  This
module provides that generalisation: states carry *emission*
distributions separate from the transition structure, with the standard
forward algorithm (sequence likelihood), Viterbi decoding (most likely
state path for an observed service trace — useful for diagnosing where
a logged trace sits in the task life cycle) and ancestral sampling.

The plain PFA is the special case where each transition deterministically
emits its own symbol; :func:`hmm_from_pfa` performs that embedding.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.automata.pfa import PFA
from repro.errors import DistributionError

_TOLERANCE = 1e-9


@dataclass
class HMM:
    """A discrete-emission hidden Markov model.

    Attributes
    ----------
    transition:
        Row-stochastic matrix ``A[i, j] = P(next=j | current=i)``.
    emission:
        Row-stochastic matrix ``B[i, k] = P(emit symbols[k] | state=i)``.
    initial:
        Initial state distribution ``pi``.
    symbols:
        Emission alphabet, indexing ``emission``'s columns.
    """

    transition: np.ndarray
    emission: np.ndarray
    initial: np.ndarray
    symbols: tuple[str, ...]
    _symbol_index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        states = self.transition.shape[0]
        if self.transition.shape != (states, states):
            raise DistributionError("transition matrix must be square")
        if self.emission.shape[0] != states:
            raise DistributionError("emission rows must match state count")
        if self.emission.shape[1] != len(self.symbols):
            raise DistributionError("emission columns must match symbols")
        if self.initial.shape != (states,):
            raise DistributionError("initial vector shape mismatch")
        for name, matrix in (
            ("transition", self.transition),
            ("emission", self.emission),
        ):
            sums = matrix.sum(axis=1)
            if not np.allclose(sums, 1.0, atol=_TOLERANCE):
                raise DistributionError(f"{name} rows must sum to 1")
        if abs(self.initial.sum() - 1.0) > _TOLERANCE:
            raise DistributionError("initial distribution must sum to 1")
        self._symbol_index = {s: k for k, s in enumerate(self.symbols)}

    @property
    def num_states(self) -> int:
        return self.transition.shape[0]

    def _observation_indices(self, observations: list[str]) -> list[int]:
        try:
            return [self._symbol_index[symbol] for symbol in observations]
        except KeyError as error:
            raise DistributionError(f"unknown symbol {error.args[0]!r}") from None

    def forward(self, observations: list[str]) -> float:
        """Sequence likelihood ``P(observations)`` (forward algorithm)."""
        if not observations:
            return 1.0
        indices = self._observation_indices(observations)
        alpha = self.initial * self.emission[:, indices[0]]
        for index in indices[1:]:
            alpha = (alpha @ self.transition) * self.emission[:, index]
        return float(alpha.sum())

    def log_forward(self, observations: list[str]) -> float:
        """Log-likelihood with per-step scaling (long-trace safe)."""
        if not observations:
            return 0.0
        indices = self._observation_indices(observations)
        alpha = self.initial * self.emission[:, indices[0]]
        log_likelihood = 0.0
        for step, index in enumerate(indices):
            if step > 0:
                alpha = (alpha @ self.transition) * self.emission[:, index]
            total = alpha.sum()
            if total <= 0:
                return -math.inf
            log_likelihood += math.log(total)
            alpha = alpha / total
        return log_likelihood

    def viterbi(self, observations: list[str]) -> tuple[list[int], float]:
        """Most likely state path and its log-probability."""
        if not observations:
            return [], 0.0
        indices = self._observation_indices(observations)
        with np.errstate(divide="ignore"):
            log_a = np.log(self.transition)
            log_b = np.log(self.emission)
            log_pi = np.log(self.initial)
        steps = len(indices)
        delta = np.full((steps, self.num_states), -np.inf)
        backpointer = np.zeros((steps, self.num_states), dtype=int)
        delta[0] = log_pi + log_b[:, indices[0]]
        for t in range(1, steps):
            scores = delta[t - 1][:, None] + log_a
            backpointer[t] = scores.argmax(axis=0)
            delta[t] = scores.max(axis=0) + log_b[:, indices[t]]
        best_last = int(delta[-1].argmax())
        path = [best_last]
        for t in range(steps - 1, 0, -1):
            path.append(int(backpointer[t, path[-1]]))
        path.reverse()
        return path, float(delta[-1, best_last])

    def sample(self, length: int, seed: int | None = None) -> list[str]:
        """Ancestral sampling of an observation sequence."""
        rng = random.Random(seed)
        state = rng.choices(
            range(self.num_states), weights=self.initial.tolist()
        )[0]
        observations = []
        for _ in range(length):
            symbol_index = rng.choices(
                range(len(self.symbols)),
                weights=self.emission[state].tolist(),
            )[0]
            observations.append(self.symbols[symbol_index])
            state = rng.choices(
                range(self.num_states),
                weights=self.transition[state].tolist(),
            )[0]
        return observations


def hmm_from_pfa(pfa: PFA) -> HMM:
    """Embed a PFA as an HMM.

    Each PFA *transition* becomes an HMM state that deterministically
    emits its symbol; HMM transitions follow the PFA's structure.
    Absorbing PFA states get a self-looping silent-ish sink emitting a
    reserved ``"$"`` symbol (so rows stay stochastic).
    """
    arcs = [
        transition
        for state in range(pfa.num_states)
        for transition in pfa.outgoing(state)
    ]
    if not arcs:
        raise DistributionError("PFA has no transitions to embed")
    symbols = tuple(sorted({arc.symbol for arc in arcs}) + ["$"])
    sink = len(arcs)
    size = len(arcs) + 1
    transition = np.zeros((size, size))
    emission = np.zeros((size, len(symbols)))
    initial = np.zeros(size)
    symbol_index = {s: k for k, s in enumerate(symbols)}
    arc_ids = {id(arc): i for i, arc in enumerate(arcs)}
    outgoing_of = {
        state: pfa.outgoing(state) for state in range(pfa.num_states)
    }
    for i, arc in enumerate(arcs):
        emission[i, symbol_index[arc.symbol]] = 1.0
        successors = outgoing_of[arc.target]
        if successors:
            for succ in successors:
                transition[i, arc_ids[id(succ)]] = succ.probability
        else:
            transition[i, sink] = 1.0
    transition[sink, sink] = 1.0
    emission[sink, symbol_index["$"]] = 1.0
    for arc in outgoing_of[pfa.start]:
        initial[arc_ids[id(arc)]] = arc.probability
    return HMM(
        transition=transition,
        emission=emission,
        initial=initial,
        symbols=symbols,
    )
