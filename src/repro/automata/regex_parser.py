"""Parser for pTest service regular expressions.

Grammar (precedence low to high)::

    union   := concat ('|' concat)*
    concat  := postfix+
    postfix := atom ('*' | '+' | '?')*
    atom    := SYMBOL | '(' union ')'

plus the paper's ``$`` end-anchor, which may appear only at the end of a
concatenation branch (as in RE (2): ``(TD$ | TY$)``).  Semantically the
anchor contributes the empty string; it exists so users can transcribe the
paper's expressions verbatim.

Tokenization understands *multi-character* service symbols.  Two modes:

* default: a symbol is a maximal run of ``[A-Za-z0-9_]`` characters, so
  ``TC (TCH)*`` tokenizes as ``TC``, ``(``, ``TCH``, ``)``, ``*``;
* alphabet-aware: pass ``alphabet={"TC", "TS", "TR", ...}`` and runs of
  symbol characters are greedily split into the *longest* known symbols,
  so the paper's ``TSTR(TCH)*`` tokenizes as ``TS TR ( TCH ) *``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.automata.regex_ast import (
    Concat,
    Epsilon,
    Literal,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Union,
    concat_all,
)
from repro.errors import RegexSyntaxError

_OPERATORS = {"(", ")", "|", "*", "+", "?", "$"}
_POSTFIX = {"*", "+", "?"}


@dataclass(frozen=True)
class Token:
    """A single token: operator text or a service symbol."""

    kind: str  # "symbol" or "op"
    text: str
    position: int  # index in the token stream


def _split_symbol_run(run: str, offset: int, alphabet: frozenset[str]) -> list[str]:
    """Greedily split ``run`` into the longest symbols from ``alphabet``."""
    pieces: list[str] = []
    index = 0
    max_len = max(len(symbol) for symbol in alphabet)
    while index < len(run):
        for length in range(min(max_len, len(run) - index), 0, -1):
            candidate = run[index : index + length]
            if candidate in alphabet:
                pieces.append(candidate)
                index += length
                break
        else:
            raise RegexSyntaxError(
                f"cannot split {run!r} into alphabet symbols at offset "
                f"{offset + index} (unknown prefix {run[index:]!r})",
                position=offset + index,
            )
    return pieces


def tokenize(text: str, alphabet: Iterable[str] | None = None) -> list[Token]:
    """Tokenize a regular-expression string into :class:`Token` objects.

    Parameters
    ----------
    text:
        The regular expression source.
    alphabet:
        Optional set of known service symbols enabling greedy splitting of
        juxtaposed symbols (see module docstring).
    """
    known = frozenset(alphabet) if alphabet is not None else None
    if known is not None and not known:
        raise RegexSyntaxError("alphabet, when given, must be non-empty")
    tokens: list[Token] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATORS:
            tokens.append(Token("op", char, len(tokens)))
            index += 1
            continue
        if char.isalnum() or char == "_":
            start = index
            while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                index += 1
            run = text[start:index]
            if known is None:
                tokens.append(Token("symbol", run, len(tokens)))
            else:
                for piece in _split_symbol_run(run, start, known):
                    tokens.append(Token("symbol", piece, len(tokens)))
            continue
        raise RegexSyntaxError(
            f"unexpected character {char!r} at offset {index}", position=index
        )
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def parse(self) -> RegexNode:
        if not self._tokens:
            return Epsilon()
        node = self._union()
        if self._index < len(self._tokens):
            token = self._tokens[self._index]
            raise RegexSyntaxError(
                f"unexpected token {token.text!r}", position=token.position
            )
        return node

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    # -- grammar rules -------------------------------------------------

    def _union(self) -> RegexNode:
        node = self._concat()
        while True:
            token = self._peek()
            if token is None or token.text != "|":
                return node
            self._advance()
            node = Union(node, self._concat())

    def _concat(self) -> RegexNode:
        parts: list[RegexNode] = []
        anchored = False
        while True:
            token = self._peek()
            if token is None or token.text in {")", "|"}:
                break
            if token.text == "$":
                self._advance()
                anchored = True
                trailing = self._peek()
                if trailing is not None and trailing.text not in {")", "|"}:
                    raise RegexSyntaxError(
                        "'$' may only end a branch",
                        position=trailing.position,
                    )
                break
            if anchored:  # pragma: no cover - defended above
                raise RegexSyntaxError("content after '$'", position=token.position)
            parts.append(self._postfix())
        if not parts:
            if anchored:
                return Epsilon()
            token = self._peek()
            position = token.position if token is not None else None
            raise RegexSyntaxError("empty expression branch", position=position)
        return concat_all(parts)

    def _postfix(self) -> RegexNode:
        node = self._atom()
        while True:
            token = self._peek()
            if token is None or token.text not in _POSTFIX:
                return node
            self._advance()
            if token.text == "*":
                node = Star(node)
            elif token.text == "+":
                node = Plus(node)
            else:
                node = Optional_(node)

    def _atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression")
        if token.kind == "symbol":
            self._advance()
            return Literal(token.text)
        if token.text == "(":
            self._advance()
            node = self._union()
            closing = self._peek()
            if closing is None or closing.text != ")":
                raise RegexSyntaxError(
                    "unbalanced parenthesis", position=token.position
                )
            self._advance()
            return node
        raise RegexSyntaxError(
            f"unexpected token {token.text!r}", position=token.position
        )


def parse_regex(text: str, alphabet: Iterable[str] | None = None) -> RegexNode:
    """Parse a regular-expression string into an AST.

    >>> sorted(parse_regex("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)").symbols())
    ['TC', 'TCH', 'TD', 'TR', 'TS', 'TY']
    """
    return _Parser(tokenize(text, alphabet=alphabet)).parse()
