"""Markov-chain analysis of PFAs.

A PFA is a labelled Markov chain; this module computes the quantities the
paper's future work asks about ("identify the influence of probability
distributions on the generation of test pattern"): expected pattern
length, stationary behaviour, per-state choice entropy and exact string
probabilities.  numpy does the linear algebra.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

import numpy as np

from repro.automata.pfa import PFA
from repro.errors import AutomatonError


def transition_matrix(pfa: PFA) -> np.ndarray:
    """Dense row-stochastic matrix of the PFA's underlying chain.

    Absorbing states get a self-loop so every row sums to one; this is
    the standard embedding for absorbing-chain analysis.
    """
    matrix = np.zeros((pfa.num_states, pfa.num_states))
    for state in range(pfa.num_states):
        arcs = pfa.outgoing(state)
        if not arcs:
            matrix[state, state] = 1.0
            continue
        for transition in arcs:
            matrix[state, transition.target] += transition.probability
    return matrix


def reachable_states(pfa: PFA) -> frozenset[int]:
    """States reachable from the start state along positive-probability
    arcs."""
    seen = {pfa.start}
    queue = deque([pfa.start])
    while queue:
        state = queue.popleft()
        for transition in pfa.outgoing(state):
            if transition.target not in seen:
                seen.add(transition.target)
                queue.append(transition.target)
    return frozenset(seen)


def absorbing_states(pfa: PFA) -> frozenset[int]:
    """States with no outgoing transitions (walks end here)."""
    return frozenset(
        state for state in range(pfa.num_states) if pfa.is_absorbing(state)
    )


def expected_pattern_length(pfa: PFA, max_condition: float = 1e12) -> float:
    """Expected number of symbols emitted before absorption.

    Uses the fundamental matrix ``N = (I - Q)^-1`` of the absorbing
    chain, where ``Q`` restricts the transition matrix to transient
    states.  Returns ``math.inf`` when the start state cannot reach an
    absorbing state (the walk never terminates).
    """
    absorbing = absorbing_states(pfa)
    reachable = reachable_states(pfa)
    if not (absorbing & reachable):
        return math.inf
    transient = sorted(reachable - absorbing)
    if pfa.start in absorbing:
        return 0.0
    index = {state: i for i, state in enumerate(transient)}
    full = transition_matrix(pfa)
    q = np.zeros((len(transient), len(transient)))
    for state in transient:
        for transition in pfa.outgoing(state):
            if transition.target in index:
                q[index[state], index[transition.target]] += (
                    transition.probability
                )
    identity = np.eye(len(transient))
    system = identity - q
    if np.linalg.cond(system) > max_condition:
        return math.inf
    # Expected steps from each transient state: N @ 1.
    expected = np.linalg.solve(system, np.ones(len(transient)))
    return float(expected[index[pfa.start]])


def stationary_distribution(pfa: PFA, tolerance: float = 1e-12) -> np.ndarray:
    """Stationary distribution of the embedded chain (absorbing states
    self-loop).

    Solves ``pi P = pi`` with ``sum(pi) = 1`` via the eigenvector of the
    transposed matrix; for absorbing chains the mass concentrates on the
    absorbing states, which is itself informative (where do patterns
    end?).
    """
    matrix = transition_matrix(pfa)
    values, vectors = np.linalg.eig(matrix.T)
    best = None
    for i, value in enumerate(values):
        if abs(value - 1.0) < 1e-8:
            vector = np.real(vectors[:, i])
            if best is None or abs(vector).sum() > abs(best).sum():
                best = vector
    if best is None:
        raise AutomatonError("no unit eigenvalue found; matrix not stochastic?")
    best = np.abs(best)
    total = best.sum()
    if total < tolerance:
        raise AutomatonError("degenerate stationary vector")
    return best / total


def string_probability(pfa: PFA, word: Sequence[str]) -> float:
    """Exact probability that the PFA generates ``word`` and stops in a
    final state.  Mirrors :meth:`PFA.word_probability`, re-exported here
    for symmetry with the other analyses."""
    return pfa.word_probability(tuple(word))


def transition_entropy(pfa: PFA, state: int) -> float:
    """Shannon entropy (bits) of the choice made at ``state``.

    Zero for deterministic or absorbing states; higher entropy means the
    pattern generator explores more alternatives from that state.
    """
    arcs = pfa.outgoing(state)
    if len(arcs) <= 1:
        return 0.0
    return -sum(
        t.probability * math.log2(t.probability) for t in arcs
    )


def mean_entropy(pfa: PFA) -> float:
    """Average choice entropy over reachable non-absorbing states.

    A scalar "how adaptive is this distribution" summary used by the
    distribution-sensitivity experiment (E8).
    """
    states = [
        state
        for state in reachable_states(pfa)
        if not pfa.is_absorbing(state)
    ]
    if not states:
        return 0.0
    return sum(transition_entropy(pfa, state) for state in states) / len(states)
