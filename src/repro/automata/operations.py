"""Automata operations: products, equivalence, language enumeration.

These close the loop on claims the rest of the library otherwise only
samples: :func:`equivalent` *proves* that the hand-built Fig. 5 PFA
accepts exactly RE (2)'s language; :func:`enumerate_words` lists a
language in shortlex order (used to show how few short lifecycles exist,
explaining the pattern-replication result E9).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from repro.automata.dfa import DFA
from repro.automata.pfa import PFA
from repro.errors import AutomatonError


def complete(dfa: DFA) -> DFA:
    """Return an equivalent DFA with a transition for every
    (state, symbol) — adding a dead state if needed."""
    needs_dead = any(
        dfa.step(state, symbol) is None
        for state in range(dfa.num_states)
        for symbol in dfa.alphabet
    )
    if not needs_dead:
        return dfa
    dead = dfa.num_states
    transitions: dict[int, dict[str, int]] = {
        state: dict(arcs) for state, arcs in dfa.transitions.items()
    }
    for state in range(dfa.num_states + 1):
        row = transitions.setdefault(state, {})
        for symbol in dfa.alphabet:
            row.setdefault(symbol, dead)
    return DFA(
        num_states=dfa.num_states + 1,
        alphabet=dfa.alphabet,
        transitions=transitions,
        start=dfa.start,
        accepts=dfa.accepts,
    )


def product_reachable(
    first: DFA, second: DFA
) -> Iterator[tuple[int, int]]:
    """Breadth-first over the reachable product states of two complete
    DFAs sharing an alphabet."""
    if first.alphabet != second.alphabet:
        raise AutomatonError("product requires identical alphabets")
    start = (first.start, second.start)
    seen = {start}
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        yield pair
        for symbol in sorted(first.alphabet):
            succ = (
                first.step(pair[0], symbol),
                second.step(pair[1], symbol),
            )
            if succ[0] is None or succ[1] is None:
                raise AutomatonError("product requires complete DFAs")
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)


def equivalent(first: DFA, second: DFA) -> bool:
    """Exact language equivalence via the product construction.

    The DFAs must share an alphabet; they are completed internally.
    Two automata are equivalent iff no reachable product state is
    accepting in one and rejecting in the other.
    """
    if first.alphabet != second.alphabet:
        return False
    first_c, second_c = complete(first), complete(second)
    for state_a, state_b in product_reachable(first_c, second_c):
        if (state_a in first_c.accepts) != (state_b in second_c.accepts):
            return False
    return True


def distinguishing_word(first: DFA, second: DFA) -> tuple[str, ...] | None:
    """A shortest word accepted by exactly one of the two DFAs, or
    ``None`` when they are equivalent.  Useful in test diagnostics."""
    if first.alphabet != second.alphabet:
        raise AutomatonError("distinguishing_word requires equal alphabets")
    first_c, second_c = complete(first), complete(second)
    start = (first_c.start, second_c.start)
    parents: dict[tuple[int, int], tuple[tuple[int, int], str] | None] = {
        start: None
    }
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        if (pair[0] in first_c.accepts) != (pair[1] in second_c.accepts):
            word: list[str] = []
            cursor: tuple[int, int] | None = pair
            while parents[cursor] is not None:
                cursor, symbol = parents[cursor]  # type: ignore[misc]
                word.append(symbol)
            return tuple(reversed(word))
        for symbol in sorted(first_c.alphabet):
            succ = (
                first_c.step(pair[0], symbol),
                second_c.step(pair[1], symbol),
            )
            if succ not in parents:
                parents[succ] = (pair, symbol)
                queue.append(succ)
    return None


def pfa_support_dfa(pfa: PFA) -> DFA:
    """The DFA accepting exactly the PFA's positive-probability words."""
    transitions: dict[int, dict[str, int]] = {}
    for state in range(pfa.num_states):
        for transition in pfa.outgoing(state):
            transitions.setdefault(state, {})[transition.symbol] = (
                transition.target
            )
    return DFA(
        num_states=pfa.num_states,
        alphabet=pfa.alphabet,
        transitions=transitions,
        start=pfa.start,
        accepts=pfa.accepts,
    )


def enumerate_words(
    dfa: DFA, limit: int | None = None, max_length: int = 32
) -> Iterator[tuple[str, ...]]:
    """Yield accepted words in shortlex order (shortest first, then
    lexicographic), up to ``limit`` words / ``max_length`` symbols."""
    queue: deque[tuple[int, tuple[str, ...]]] = deque(
        [(dfa.start, ())]
    )
    yielded = 0
    while queue:
        state, word = queue.popleft()
        if state in dfa.accepts:
            yield word
            yielded += 1
            if limit is not None and yielded >= limit:
                return
        if len(word) >= max_length:
            continue
        for symbol in sorted(dfa.alphabet):
            target = dfa.step(state, symbol)
            if target is not None:
                queue.append((target, word + (symbol,)))


def count_words_by_length(dfa: DFA, max_length: int) -> list[int]:
    """Number of accepted words of each length 0..max_length (dynamic
    programming over the automaton — no enumeration)."""
    counts = []
    # vector[state] = number of paths of current length from start.
    vector = {dfa.start: 1}
    for length in range(max_length + 1):
        counts.append(
            sum(count for state, count in vector.items() if state in dfa.accepts)
        )
        successor: dict[int, int] = {}
        for state, count in vector.items():
            for _symbol, target in sorted(dfa.outgoing(state).items()):
                successor[target] = successor.get(target, 0) + count
        vector = successor
    return counts


def take(iterator: Iterator, count: int) -> list:
    """First ``count`` items of an iterator (convenience for tests)."""
    return list(islice(iterator, count))
