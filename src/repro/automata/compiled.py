"""Compiled PFA: flat per-state arrays for the sampling hot path.

:class:`~repro.automata.pfa.PFA` stores transitions as nested dicts of
:class:`~repro.automata.pfa.Transition` dataclasses, which is the right
shape for construction and validation but a poor one for Algorithm 2's
walk: the legacy sampler re-sorted each state's dict into a fresh
``Transition`` list on *every* emitted symbol and then did a linear
roulette-wheel scan over it.

:class:`CompiledPFA` precomputes, per state and in the same
symbol-sorted order the legacy path used:

* ``symbols[q]`` / ``targets[q]`` — parallel tuples of arc labels and
  destination states;
* ``cumulative[q]`` — the running probability sums (built by the same
  left-to-right float additions as the legacy scan, so a ``bisect``
  over the row picks the *bit-identical* arc for any RNG draw);
* ``log_probs[q]`` — cached ``math.log`` of each arc probability, so
  walk scoring adds precomputed floats instead of calling ``log`` per
  step.

The compiled form is read-only and derived once; ``source`` keeps the
originating :class:`PFA` for introspection (labels, DOT rendering,
word probabilities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import accumulate

from repro.automata.pfa import PFA, Transition


@dataclass(frozen=True)
class CompiledPFA:
    """Read-only, array-shaped view of a :class:`PFA` for fast sampling.

    Rows are indexed by state id; every row tuple lists the state's
    outgoing arcs sorted by symbol (the PFA's deterministic iteration
    order).  Absorbing states have empty rows.
    """

    source: PFA
    num_states: int
    start: int
    symbols: tuple[tuple[str, ...], ...]
    targets: tuple[tuple[int, ...], ...]
    probabilities: tuple[tuple[float, ...], ...]
    cumulative: tuple[tuple[float, ...], ...]
    log_probs: tuple[tuple[float, ...], ...]
    #: Fused per-state rows ``(arc_count, symbols, targets, cumulative,
    #: log_probs)`` so the sampling loop pays one state subscript (and no
    #: ``len`` call) per step.
    rows: tuple[
        tuple[
            int,
            tuple[str, ...],
            tuple[int, ...],
            tuple[float, ...],
            tuple[float, ...],
        ],
        ...,
    ]

    @classmethod
    def from_pfa(cls, pfa: PFA) -> "CompiledPFA":
        """Compile ``pfa``; the PFA is treated as immutable afterwards."""
        symbols: list[tuple[str, ...]] = []
        targets: list[tuple[int, ...]] = []
        probabilities: list[tuple[float, ...]] = []
        cumulative: list[tuple[float, ...]] = []
        log_probs: list[tuple[float, ...]] = []
        for state in range(pfa.num_states):
            arcs = pfa.outgoing(state)
            symbols.append(tuple(arc.symbol for arc in arcs))
            targets.append(tuple(arc.target for arc in arcs))
            probs = tuple(arc.probability for arc in arcs)
            probabilities.append(probs)
            cumulative.append(tuple(accumulate(probs)))
            log_probs.append(tuple(math.log(p) for p in probs))
        return cls(
            source=pfa,
            num_states=pfa.num_states,
            start=pfa.start,
            symbols=tuple(symbols),
            targets=tuple(targets),
            probabilities=tuple(probabilities),
            cumulative=tuple(cumulative),
            log_probs=tuple(log_probs),
            rows=tuple(
                (len(row[0]),) + row
                for row in zip(symbols, targets, cumulative, log_probs)
            ),
        )

    def is_absorbing(self, state: int) -> bool:
        return not self.rows[state][0]

    def arc_count(self, state: int) -> int:
        return self.rows[state][0]

    def interned_alphabet(self) -> tuple[tuple[str, ...], dict[str, int]]:
        """The automaton's symbol alphabet interned to integer ids.

        Symbols are numbered in first-appearance order scanning states
        ascending and each state's arcs in row order — the exact order
        :func:`repro.automata.batch.packed_rows` interns its symbol
        table, so ids agree between the packed arrays, every
        :class:`~repro.automata.batch.PatternBatch` row, and the
        array-backed pattern types downstream.  Returns
        ``(symbols, index)`` where ``symbols[i]`` and
        ``index[symbol]`` are inverse; built once and cached on the
        instance like the packed rows (and likewise excluded from
        pickles — it is pure derived data).
        """
        cached = self.__dict__.get("_alphabet")
        if cached is None:
            index: dict[str, int] = {}
            for row in self.symbols:
                for symbol in row:
                    if symbol not in index:
                        index[symbol] = len(index)
            cached = (tuple(index), index)
            object.__setattr__(self, "_alphabet", cached)
        return cached

    def __getstate__(self) -> dict:
        # The batch sampler caches its padded numpy packing on the
        # instance (see repro.automata.batch.packed_rows), and
        # interned_alphabet its id table; both are derived data (and
        # the packing is numpy arrays besides), so pickles — worker
        # dispatch, result payloads — carry only the real fields.
        state = dict(self.__dict__)
        state.pop("_packed_rows", None)
        state.pop("_alphabet", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def transition(self, state: int, index: int) -> Transition:
        """Materialise arc ``index`` of ``state`` as a :class:`Transition`
        (compatibility shim for callers of the legacy ``_choose``)."""
        return Transition(
            source=state,
            symbol=self.symbols[state][index],
            target=self.targets[state][index],
            probability=self.probabilities[state][index],
        )
