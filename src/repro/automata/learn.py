"""Learning transition distributions from observed traces.

The paper assumes "most users do not know the probability distributions"
and suggests they "can be learned through system profiling".  This module
implements that: replay observed service traces through the automaton's
deterministic structure, count transition usage, and convert counts to a
:class:`TransitionDistribution` (optionally Laplace-smoothed so unseen
but legal transitions keep non-zero mass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.automata.dfa import DFA
from repro.automata.distributions import TransitionDistribution
from repro.errors import DistributionError


@dataclass
class TraceCounter:
    """Counts transition usage by replaying traces through a DFA."""

    dfa: DFA
    counts: dict[tuple[int, str], int] = field(default_factory=dict)
    #: Traces (or trace suffixes) that left the automaton's language.
    rejected: int = 0
    observed: int = 0

    def observe(self, trace: Sequence[str]) -> bool:
        """Replay one trace from the start state, counting transitions.

        Returns ``True`` if the whole trace stayed within the automaton.
        A trace that falls off the automaton is counted up to the failing
        symbol and recorded in :attr:`rejected`.
        """
        state = self.dfa.start
        self.observed += 1
        for symbol in trace:
            target = self.dfa.step(state, symbol)
            if target is None:
                self.rejected += 1
                return False
            key = (state, symbol)
            self.counts[key] = self.counts.get(key, 0) + 1
            state = target
        return True

    def observe_many(self, traces: Iterable[Sequence[str]]) -> int:
        """Replay several traces; returns how many were fully accepted."""
        accepted = 0
        for trace in traces:
            if self.observe(trace):
                accepted += 1
        return accepted

    def to_distribution(self, smoothing: float = 0.0) -> TransitionDistribution:
        """Convert counts into a normalised distribution.

        ``smoothing`` is an additive (Laplace) pseudo-count applied to
        every structurally legal transition, so profiled distributions
        keep exploring rarely seen services.
        """
        if smoothing < 0:
            raise DistributionError(
                f"smoothing must be non-negative, got {smoothing}"
            )
        dist = TransitionDistribution()
        for state, arcs in self.dfa.transitions.items():
            row_total = 0.0
            row: dict[str, float] = {}
            for symbol in arcs:
                weight = self.counts.get((state, symbol), 0) + smoothing
                row[symbol] = weight
                row_total += weight
            if row_total <= 0:
                continue  # never visited and no smoothing: leave uniform
            for symbol, weight in row.items():
                if weight > 0:
                    dist.set(state, symbol, weight / row_total)
        return dist


def estimate_distribution(
    dfa: DFA,
    traces: Iterable[Sequence[str]],
    smoothing: float = 1.0,
) -> TransitionDistribution:
    """Profile ``traces`` against ``dfa`` and return a smoothed
    distribution — the "learned through system profiling" path.

    With the default ``smoothing=1.0`` every legal transition keeps some
    probability even if absent from the traces, which is what a stress
    tester wants (never completely stop exercising a service).
    """
    counter = TraceCounter(dfa)
    counter.observe_many(traces)
    return counter.to_distribution(smoothing=smoothing)
