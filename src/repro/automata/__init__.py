"""Finite automata used by pTest's pattern generator.

The pipeline mirrors Algorithm 2 of the paper:

1. parse a regular expression over *service symbols* into an AST
   (:mod:`repro.automata.regex_parser`),
2. compile the AST into a Thompson NFA (:mod:`repro.automata.nfa`),
3. determinise via subset construction (:mod:`repro.automata.dfa`),
4. attach a probability distribution to obtain a probabilistic
   finite-state automaton, Definition 1 of the paper
   (:mod:`repro.automata.pfa`),
5. sample symbol sequences from the PFA
   (:mod:`repro.automata.sampling`).

Supporting modules provide distribution utilities
(:mod:`repro.automata.distributions`), learning distributions from traces
(:mod:`repro.automata.learn`) and Markov-chain analysis of a PFA
(:mod:`repro.automata.analysis`).
"""

from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Literal,
    Plus,
    Optional_,
    RegexNode,
    Star,
    Union,
)
from repro.automata.regex_parser import parse_regex, tokenize
from repro.automata.nfa import NFA, NFABuilder, regex_to_nfa
from repro.automata.dfa import DFA, nfa_to_dfa, minimize_dfa
from repro.automata.pfa import PFA, Transition, build_pfa, pfa_from_regex
from repro.automata.distributions import (
    TransitionDistribution,
    normalize_weights,
    uniform_distribution,
    validate_distribution,
)
from repro.automata.compiled import CompiledPFA
from repro.automata.sampling import PatternSampler, SampledPattern, sample_pattern
from repro.automata.learn import estimate_distribution, TraceCounter
from repro.automata.operations import (
    complete,
    count_words_by_length,
    distinguishing_word,
    enumerate_words,
    equivalent,
    pfa_support_dfa,
)
from repro.automata.analysis import (
    expected_pattern_length,
    reachable_states,
    absorbing_states,
    mean_entropy,
    stationary_distribution,
    string_probability,
    transition_entropy,
    transition_matrix,
)

__all__ = [
    "Concat",
    "Empty",
    "Epsilon",
    "Literal",
    "Plus",
    "Optional_",
    "RegexNode",
    "Star",
    "Union",
    "parse_regex",
    "tokenize",
    "NFA",
    "NFABuilder",
    "regex_to_nfa",
    "DFA",
    "nfa_to_dfa",
    "minimize_dfa",
    "PFA",
    "Transition",
    "build_pfa",
    "pfa_from_regex",
    "TransitionDistribution",
    "normalize_weights",
    "uniform_distribution",
    "validate_distribution",
    "CompiledPFA",
    "PatternSampler",
    "SampledPattern",
    "sample_pattern",
    "estimate_distribution",
    "TraceCounter",
    "complete",
    "count_words_by_length",
    "distinguishing_word",
    "enumerate_words",
    "equivalent",
    "pfa_support_dfa",
    "expected_pattern_length",
    "reachable_states",
    "absorbing_states",
    "mean_entropy",
    "stationary_distribution",
    "string_probability",
    "transition_entropy",
    "transition_matrix",
]
