"""Abstract syntax tree for the service regular expressions of pTest.

The alphabet of these regular expressions is a set of *service symbols*
(multi-character names such as ``TC`` or ``TCH`` in the paper's RE (2)),
not single characters.  The AST is therefore built over opaque symbol
strings and the parser decides how the input is tokenized.

Nodes are immutable; equality is structural, which the tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class RegexNode:
    """Base class for regex AST nodes."""

    def symbols(self) -> frozenset[str]:
        """Return the set of alphabet symbols appearing in this subtree."""
        return frozenset(self._iter_symbols())

    def _iter_symbols(self) -> Iterator[str]:
        return iter(())

    def nullable(self) -> bool:
        """Whether the language of this node contains the empty string."""
        raise NotImplementedError

    def to_string(self) -> str:
        """Render back to a parseable regular-expression string."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.to_string()


@dataclass(frozen=True)
class Empty(RegexNode):
    """The empty language (matches nothing).  Rarely written by users but
    useful as an algebraic identity for union."""

    def nullable(self) -> bool:
        return False

    def to_string(self) -> str:
        return "∅"  # the empty-set sign


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The language containing only the empty string."""

    def nullable(self) -> bool:
        return True

    def to_string(self) -> str:
        return "ε"  # lowercase epsilon


@dataclass(frozen=True)
class Literal(RegexNode):
    """A single alphabet symbol (a slave-service name such as ``TR``)."""

    symbol: str

    def __post_init__(self) -> None:
        if not self.symbol:
            raise ValueError("Literal symbol must be non-empty")

    def _iter_symbols(self) -> Iterator[str]:
        yield self.symbol

    def nullable(self) -> bool:
        return False

    def to_string(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of two sub-expressions."""

    left: RegexNode
    right: RegexNode

    def _iter_symbols(self) -> Iterator[str]:
        yield from self.left._iter_symbols()
        yield from self.right._iter_symbols()

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def to_string(self) -> str:
        parts = []
        for child in (self.left, self.right):
            text = child.to_string()
            if isinstance(child, Union):
                text = f"({text})"
            parts.append(text)
        return " ".join(parts)


@dataclass(frozen=True)
class Union(RegexNode):
    """Alternation (``|``) of two sub-expressions."""

    left: RegexNode
    right: RegexNode

    def _iter_symbols(self) -> Iterator[str]:
        yield from self.left._iter_symbols()
        yield from self.right._iter_symbols()

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def to_string(self) -> str:
        return f"{self.left.to_string()} | {self.right.to_string()}"


def _postfix_operand_string(child: RegexNode) -> str:
    text = child.to_string()
    if isinstance(child, (Union, Concat)):
        text = f"({text})"
    return text


@dataclass(frozen=True)
class Star(RegexNode):
    """Kleene star: zero or more repetitions."""

    child: RegexNode

    def _iter_symbols(self) -> Iterator[str]:
        yield from self.child._iter_symbols()

    def nullable(self) -> bool:
        return True

    def to_string(self) -> str:
        return f"{_postfix_operand_string(self.child)}*"


@dataclass(frozen=True)
class Plus(RegexNode):
    """One or more repetitions (``x+`` is sugar for ``x x*``)."""

    child: RegexNode

    def _iter_symbols(self) -> Iterator[str]:
        yield from self.child._iter_symbols()

    def nullable(self) -> bool:
        return self.child.nullable()

    def to_string(self) -> str:
        return f"{_postfix_operand_string(self.child)}+"


@dataclass(frozen=True)
class Optional_(RegexNode):
    """Zero or one occurrence (``x?``).

    Named with a trailing underscore to avoid clashing with
    :class:`typing.Optional` in importing modules.
    """

    child: RegexNode

    def _iter_symbols(self) -> Iterator[str]:
        yield from self.child._iter_symbols()

    def nullable(self) -> bool:
        return True

    def to_string(self) -> str:
        return f"{_postfix_operand_string(self.child)}?"


def concat_all(nodes: list[RegexNode]) -> RegexNode:
    """Fold a list of nodes into a right-nested concatenation.

    An empty list yields :class:`Epsilon`; a single node is returned as-is.
    """
    if not nodes:
        return Epsilon()
    result = nodes[-1]
    for node in reversed(nodes[:-1]):
        result = Concat(node, result)
    return result


def union_all(nodes: list[RegexNode]) -> RegexNode:
    """Fold a list of nodes into a right-nested union.

    An empty list yields :class:`Empty` (the identity of union).
    """
    if not nodes:
        return Empty()
    result = nodes[-1]
    for node in reversed(nodes[:-1]):
        result = Union(node, result)
    return result
