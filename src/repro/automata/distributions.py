"""Probability-distribution utilities for PFA construction.

The paper feeds a *probability distribution* ``PD`` into ``ConstructPFA``
(Algorithm 2).  Here ``PD`` is represented by
:class:`TransitionDistribution`: a mapping from ``(state, symbol)`` pairs
to positive weights.  Helpers normalise raw weights row-by-row, build
uniform fallbacks, and validate the stochasticity condition of
Definition 1 (Eq. (1)): for every state with outgoing arcs the outgoing
probabilities must sum to one.  States with no outgoing arcs (absorbing
final states, e.g. ``TD``/``TY`` in Fig. 5) are exempt — the paper's
definition is "simplified by removing ... final state probabilities".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DistributionError

#: Tolerance used when checking that probability rows sum to one.
ROW_SUM_TOLERANCE = 1e-9


@dataclass
class TransitionDistribution:
    """Weights for PFA transitions, keyed by ``(state, symbol)``.

    Weights need not be normalised; :meth:`normalized` produces a copy
    whose rows sum to one.  Missing entries default to zero weight.
    """

    weights: dict[tuple[int, str], float] = field(default_factory=dict)

    def set(self, state: int, symbol: str, weight: float) -> None:
        """Assign a weight; weights must be non-negative and finite."""
        if not math.isfinite(weight) or weight < 0:
            raise DistributionError(
                f"weight for ({state}, {symbol!r}) must be a non-negative "
                f"finite number, got {weight!r}"
            )
        self.weights[(state, symbol)] = float(weight)

    def get(self, state: int, symbol: str, default: float = 0.0) -> float:
        return self.weights.get((state, symbol), default)

    def row(self, state: int) -> dict[str, float]:
        """Return the ``symbol -> weight`` map for one state."""
        return {
            symbol: weight
            for (row_state, symbol), weight in self.weights.items()
            if row_state == state
        }

    def states(self) -> set[int]:
        return {state for (state, _symbol) in self.weights}

    def normalized(self) -> "TransitionDistribution":
        """Return a copy with every row rescaled to sum to one.

        Rows whose total weight is zero are dropped (they carry no
        information; the PFA builder will fall back to uniform).
        """
        totals: dict[int, float] = {}
        for (state, _symbol), weight in self.weights.items():
            totals[state] = totals.get(state, 0.0) + weight
        normalized = TransitionDistribution()
        for (state, symbol), weight in self.weights.items():
            total = totals[state]
            if total > 0:
                normalized.weights[(state, symbol)] = weight / total
        return normalized

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[tuple[int, str], float]
    ) -> "TransitionDistribution":
        dist = cls()
        for (state, symbol), weight in mapping.items():
            dist.set(state, symbol, weight)
        return dist


def normalize_weights(weights: Mapping[str, float]) -> dict[str, float]:
    """Normalise one row of ``symbol -> weight`` to probabilities.

    Raises :class:`DistributionError` if any weight is negative or the row
    sums to zero.
    """
    total = 0.0
    for symbol, weight in weights.items():
        if not math.isfinite(weight) or weight < 0:
            raise DistributionError(
                f"weight for {symbol!r} must be non-negative, got {weight!r}"
            )
        total += weight
    if total <= 0:
        raise DistributionError("cannot normalise a row with zero total weight")
    return {symbol: weight / total for symbol, weight in weights.items()}


def uniform_distribution(
    arcs: Iterable[tuple[int, str]]
) -> TransitionDistribution:
    """Build a distribution giving each state's outgoing arcs equal mass."""
    arcs = list(arcs)
    counts: dict[int, int] = {}
    for state, _symbol in arcs:
        counts[state] = counts.get(state, 0) + 1
    dist = TransitionDistribution()
    for state, symbol in arcs:
        dist.set(state, symbol, 1.0 / counts[state])
    return dist


def validate_distribution(
    dist: TransitionDistribution,
    outgoing: Mapping[int, Iterable[str]],
) -> None:
    """Check Definition 1's stochasticity condition against a structure.

    Parameters
    ----------
    dist:
        Candidate (already normalised) distribution.
    outgoing:
        Mapping from each state to the symbols of its outgoing arcs.

    Raises
    ------
    DistributionError
        If the distribution names a transition absent from ``outgoing``,
        assigns a non-positive probability to an existing arc, or a row of
        a non-absorbing state does not sum to one.
    """
    arcs = {
        (state, symbol)
        for state, symbols in outgoing.items()
        for symbol in symbols
    }
    for (state, symbol), weight in dist.weights.items():
        if (state, symbol) not in arcs:
            raise DistributionError(
                f"distribution names nonexistent transition "
                f"({state}, {symbol!r})"
            )
        if weight <= 0:
            raise DistributionError(
                f"transition ({state}, {symbol!r}) has non-positive "
                f"probability {weight}"
            )
    for state, symbols in outgoing.items():
        symbols = list(symbols)
        if not symbols:
            continue
        total = sum(dist.get(state, symbol) for symbol in symbols)
        if abs(total - 1.0) > ROW_SUM_TOLERANCE:
            raise DistributionError(
                f"probabilities out of state {state} sum to {total}, "
                f"violating Eq. (1)"
            )
