"""Vectorized batch sampling: many Algorithm 2 walks as matrix ops.

:class:`BatchSampler` draws one pattern per *cell* (one independent
seeded walk each) with every cell advancing in lockstep: the batch
keeps a single ``current_states`` vector and, per step, selects arcs
for the whole front at once against padded 2-D views of the
:class:`~repro.automata.compiled.CompiledPFA` rows
(:class:`PackedPFA`, built once per compiled automaton and cached on
it).  Cells that finish early (``on_final="stop"``) drop out of the
front; cells that hit an absorbing state in restart mode re-enter it
at the start state — in both cases without touching any other cell's
arrays.

The lockstep-front RNG-order contract
-------------------------------------

The scalar :class:`~repro.automata.sampling.PatternSampler` consumes
its private :class:`random.Random` exactly once per visited multi-arc
state, in step order.  The batch walk preserves that contract per
cell:

* every cell owns a private RNG stream seeded exactly like the scalar
  sampler's ``random.Random(seed)``.  Cells whose integer seed spans
  more than one 32-bit word draw through numpy's legacy
  ``RandomState`` — seeded through the same ``init_by_array`` and
  generating doubles with the same two-word 53-bit recipe as CPython's
  Mersenne Twister, an equivalence this module *verifies at runtime*
  on canary seeds before trusting it (see ``_randomstate_matches``) —
  so whole blocks of draws materialise as one vector op.  Single-word
  and ``None`` seeds (where CPython's seeding differs from numpy's)
  keep a CPython-side ``random.Random``.  Either way draws enter a
  per-cell FIFO buffer and are consumed in generation order;
* per lockstep step, one buffered draw is consumed for exactly the
  front cells whose current state has more than one arc — the same
  states at which the scalar walk would have drawn — so each cell's
  consumption order is the scalar order regardless of what any other
  cell does;
* arc selection ``(cumulative_row <= u).sum()`` over the padded
  cumulative matrix equals ``bisect_right(row, u)`` for the sorted
  rows the compiler builds — an *exact* equivalence, unlike e.g. a
  searchsorted over offset-shifted rows whose float additions could
  round a boundary — clamped by the same final-sum-undershoot guard;
  per-cell log-probabilities accumulate in the same left-to-right
  float additions.

Output is therefore **bit-identical** to ``len(seeds)`` independent
``PatternSampler(pfa, seed=s, on_final=...)`` walks — symbols, states,
``log_probability`` and ``restarts`` all compare equal — whether the
numpy fast path or the scalar fallback ran.  The fallback (numpy
absent, or the ``REPRO_NO_NUMPY`` environment variable set) simply
holds the scalar samplers; the library core stays stdlib-only.

The array-native pattern plane
------------------------------

:meth:`BatchSampler.sample_batch` is the array-shaped entry point: it
returns a :class:`PatternBatch` holding the whole draw as flat ragged
arrays — per-cell symbol *ids* (the alphabet interned once per
:class:`~repro.automata.compiled.CompiledPFA` via
``interned_alphabet()``, cached like the packed rows), state paths,
log-probabilities and restart counts — instead of N materialised
:class:`~repro.automata.sampling.SampledPattern` objects.  Downstream
array consumers (``repro.ptest.patterns.TestPattern.from_ids``, the
vectorized merger) keep working on those ids end to end; anything that
wants objects calls :meth:`PatternBatch.patterns` /
:meth:`PatternBatch.pattern`, which materialise lazily and
bit-identically to what :meth:`BatchSampler.sample` always returned
(``sample`` itself is now just ``sample_batch(size).patterns()``).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, NamedTuple, Sequence

from repro.automata.compiled import CompiledPFA
from repro.automata.pfa import PFA
from repro.automata.sampling import OnFinal, PatternSampler, SampledPattern
from repro.errors import ConfigError, SamplingError

#: Environment variable forcing the scalar fallback even where numpy is
#: importable — how CI keeps the stdlib-only path green on a box that
#: has numpy installed.  Truthy = set to anything but "" or "0".
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Draws pre-generated per cell per refill.  Generation is ~5 ns/draw
#: through ``RandomState``, so a larger block only costs memory (8 KiB
#: per cell here); small campaigns (a handful of draws per cell) waste
#: the tail, which at this size is noise.
DRAW_BLOCK = 1024


def numpy_or_none() -> Any:
    """The numpy module, or ``None`` when absent or disabled.

    Checked dynamically (not at import) so tests and CI legs can flip
    :data:`NO_NUMPY_ENV` per process without re-importing the world.
    """
    if os.environ.get(NO_NUMPY_ENV, "") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via the env var
        return None
    return numpy


def numpy_available() -> bool:
    """Whether the vectorized fast path can run in this process."""
    return numpy_or_none() is not None


def require_numpy(context: str) -> Any:
    """The numpy module, or :class:`~repro.errors.ConfigError`.

    The explicit-request guard: a caller that *asked* for the batch
    path (``batch_sampling=True``, ``use_numpy=True``) gets a
    configuration error naming the fix, not an ``ImportError`` deep
    inside a worker process.
    """
    module = numpy_or_none()
    if module is None:
        raise ConfigError(
            f"{context} requires numpy, which is unavailable here "
            f"(not installed, or disabled via {NO_NUMPY_ENV}); install "
            "numpy or drop the explicit batch request to use the "
            "bit-identical scalar path"
        )
    return module


def _seed_key(np: Any, seed: int) -> Any:
    """``abs(seed)`` as little-endian 32-bit words — the exact key
    CPython's ``random.Random(seed)`` feeds to ``init_by_array``."""
    value = abs(seed)
    words = []
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return np.array(words or [0], dtype=np.uint32)


#: Tri-state cache of the runtime equivalence check (None = not yet
#: run); process-global because the answer is a property of the
#: interpreter + numpy build, not of any sampler.
_RANDOMSTATE_OK: bool | None = None


def _randomstate_matches(np: Any) -> bool:
    """Whether numpy's legacy ``RandomState`` replicates CPython's
    ``random.Random`` stream for multi-word integer seeds.

    Both are MT19937 seeded via ``init_by_array`` and both build each
    double from two 32-bit outputs as ``(a >> 5) * 2**26 + (b >> 6)``
    over ``2**53`` — and numpy's legacy generator is frozen by its
    stream-compatibility guarantee — but the batch sampler's
    bit-identity contract is too important to rest on reading the
    sources: this canary check proves it on this interpreter, covering
    2/3-word keys and both sign handling and word-boundary seeds.  A
    mismatch (some exotic build) silently routes every cell through
    CPython-side draws instead; results are identical either way.
    """
    global _RANDOMSTATE_OK
    if _RANDOMSTATE_OK is None:
        canaries = (
            2**32,
            2**32 + 123,
            2**63 - 1,
            2**64 - 1,
            -(2**40 + 7),
            (1 << 96) + 17,
        )
        def replicates(seed: int) -> bool:
            reference = random.Random(seed)
            candidate = np.random.RandomState(_seed_key(np, seed))
            return candidate.random_sample(3).tolist() == [
                reference.random() for _ in range(3)
            ]

        try:
            _RANDOMSTATE_OK = all(replicates(seed) for seed in canaries)
        except Exception:  # pragma: no cover - defensive
            _RANDOMSTATE_OK = False
    return _RANDOMSTATE_OK


def _numpy_drawable(np: Any, seed: Any) -> bool:
    """Whether ``random.Random(seed)``'s stream can be produced by a
    ``RandomState``: integer seeds of more than one 32-bit word (for
    single-word keys numpy's scalar seeding path differs from
    CPython's ``init_by_array``)."""
    return (
        isinstance(seed, int)
        and not isinstance(seed, bool)
        and abs(seed) >= 2**32
        and _randomstate_matches(np)
    )


@dataclass(frozen=True)
class PackedPFA:
    """Padded 2-D array view of a :class:`CompiledPFA`'s rows.

    Every per-state tuple row becomes one matrix row padded to the
    automaton's widest state: ``cumulative`` pads with ``+inf`` (so a
    ``<= u`` count never selects a padding column), everything else
    pads with zeros that are never read (arc selection is clamped to
    ``arc_count - 1``).  Symbols are interned into ``symbol_table``
    and referenced by id so the walk stays numeric end to end.
    """

    num_states: int
    start: int
    max_arcs: int
    arc_count: Any  # int64[num_states]
    cumulative: Any  # float64[num_states, max_arcs], +inf padded
    targets: Any  # int64[num_states, max_arcs]
    log_probs: Any  # float64[num_states, max_arcs]
    symbol_ids: Any  # int64[num_states, max_arcs]
    symbol_table: Any  # object[num_symbols] of str
    #: The same table as a plain tuple — ``CompiledPFA.interned_alphabet()``
    #: order, shared (by identity) with every PatternBatch row so the
    #: array-backed pattern types downstream can compare alphabets with
    #: an ``is`` check.
    alphabet: tuple[str, ...]
    #: Derived lookups for the hot loop: per-state absorbing/multi-arc
    #: masks (one ``take`` instead of gather-plus-compare per step) ...
    is_absorbing: Any  # bool[num_states]
    is_multi: Any  # bool[num_states]
    #: ... flattened row-major views for single-``take`` arc lookups
    #: at ``state * max_arcs + chosen`` ...
    flat_targets: Any  # int64[num_states * max_arcs]
    flat_log_probs: Any  # float64[num_states * max_arcs]
    flat_symbol_ids: Any  # int64[num_states * max_arcs]
    #: ... the restart-mode state fusion: ``q`` for live states,
    #: ``start`` for absorbing ones, so the restart walk replaces its
    #: per-step absorbing branch with one ``take`` ...
    restart_redirect: Any  # int64[num_states]
    #: ... the same fusion pre-applied to the flat arc targets
    #: (``restart_redirect[flat_targets]``), so the restart loop steps
    #: straight from chosen arc to post-redirect state in one ``take``
    #: instead of two ...
    restart_targets: Any  # int64[num_states * max_arcs]
    #: ... and the multi-arc mask as int64, so draw-position bumps add
    #: without a per-step bool upcast ...
    multi_step: Any  # int64[num_states]
    #: ... and the clamp-fused selection columns: ``cumulative`` with
    #: each row's *last real* entry replaced by ``+inf`` and split into
    #: contiguous per-arc columns.  Counting ``column[q] <= u`` over
    #: these equals ``min(bisect_right(row, u), arc_count - 1)``
    #: exactly — the undershoot clamp disappears from the hot loop —
    #: because for a sorted row either ``u < row[-1]`` (the dropped
    #: entry contributed nothing) or ``u >= row[-1]`` (every kept entry
    #: is ``<= u``, giving ``arc_count - 1`` directly).
    select_columns: Any  # tuple[float64[num_states], ...], len max_arcs


def packed_rows(compiled: CompiledPFA) -> PackedPFA:
    """The padded array packing of ``compiled``, built once and cached.

    The cache lives on the compiled PFA instance itself (warm pool
    workers hold one :class:`CompiledPFA` per scenario cache entry, so
    repeated batches re-pack nothing) and is excluded from pickles and
    equality — it is pure derived data.
    """
    cached = compiled.__dict__.get("_packed_rows")
    if cached is not None:
        return cached
    np = require_numpy("packed_rows()")
    num_states = compiled.num_states
    max_arcs = max(
        (len(row) for row in compiled.symbols), default=0
    ) or 1
    arc_count = np.array(
        [len(row) for row in compiled.symbols], dtype=np.int64
    )
    cumulative = np.full((num_states, max_arcs), np.inf, dtype=np.float64)
    targets = np.zeros((num_states, max_arcs), dtype=np.int64)
    log_probs = np.zeros((num_states, max_arcs), dtype=np.float64)
    symbol_ids = np.zeros((num_states, max_arcs), dtype=np.int64)
    # One interning shared with the whole array plane: ids here agree
    # with every PatternBatch row and array-backed TestPattern built
    # over this automaton.
    alphabet, table_index = compiled.interned_alphabet()
    for state in range(num_states):
        row_symbols = compiled.symbols[state]
        count = len(row_symbols)
        if not count:
            continue
        cumulative[state, :count] = compiled.cumulative[state]
        targets[state, :count] = compiled.targets[state]
        log_probs[state, :count] = compiled.log_probs[state]
        for arc, symbol in enumerate(row_symbols):
            symbol_ids[state, arc] = table_index[symbol]
    selection = cumulative.copy()
    for state in range(num_states):
        count = int(arc_count[state])
        if count:
            selection[state, count - 1] = np.inf
    symbol_table = np.array(alphabet or ("",), dtype=object)
    flat_symbol_ids = np.ascontiguousarray(symbol_ids.reshape(-1))
    packed = PackedPFA(
        num_states=num_states,
        start=compiled.start,
        max_arcs=max_arcs,
        arc_count=arc_count,
        cumulative=cumulative,
        targets=targets,
        log_probs=log_probs,
        symbol_ids=symbol_ids,
        symbol_table=symbol_table,
        alphabet=alphabet,
        is_absorbing=arc_count == 0,
        is_multi=arc_count > 1,
        flat_targets=np.ascontiguousarray(targets.reshape(-1)),
        flat_log_probs=np.ascontiguousarray(log_probs.reshape(-1)),
        flat_symbol_ids=flat_symbol_ids,
        restart_redirect=(
            redirect := np.where(
                arc_count == 0,
                np.int64(compiled.start),
                np.arange(num_states, dtype=np.int64),
            )
        ),
        restart_targets=redirect.take(targets.reshape(-1)),
        multi_step=(arc_count > 1).astype(np.int64),
        select_columns=tuple(
            np.ascontiguousarray(selection[:, arc])
            for arc in range(max_arcs)
        ),
    )
    object.__setattr__(compiled, "_packed_rows", packed)
    return packed


# SampledPattern is slotted, so bulk materialisation can bypass the
# frozen __init__ (which pays one object.__setattr__ per field) by
# writing through the slot descriptors directly; the resulting objects
# compare equal to normally-built ones.
_NEW_PATTERN = SampledPattern.__new__
_SET_SYMBOLS = SampledPattern.symbols.__set__
_SET_STATES = SampledPattern.states.__set__
_SET_LOG_PROBABILITY = SampledPattern.log_probability.__set__
_SET_RESTARTS = SampledPattern.restarts.__set__


class PatternRow(NamedTuple):
    """One cell's slice of a :class:`PatternBatch`, still as arrays.

    ``symbol_ids`` indexes ``alphabet`` (the compiled automaton's
    interned symbol table); ``state_ids`` is the walk's state path
    including restart re-entries.  Both are views into the batch's
    flat arrays — zero-copy, valid as long as the batch is referenced.
    """

    symbol_ids: Any  # int64[length] view
    state_ids: Any  # int64[path_length] view
    log_probability: float
    restarts: int
    alphabet: tuple[str, ...]


class PatternBatch:
    """One lockstep draw held as arrays: the array-native form of a
    ``list[SampledPattern]``.

    Array mode (the vectorized sampler's output) keeps the whole draw
    as flat ragged arrays — symbol ids + per-cell begin/end offsets,
    state paths likewise, per-cell log-probabilities and restart
    counts — so downstream array consumers (the vectorized merger, the
    array-backed ``TestPattern``) never materialise per-symbol Python
    objects.  :meth:`patterns`/:meth:`pattern` materialise
    :class:`~repro.automata.sampling.SampledPattern` views lazily and
    bit-identically to the scalar sampler's output; :meth:`row` hands
    out the zero-copy array slice for one cell.

    Scalar mode (:meth:`from_patterns`, the no-numpy fallback) wraps
    already-materialised patterns; :meth:`row` then returns ``None``
    and callers fall back to :meth:`pattern`.
    """

    __slots__ = (
        "alphabet",
        "_table",
        "_ids",
        "_id_begins",
        "_id_ends",
        "_states",
        "_state_begins",
        "_state_ends",
        "_log_probs",
        "_restarts",
        "_patterns",
    )

    def __init__(
        self,
        *,
        alphabet: tuple[str, ...],
        table: Any,
        ids: Any,
        id_begins: Any,
        id_ends: Any,
        states: Any,
        state_begins: Any,
        state_ends: Any,
        log_probs: Any,
        restarts: Any,
    ) -> None:
        self.alphabet = alphabet
        self._table = table
        self._ids = ids
        self._id_begins = id_begins
        self._id_ends = id_ends
        self._states = states
        self._state_begins = state_begins
        self._state_ends = state_ends
        self._log_probs = log_probs
        self._restarts = restarts
        self._patterns: list[SampledPattern] | None = None

    @classmethod
    def from_patterns(
        cls,
        patterns: list[SampledPattern],
        alphabet: tuple[str, ...] = (),
    ) -> "PatternBatch":
        """Wrap eagerly-materialised patterns (the scalar fallback)."""
        batch = cls.__new__(cls)
        batch.alphabet = alphabet
        batch._table = None
        batch._ids = None
        batch._id_begins = None
        batch._id_ends = None
        batch._states = None
        batch._state_begins = None
        batch._state_ends = None
        batch._log_probs = None
        batch._restarts = None
        batch._patterns = patterns
        return batch

    def __len__(self) -> int:
        if self._patterns is not None:
            return len(self._patterns)
        return len(self._id_begins)

    @property
    def is_array(self) -> bool:
        """Whether per-cell id arrays exist (:meth:`row` works)."""
        return self._ids is not None

    def row(self, cell: int) -> PatternRow | None:
        """Cell ``cell``'s draw as zero-copy array views, or ``None``
        in scalar mode (callers then take :meth:`pattern` instead)."""
        if self._ids is None:
            return None
        return PatternRow(
            symbol_ids=self._ids[self._id_begins[cell]:self._id_ends[cell]],
            state_ids=self._states[
                self._state_begins[cell]:self._state_ends[cell]
            ],
            log_probability=float(self._log_probs[cell]),
            restarts=int(self._restarts[cell]),
            alphabet=self.alphabet,
        )

    def pattern(self, cell: int) -> SampledPattern:
        """Cell ``cell``'s draw as a materialised pattern, equal to the
        scalar sampler's output for that cell."""
        cached = self._patterns
        if cached is not None:
            return cached[cell]
        begin = self._id_begins[cell]
        end = self._id_ends[cell]
        pattern = _NEW_PATTERN(SampledPattern)
        _SET_SYMBOLS(pattern, tuple(self._table.take(self._ids[begin:end]).tolist()))
        _SET_STATES(
            pattern,
            tuple(
                self._states[
                    self._state_begins[cell]:self._state_ends[cell]
                ].tolist()
            ),
        )
        _SET_LOG_PROBABILITY(pattern, float(self._log_probs[cell]))
        _SET_RESTARTS(pattern, int(self._restarts[cell]))
        return pattern

    def patterns(self) -> list[SampledPattern]:
        """All cells materialised (cached after the first call).

        Bulk conversion: symbols gather as one object ``take`` + flat
        ``tolist`` + big tuple, sliced per cell (tuple slicing is a
        pointer copy), state paths likewise — the exact recipe (and
        exact output) of the pre-array-plane sampler tails.
        """
        cached = self._patterns
        if cached is not None:
            return cached
        sym_all = tuple(self._table.take(self._ids).tolist())
        path_all = tuple(self._states.tolist())
        new = _NEW_PATTERN
        result: list[SampledPattern] = []
        append = result.append
        for sym_begin, sym_end, path_begin, path_end, lp, rs in zip(
            self._id_begins.tolist(), self._id_ends.tolist(),
            self._state_begins.tolist(), self._state_ends.tolist(),
            self._log_probs.tolist(), self._restarts.tolist(),
        ):
            pattern = new(SampledPattern)
            _SET_SYMBOLS(pattern, sym_all[sym_begin:sym_end])
            _SET_STATES(pattern, path_all[path_begin:path_end])
            _SET_LOG_PROBABILITY(pattern, lp)
            _SET_RESTARTS(pattern, rs)
            append(pattern)
        self._patterns = result
        return result


@dataclass
class BatchSampler:
    """N seeded Algorithm 2 walks advanced in lockstep.

    Parameters
    ----------
    pfa:
        The automaton to walk — a :class:`PFA` or an already-built
        :class:`CompiledPFA` (one compilation shared by every cell).
    seeds:
        One RNG seed per cell; cell ``i`` of every :meth:`sample` is
        bit-identical to ``PatternSampler(pfa, seed=seeds[i],
        on_final=on_final)`` having drawn the same sequence of
        patterns.
    on_final:
        Behaviour at absorbing final states, as in the scalar sampler.
    use_numpy:
        ``None`` (default) auto-detects; ``True`` demands the fast
        path (raising :class:`~repro.errors.ConfigError` when numpy is
        unavailable); ``False`` forces the scalar fallback.

    :attr:`used_numpy` records which path actually runs — results are
    identical either way, only the throughput differs.
    """

    pfa: PFA | CompiledPFA
    seeds: Sequence[int | None]
    on_final: OnFinal = "stop"
    use_numpy: bool | None = None
    used_numpy: bool = field(init=False)
    _compiled: CompiledPFA = field(init=False, repr=False)
    _np: Any = field(init=False, repr=False)
    _packed: PackedPFA | None = field(init=False, repr=False)
    _scalar: list[PatternSampler] = field(init=False, repr=False)
    #: Per-cell draw sources: numpy ``RandomState`` for multi-word
    #: integer seeds, CPython ``random.Random`` otherwise.
    _np_rngs: list[Any] = field(init=False, repr=False)
    _py_rngs: list[random.Random | None] = field(init=False, repr=False)
    _draw_buf: Any = field(init=False, repr=False)
    _draw_flat: Any = field(init=False, repr=False)
    _draw_pos: Any = field(init=False, repr=False)
    _draw_base: Any = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.on_final not in ("stop", "restart"):
            raise SamplingError(f"unknown on_final mode {self.on_final!r}")
        if isinstance(self.pfa, CompiledPFA):
            self._compiled = self.pfa
        else:
            self._compiled = CompiledPFA.from_pfa(self.pfa)
        if self._compiled.is_absorbing(self._compiled.start):
            raise SamplingError("PFA start state has no outgoing transitions")
        if self.use_numpy is True:
            self._np = require_numpy("BatchSampler(use_numpy=True)")
        elif self.use_numpy is False:
            self._np = None
        else:
            self._np = numpy_or_none()
        self.used_numpy = self._np is not None
        if not self.used_numpy:
            self._packed = None
            self._np_rngs = []
            self._py_rngs = []
            self._draw_buf = None
            self._draw_flat = None
            self._draw_pos = None
            self._draw_base = None
            self._scalar = [
                PatternSampler(
                    self._compiled, seed=seed, on_final=self.on_final
                )
                for seed in self.seeds
            ]
            return
        np = self._np
        self._scalar = []
        self._packed = packed_rows(self._compiled)
        self._np_rngs = []
        self._py_rngs = []
        for seed in self.seeds:
            if _numpy_drawable(np, seed):
                self._np_rngs.append(
                    np.random.RandomState(_seed_key(np, seed))
                )
                self._py_rngs.append(None)
            else:
                self._np_rngs.append(None)
                self._py_rngs.append(random.Random(seed))
        cells = len(self.seeds)
        self._draw_buf = np.empty((cells, DRAW_BLOCK), dtype=np.float64)
        # Flat view of the same memory for single-`take` consumption.
        self._draw_flat = self._draw_buf.reshape(-1)
        # Every buffer row starts exhausted; filled lazily on first use.
        self._draw_pos = np.full(cells, DRAW_BLOCK, dtype=np.int64)
        self._draw_base = np.arange(cells, dtype=np.int64) * DRAW_BLOCK

    @property
    def compiled(self) -> CompiledPFA:
        """The compiled automaton every cell walks."""
        return self._compiled

    @property
    def cells(self) -> int:
        return len(self.seeds)

    def sample(self, size: int) -> list[SampledPattern]:
        """One pattern of at most ``size`` symbols per cell, in lockstep.

        Consecutive calls continue each cell's RNG stream, exactly as
        consecutive ``PatternSampler.sample`` calls would.
        """
        return self.sample_batch(size).patterns()

    def sample_batch(self, size: int) -> PatternBatch:
        """One lockstep draw per cell, kept as arrays.

        The array-native twin of :meth:`sample`: same walk, same RNG
        consumption, but the result stays a :class:`PatternBatch` of
        flat id/state arrays until something asks for objects.
        Consecutive calls continue each cell's RNG stream exactly as
        :meth:`sample` would — the two entry points are freely
        interleavable.
        """
        if size < 1:
            raise SamplingError(f"pattern size must be >= 1, got {size}")
        if not self.used_numpy:
            return PatternBatch.from_patterns(
                [sampler.sample(size) for sampler in self._scalar]
            )
        return self._sample_vectorized(size)

    def sample_many(
        self, count: int, size: int
    ) -> list[list[SampledPattern]]:
        """``count`` patterns per cell; ``result[i]`` is cell ``i``'s
        sequence, equal to that cell's scalar ``sample_many(count,
        size)``."""
        if count < 0:
            raise SamplingError(f"pattern count must be >= 0, got {count}")
        rounds = [self.sample(size) for _ in range(count)]
        return [
            [round_patterns[cell] for round_patterns in rounds]
            for cell in range(self.cells)
        ]

    def _refill(self, cell: int) -> None:
        """Regenerate cell ``cell``'s draw block, continuing its stream."""
        np_rng = self._np_rngs[cell]
        if np_rng is not None:
            self._draw_buf[cell] = np_rng.random_sample(DRAW_BLOCK)
        else:
            rng = self._py_rngs[cell]
            self._draw_buf[cell] = self._np.fromiter(
                (rng.random() for _ in range(DRAW_BLOCK)),
                dtype=self._np.float64,
                count=DRAW_BLOCK,
            )
        self._draw_pos[cell] = 0


    def _sample_vectorized(self, size: int) -> PatternBatch:
        if self.on_final == "restart":
            return self._sample_restart(size)
        return self._sample_stop(size)

    def _sample_restart(self, size: int) -> PatternBatch:
        """Restart-mode walk: the front never shrinks, so restarts fuse
        into a per-state redirect table and the loop records only each
        step's flat arc index; symbol ids, targets, restart counts, and
        state paths are all reconstructed from that record in a few
        whole-matrix ops afterwards.  Log-probabilities still
        accumulate inside the loop — a post-loop ``.sum()`` would use
        pairwise summation, not the scalar walk's left-to-right order.

        The loop itself is branch-free: a draw is *read* for every
        cell every step, but the buffer position advances only where
        the state is multi-arc — exactly where the scalar walk
        consumes one — so per-cell consumption order is untouched.
        Reading a draw a single-arc state never uses is harmless: its
        cumulative row is ``(1.0, +inf, ...)``, so any ``u < 1`` picks
        arc 0, which is also what the scalar walk does without
        drawing.
        """
        np = self._np
        packed = self._packed
        total = self.cells
        if not total:
            return PatternBatch.from_patterns([], alphabet=packed.alphabet)
        start = packed.start
        max_arcs = packed.max_arcs
        select_columns = packed.select_columns
        multi_step = packed.multi_step
        restart_targets = packed.restart_targets
        flat_targets = packed.flat_targets
        flat_log_probs = packed.flat_log_probs
        pos = self._draw_pos
        draw_flat = self._draw_flat
        draw_base = self._draw_base

        # Walk on *absolute* buffer positions (cell base + cursor) so
        # the per-step draw gather needs no base addition; the relative
        # cursors are synced back after the loop.
        abs_pos = draw_base + pos
        state = np.full(total, start, dtype=np.int64)
        logp = np.zeros(total, dtype=np.float64)
        flat_steps = np.empty((size, total), dtype=np.int64)
        check_at = 0
        for step in range(size):
            # Buffer-bounds check, deferred: positions advance by at
            # most one per step, so after seeing max position m the
            # next DRAW_BLOCK - 1 - m steps cannot read past a row.
            if step >= check_at:
                relative = abs_pos - draw_base
                highest = int(relative.max())
                if highest >= DRAW_BLOCK:
                    exhausted = relative >= DRAW_BLOCK
                    for cell in exhausted.nonzero()[0].tolist():
                        self._refill(cell)
                    abs_pos[exhausted] = draw_base[exhausted]
                    highest = int((abs_pos - draw_base).max())
                check_at = step + DRAW_BLOCK - highest
            draws = draw_flat.take(abs_pos)
            abs_pos += multi_step.take(state)
            # Counting `column <= u` over the clamp-fused selection
            # columns (see PackedPFA.select_columns) reproduces the
            # scalar bisect-plus-undershoot-guard pick exactly, one
            # contiguous 1-D compare per arc column.
            flat = state * max_arcs
            for column in select_columns:
                flat += column.take(state) <= draws
            logp += flat_log_probs.take(flat)
            flat_steps[step] = flat
            # Arc target and restart redirect, fused into one take: the
            # start state is never absorbing, so the first step needs
            # no redirect and each later step redirects the previous
            # step's target — exactly this lookup.
            state = restart_targets.take(flat)
        pos[:] = abs_pos - draw_base

        # Reconstruction, cell-major.  Every restart-mode pattern emits
        # exactly `size` symbols; the state path is the per-step targets
        # with `start` re-inserted after each absorbing one (the final
        # step's target never restarts this pattern — the walk is over).
        flat_cells = np.ascontiguousarray(flat_steps.T)
        targets_m = flat_targets.take(flat_cells)
        absorbed = packed.is_absorbing.take(targets_m[:, :-1])
        inserts_before = np.zeros((total, size), dtype=np.int64)
        np.cumsum(absorbed, axis=1, out=inserts_before[:, 1:])
        # The cumsum's final column is the full absorbed count.
        restarts = inserts_before[:, -1]
        positions = inserts_before + np.arange(1, size + 1, dtype=np.int64)
        # Paths are concatenated, not padded: per-cell offsets from the
        # exact lengths, so the int->Python conversion below touches no
        # padding columns.
        lengths_arr = 1 + size + restarts
        ends = np.cumsum(lengths_arr)
        offsets = ends - lengths_arr
        out_path = np.empty(int(ends[-1]), dtype=np.int64)
        out_path[offsets] = start
        flat_positions = positions + offsets[:, None]
        np.put(out_path, flat_positions, targets_m)
        np.put(out_path, flat_positions[:, :-1][absorbed] + 1, start)

        # Every restart-mode cell emits exactly `size` symbols, so the
        # id rows are the dense (total, size) matrix flattened with
        # stride-`size` offsets; materialisation (when anything wants
        # objects) happens inside the PatternBatch.
        sym_ids = packed.flat_symbol_ids.take(flat_cells).reshape(-1)
        sym_begins = np.arange(total, dtype=np.int64) * size
        return PatternBatch(
            alphabet=packed.alphabet,
            table=packed.symbol_table,
            ids=sym_ids,
            id_begins=sym_begins,
            id_ends=sym_begins + size,
            states=out_path,
            state_begins=offsets,
            state_ends=ends,
            log_probs=logp,
            restarts=restarts,
        )

    def _sample_stop(self, size: int) -> PatternBatch:
        """Stop-mode walk: cells that reach an absorbing state finish
        and drop out, so the loop keeps a compact front of still-walking
        cells with per-cell scatter bases into the output buffers."""
        np = self._np
        packed = self._packed
        total = self.cells
        if not total:
            return PatternBatch.from_patterns([], alphabet=packed.alphabet)
        start = packed.start
        max_arcs = packed.max_arcs
        select_columns = packed.select_columns
        is_absorbing = packed.is_absorbing
        multi_step = packed.multi_step
        flat_targets = packed.flat_targets
        flat_log_probs = packed.flat_log_probs
        pos = self._draw_pos
        draw_flat = self._draw_flat

        # The compact front: parallel arrays holding only still-walking
        # cells.  Every front cell emits exactly one symbol per loop
        # iteration, so `size` iterations bound the walk and the
        # emission column index is simply the iteration number.
        front = np.arange(total, dtype=np.int64)
        state = np.full(total, start, dtype=np.int64)
        logp = np.zeros(total, dtype=np.float64)
        path_pos = np.ones(total, dtype=np.int64)
        front_draw_base = self._draw_base

        # Per-cell outputs, scattered into as cells emit/finish; both
        # matrices are flat with precomputed per-cell bases, refreshed
        # whenever the front shrinks.  A stop-mode path is one segment:
        # the start state plus one state per emission.  Unwritten tail
        # columns of early-stopped cells are never read — the ragged
        # gather below touches only each cell's recorded prefix.
        path_width = size + 1
        all_sym_base = front * size
        all_path_base = front * path_width
        sym_base = all_sym_base
        path_base = all_path_base
        out_arcs = np.empty(total * size, dtype=np.int64)
        out_path = np.empty(total * path_width, dtype=np.int64)
        out_path[path_base] = start
        symbol_counts = np.empty(total, dtype=np.int64)
        path_lengths = np.empty(total, dtype=np.int64)
        final_logp = np.empty(total, dtype=np.float64)

        for step in range(size):
            absorbing = is_absorbing.take(state)
            if absorbing.any():
                finished = front[absorbing]
                symbol_counts[finished] = step
                path_lengths[finished] = path_pos[absorbing]
                final_logp[finished] = logp[absorbing]
                keep = ~absorbing
                front = front[keep]
                if not front.size:
                    break
                state = state[keep]
                logp = logp[keep]
                path_pos = path_pos[keep]
                sym_base = sym_base[keep]
                path_base = path_base[keep]
                front_draw_base = front_draw_base[keep]
            # As in the restart walk: read a draw for every front
            # cell, advance buffer positions only at multi-arc states
            # (where the scalar walk consumes one); unconsumed reads
            # still pick arc 0 on single-arc rows.
            taken = pos.take(front)
            if taken.max() >= DRAW_BLOCK:
                for cell in front[taken >= DRAW_BLOCK].tolist():
                    self._refill(cell)
                taken = pos.take(front)
            draws = draw_flat.take(front_draw_base + taken)
            pos[front] = taken + multi_step.take(state)
            # Clamp-fused arc selection, as in the restart walk (see
            # PackedPFA.select_columns).
            flat = state * max_arcs
            for column in select_columns:
                flat += column.take(state) <= draws
            logp += flat_log_probs.take(flat)
            np.put(out_arcs, sym_base + step, flat)
            state = flat_targets.take(flat)
            np.put(out_path, path_base + path_pos, state)
            path_pos += 1

        if front.size:
            symbol_counts[front] = size
            path_lengths[front] = path_pos
            final_logp[front] = logp

        # Ragged gather: pull each cell's written prefix out of the
        # padded output matrices into compact arrays, so the Python
        # conversions below never touch padding (cells usually stop
        # long before `size`, making the padded matrices mostly tail).
        def compact(flat_values: Any, bases: Any, counts: Any) -> Any:
            ends = np.cumsum(counts)
            begins = ends - counts
            span = int(ends[-1]) if counts.size else 0
            within = np.arange(span, dtype=np.int64)
            within -= np.repeat(begins, counts)
            within += np.repeat(bases, counts)
            return flat_values.take(within), begins, ends

        arc_ids, sym_begins, sym_ends = compact(
            out_arcs, all_sym_base, symbol_counts
        )
        path_states, path_begins, path_ends = compact(
            out_path, all_path_base, path_lengths
        )
        # Arc indices become alphabet ids with one flat take; stop mode
        # never restarts.  Materialisation lives in the PatternBatch.
        return PatternBatch(
            alphabet=packed.alphabet,
            table=packed.symbol_table,
            ids=packed.flat_symbol_ids.take(arc_ids),
            id_begins=sym_begins,
            id_ends=sym_ends,
            states=path_states,
            state_begins=path_begins,
            state_ends=path_ends,
            log_probs=final_logp,
            restarts=np.zeros(total, dtype=np.int64),
        )
