"""Probabilistic finite-state automata (Definition 1 of the paper).

A PFA is a six-tuple ``(Q, Sigma, delta, q0, F, P)`` where ``P`` maps each
transition to a probability and, for every non-absorbing state, outgoing
probabilities sum to one (Eq. (1)).  The paper's definition drops initial
and final state probabilities; accordingly absorbing final states carry
an empty probability row.

Construction paths:

* :func:`build_pfa` — attach a :class:`TransitionDistribution` to a DFA
  (``ConstructPFA`` of Algorithm 2).  Rows missing from the distribution
  fall back to uniform, matching the paper's remark that users may not
  know all probabilities.
* :func:`pfa_from_regex` — the full ``RE + PD -> PFA`` pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.dfa import DFA, minimize_dfa, nfa_to_dfa
from repro.automata.distributions import (
    ROW_SUM_TOLERANCE,
    TransitionDistribution,
    validate_distribution,
)
from repro.automata.nfa import regex_to_nfa
from repro.automata.regex_parser import parse_regex
from repro.errors import AutomatonError, DistributionError


@dataclass(frozen=True)
class Transition:
    """One probabilistic arc ``(q, a, q')`` with probability ``p``."""

    source: int
    symbol: str
    target: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise AutomatonError(
                f"transition probability must lie in (0, 1], got "
                f"{self.probability}"
            )


@dataclass
class PFA:
    """Probabilistic finite-state automaton (Definition 1).

    Attributes mirror the six-tuple: ``num_states`` enumerates ``Q``,
    ``alphabet`` is ``Sigma``, ``transitions`` realises both ``delta`` and
    ``P``, ``start`` is ``q0`` and ``accepts`` is ``F``.
    """

    num_states: int
    alphabet: frozenset[str]
    transitions: dict[int, dict[str, Transition]]
    start: int
    accepts: frozenset[int]
    state_labels: dict[int, str] = field(default_factory=dict)
    #: Lazily built sorted-arc rows; ``transitions`` is treated as
    #: immutable once the automaton has validated.
    _outgoing_cache: dict[int, list[Transition]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.validate()

    # -- structure -------------------------------------------------------

    def validate(self) -> None:
        """Check the six-tuple's well-formedness, including Eq. (1)."""
        if not 0 <= self.start < self.num_states:
            raise AutomatonError(f"start state {self.start} out of range")
        for state in self.accepts:
            if not 0 <= state < self.num_states:
                raise AutomatonError(f"final state {state} out of range")
        for state, arcs in self.transitions.items():
            if not 0 <= state < self.num_states:
                raise AutomatonError(f"state {state} out of range")
            total = 0.0
            for symbol, transition in arcs.items():
                if symbol not in self.alphabet:
                    raise AutomatonError(f"unknown symbol {symbol!r}")
                if transition.source != state or transition.symbol != symbol:
                    raise AutomatonError(
                        "transition key does not match its contents"
                    )
                if not 0 <= transition.target < self.num_states:
                    raise AutomatonError(
                        f"target {transition.target} out of range"
                    )
                total += transition.probability
            if arcs and abs(total - 1.0) > ROW_SUM_TOLERANCE:
                raise DistributionError(
                    f"outgoing probabilities of state {state} sum to "
                    f"{total}, violating Eq. (1)"
                )

    def outgoing(self, state: int) -> list[Transition]:
        """Outgoing transitions of ``state``, sorted by symbol for
        deterministic iteration order.

        Rows are sorted once and cached; callers must not mutate the
        returned list (copy it first if a scratch list is needed).
        """
        cached = self._outgoing_cache.get(state)
        if cached is None:
            arcs = self.transitions.get(state, {})
            cached = [arcs[symbol] for symbol in sorted(arcs)]
            self._outgoing_cache[state] = cached
        return cached

    def step(self, state: int, symbol: str) -> Transition | None:
        """The transition out of ``state`` on ``symbol``, if any."""
        return self.transitions.get(state, {}).get(symbol)

    def is_final(self, state: int) -> bool:
        return state in self.accepts

    def is_absorbing(self, state: int) -> bool:
        """True when ``state`` has no outgoing transitions."""
        return not self.transitions.get(state)

    def has_probabilistic_choice(self, state: int) -> bool:
        """Algorithm 2's "Q has probabilistic choices": more than one
        outgoing arc."""
        return len(self.transitions.get(state, {})) > 1

    def label(self, state: int) -> str:
        """Human-readable name of ``state`` (``q3`` when unlabelled)."""
        return self.state_labels.get(state, f"q{state}")

    # -- language --------------------------------------------------------

    def word_probability(self, word: list[str] | tuple[str, ...]) -> float:
        """Probability of *generating* ``word`` and ending in a final
        state (zero if the walk leaves the automaton or ends elsewhere)."""
        state = self.start
        probability = 1.0
        for symbol in word:
            transition = self.step(state, symbol)
            if transition is None:
                return 0.0
            probability *= transition.probability
            state = transition.target
        return probability if state in self.accepts else 0.0

    def walk_probability(self, word: list[str] | tuple[str, ...]) -> float:
        """Probability of the *prefix walk* ``word`` regardless of where
        it ends.  Used to score test-pattern prefixes."""
        state = self.start
        probability = 1.0
        for symbol in word:
            transition = self.step(state, symbol)
            if transition is None:
                return 0.0
            probability *= transition.probability
            state = transition.target
        return probability

    def accepts_word(self, word: list[str] | tuple[str, ...]) -> bool:
        return self.word_probability(word) > 0.0

    def to_dot(self) -> str:
        """Render to Graphviz DOT, handy for eyeballing against Fig. 5."""
        lines = ["digraph pfa {", "  rankdir=LR;"]
        for state in range(self.num_states):
            shape = "doublecircle" if state in self.accepts else "circle"
            lines.append(f'  {state} [label="{self.label(state)}" shape={shape}];')
        lines.append(f"  __start [shape=point];")
        lines.append(f"  __start -> {self.start};")
        for state in range(self.num_states):
            for transition in self.outgoing(state):
                lines.append(
                    f"  {transition.source} -> {transition.target} "
                    f'[label="{transition.symbol} ({transition.probability:g})"];'
                )
        lines.append("}")
        return "\n".join(lines)


def build_pfa(
    dfa: DFA,
    distribution: TransitionDistribution | None = None,
    state_labels: dict[int, str] | None = None,
) -> PFA:
    """Attach probabilities to a DFA (``ConstructPFA`` of Algorithm 2).

    Rows absent from ``distribution`` (or all rows, when it is ``None``)
    get uniform probabilities over the state's outgoing arcs.  The
    supplied rows are normalised, then the result is validated against
    Eq. (1).
    """
    outgoing: dict[int, list[str]] = {
        state: sorted(arcs) for state, arcs in dfa.transitions.items()
    }
    resolved = TransitionDistribution()
    provided = distribution.normalized() if distribution is not None else None
    provided_states = provided.states() if provided is not None else set()
    for state, symbols in outgoing.items():
        if provided is not None and state in provided_states:
            for symbol in symbols:
                weight = provided.get(state, symbol)
                resolved.weights[(state, symbol)] = weight
        else:
            share = 1.0 / len(symbols)
            for symbol in symbols:
                resolved.weights[(state, symbol)] = share
    validate_distribution(
        resolved, {state: symbols for state, symbols in outgoing.items()}
    )
    transitions: dict[int, dict[str, Transition]] = {}
    for state, symbols in outgoing.items():
        row: dict[str, Transition] = {}
        for symbol in symbols:
            target = dfa.transitions[state][symbol]
            row[symbol] = Transition(
                source=state,
                symbol=symbol,
                target=target,
                probability=resolved.get(state, symbol),
            )
        transitions[state] = row
    return PFA(
        num_states=dfa.num_states,
        alphabet=dfa.alphabet,
        transitions=transitions,
        start=dfa.start,
        accepts=dfa.accepts,
        state_labels=dict(state_labels or {}),
    )


def pfa_from_regex(
    regex: str,
    distribution: TransitionDistribution | None = None,
    alphabet: list[str] | None = None,
    minimize: bool = True,
) -> PFA:
    """Full pipeline: parse ``regex``, build the NFA, determinise,
    optionally minimise, and attach ``distribution``.

    This is the composition ``ConstructPFA(ConvertToNFA(RE), PD)`` from
    Algorithm 2.  When ``distribution`` refers to states, those are state
    ids of the (minimised) DFA; use :func:`repro.ptest.generator`
    helpers to build distributions by state label instead.
    """
    ast = parse_regex(regex, alphabet=alphabet)
    dfa = nfa_to_dfa(regex_to_nfa(ast))
    if minimize:
        dfa = minimize_dfa(dfa)
    return build_pfa(dfa, distribution)
