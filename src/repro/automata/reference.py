"""Frozen pre-compilation reference implementations.

:class:`~repro.automata.compiled.CompiledPFA` sampling is contractually
*bit-identical* to the original dict-walking sampler, and the
incremental wait-for graph must agree with a from-scratch cycle search.
This module pins both contracts: it carries the legacy algorithms,
verbatim, for the equivalence tests (``tests/test_perf_subsystem.py``)
and the perf baseline (``benchmarks/bench_perf_hotpaths.py``) to
compare against.  One shared copy means the two checks cannot drift
onto different references.

Nothing in the runtime imports this module; it exists for tests and
benchmarks.  Do not "optimise" it — its value is staying exactly as
slow as the pre-compilation code was.
"""

from __future__ import annotations

import math
import random


class LegacySampler:
    """The pre-compilation Algorithm 2 walk, verbatim: every step
    re-sorts the state's transition dict into a list and
    roulette-wheels over it with a linear scan."""

    def __init__(self, pfa, seed, on_final="stop"):
        self.pfa = pfa
        self.on_final = on_final
        self._rng = random.Random(seed)

    def _outgoing(self, state):
        arcs = self.pfa.transitions.get(state, {})
        return [arcs[symbol] for symbol in sorted(arcs)]

    def _choose(self, state):
        arcs = self._outgoing(state)
        if len(arcs) == 1:
            return arcs[0]
        pick = self._rng.random()
        cumulative = 0.0
        for transition in arcs:
            cumulative += transition.probability
            if pick < cumulative:
                return transition
        return arcs[-1]  # guard against floating-point undershoot

    def sample(self, size):
        """One walk; returns ``(symbols, states, log_prob, restarts)``."""
        symbols, states = [], [self.pfa.start]
        log_probability = 0.0
        restarts = 0
        state = self.pfa.start
        while len(symbols) < size:
            if not self.pfa.transitions.get(state):
                if self.on_final == "stop":
                    break
                restarts += 1
                state = self.pfa.start
                states.append(state)
                continue
            transition = self._choose(state)
            symbols.append(transition.symbol)
            log_probability += math.log(transition.probability)
            state = transition.target
            states.append(state)
        return tuple(symbols), tuple(states), log_probability, restarts


def legacy_sample(pfa, seed, size, on_final="stop"):
    """One-shot convenience wrapper around :class:`LegacySampler`."""
    return LegacySampler(pfa, seed, on_final=on_final).sample(size)


def networkx_cycle_tids(edges):
    """The pre-PR deadlock check: rebuild a digraph from
    ``(waiter, owner, resource)`` rows, run ``find_cycle`` and return
    the sorted waiter tids, or ``None`` when acyclic."""
    import networkx as nx

    graph = nx.DiGraph()
    for waiter, owner, _resource in edges:
        graph.add_edge(waiter, owner)
    if not graph:
        return None
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return tuple(sorted({edge[0] for edge in cycle}))
