"""Sampling symbol sequences from a PFA (the core of Algorithm 2).

Algorithm 2 walks the PFA for ``s`` steps: at each state with a
probabilistic choice it calls ``MakeChoice``; a state with exactly one
outgoing arc is followed deterministically.  Two behaviours are supported
when the walk reaches an absorbing final state before ``s`` symbols have
been produced:

* ``on_final="stop"`` — the pattern ends early (the task's life cycle is
  complete);
* ``on_final="restart"`` — the walk resumes from the initial state, which
  models continuous stress testing (the paper's test case 1 "continued to
  create tasks and removed them when their work was done").

The walk runs over a :class:`~repro.automata.compiled.CompiledPFA`:
per-state symbol/target/cumulative-probability rows built once, so
``MakeChoice`` is a :func:`bisect.bisect_right` over a float tuple
instead of re-sorting transition dicts on every step.  Seeded output is
bit-for-bit identical to the legacy dict-walking sampler: the RNG is
consumed once per multi-arc state, and the cumulative rows are built by
the same left-to-right float additions the legacy linear scan performed.

This walk is also the scalar *reference* for the vectorized
:class:`~repro.automata.batch.BatchSampler`, which advances many seeded
walks in lockstep and must reproduce this sampler's output bit for bit
(see that module's lockstep-front RNG-order contract).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Literal

from repro.automata.compiled import CompiledPFA
from repro.automata.pfa import PFA, Transition
from repro.errors import SamplingError

OnFinal = Literal["stop", "restart"]


@dataclass(frozen=True, slots=True)
class SampledPattern:
    """A sampled walk: the emitted symbols and the visited state path.

    ``states`` has one more element than ``symbols`` per segment; restarts
    insert the initial state again, so ``len(states) >= len(symbols) + 1``.
    ``log_probability`` is the natural-log probability of the walk
    (sum over chosen transitions), comparable across equal-length walks.

    Slotted: campaigns materialise one of these per pattern per round,
    so dropping the per-instance ``__dict__`` is a real memory win (the
    bench's ``tracemalloc`` figures track it).  The batch sampler's
    fast construction path writes through the slot descriptors (see
    ``repro.automata.batch.PatternBatch``).
    """

    symbols: tuple[str, ...]
    states: tuple[int, ...]
    log_probability: float
    restarts: int


@dataclass
class PatternSampler:
    """Draws symbol sequences from a PFA with a private RNG.

    Parameters
    ----------
    pfa:
        The automaton to walk — a :class:`PFA`, or an already-built
        :class:`CompiledPFA` to share one compilation across samplers.
    seed:
        Seed for the private :class:`random.Random`; runs are reproducible
        given the seed.
    on_final:
        Behaviour at absorbing final states (see module docstring).
    """

    pfa: PFA | CompiledPFA
    seed: int | None = None
    on_final: OnFinal = "stop"
    _rng: random.Random = field(init=False, repr=False)
    _compiled: CompiledPFA = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.on_final not in ("stop", "restart"):
            raise SamplingError(f"unknown on_final mode {self.on_final!r}")
        self._rng = random.Random(self.seed)
        if isinstance(self.pfa, CompiledPFA):
            self._compiled = self.pfa
            self.pfa = self.pfa.source
        else:
            self._compiled = CompiledPFA.from_pfa(self.pfa)
        if self._compiled.is_absorbing(self._compiled.start):
            raise SamplingError("PFA start state has no outgoing transitions")

    @property
    def compiled(self) -> CompiledPFA:
        """The compiled automaton the walk runs over."""
        return self._compiled

    def _choose(self, state: int) -> Transition:
        """``MakeChoice`` of Algorithm 2: roulette-wheel selection.

        Kept for API compatibility and the ``sample_to_final`` walk; the
        batch hot path inlines the same index arithmetic.
        """
        return self._compiled.transition(state, self._choose_index(state))

    def _choose_index(self, state: int) -> int:
        compiled = self._compiled
        count = len(compiled.symbols[state])
        if count == 0:
            raise SamplingError(f"state {state} is absorbing")
        if count == 1:
            return 0
        row = compiled.cumulative[state]
        index = bisect_right(row, self._rng.random())
        # Guard against floating-point undershoot of the final sum.
        return index if index < count else count - 1

    def sample(self, size: int) -> SampledPattern:
        """Generate one pattern with at most ``size`` symbols.

        ``size`` counts emitted symbols (service invocations); the paper's
        ``s`` counts pattern states, which for a connected walk is the
        same number plus one.
        """
        if size < 1:
            raise SamplingError(f"pattern size must be >= 1, got {size}")
        compiled = self._compiled
        rows = compiled.rows
        rand = self._rng.random
        start = compiled.start
        on_stop = self.on_final == "stop"

        symbols: list[str] = []
        states: list[int] = [start]
        append_symbol = symbols.append
        append_state = states.append
        log_probability = 0.0
        restarts = 0
        state = start
        remaining = size
        while remaining:
            count, row_symbols, row_targets, row_cumulative, row_logs = rows[
                state
            ]
            if count > 1:
                index = bisect_right(row_cumulative, rand())
                if index == count:
                    index -= 1
            elif count == 1:
                index = 0
            else:
                if on_stop:
                    break
                restarts += 1
                state = start
                append_state(start)
                continue
            append_symbol(row_symbols[index])
            log_probability += row_logs[index]
            state = row_targets[index]
            append_state(state)
            remaining -= 1
        return SampledPattern(
            symbols=tuple(symbols),
            states=tuple(states),
            log_probability=log_probability,
            restarts=restarts,
        )

    def sample_many(self, count: int, size: int) -> list[SampledPattern]:
        """Generate ``count`` patterns (the loop in Algorithm 1, line 1-3)."""
        if count < 0:
            raise SamplingError(f"pattern count must be >= 0, got {count}")
        return [self.sample(size) for _ in range(count)]

    def sample_to_final(self, max_size: int = 10_000) -> SampledPattern:
        """Walk until an absorbing final state is reached (a complete task
        life cycle), or raise if ``max_size`` symbols pass without one."""
        compiled = self._compiled
        symbols: list[str] = []
        states: list[int] = [compiled.start]
        log_probability = 0.0
        state = compiled.start
        while not compiled.is_absorbing(state):
            if len(symbols) >= max_size:
                raise SamplingError(
                    f"no final state reached within {max_size} symbols"
                )
            index = self._choose_index(state)
            symbols.append(compiled.symbols[state][index])
            log_probability += compiled.log_probs[state][index]
            state = compiled.targets[state][index]
            states.append(state)
        return SampledPattern(
            symbols=tuple(symbols),
            states=tuple(states),
            log_probability=log_probability,
            restarts=0,
        )


def sample_pattern(
    pfa: PFA,
    size: int,
    seed: int | None = None,
    on_final: OnFinal = "stop",
) -> SampledPattern:
    """One-shot convenience wrapper around :class:`PatternSampler`."""
    return PatternSampler(pfa, seed=seed, on_final=on_final).sample(size)
