"""Sampling symbol sequences from a PFA (the core of Algorithm 2).

Algorithm 2 walks the PFA for ``s`` steps: at each state with a
probabilistic choice it calls ``MakeChoice``; a state with exactly one
outgoing arc is followed deterministically.  Two behaviours are supported
when the walk reaches an absorbing final state before ``s`` symbols have
been produced:

* ``on_final="stop"`` — the pattern ends early (the task's life cycle is
  complete);
* ``on_final="restart"`` — the walk resumes from the initial state, which
  models continuous stress testing (the paper's test case 1 "continued to
  create tasks and removed them when their work was done").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Literal

from repro.automata.pfa import PFA, Transition
from repro.errors import SamplingError

OnFinal = Literal["stop", "restart"]


@dataclass(frozen=True)
class SampledPattern:
    """A sampled walk: the emitted symbols and the visited state path.

    ``states`` has one more element than ``symbols`` per segment; restarts
    insert the initial state again, so ``len(states) >= len(symbols) + 1``.
    ``log_probability`` is the natural-log probability of the walk
    (sum over chosen transitions), comparable across equal-length walks.
    """

    symbols: tuple[str, ...]
    states: tuple[int, ...]
    log_probability: float
    restarts: int


@dataclass
class PatternSampler:
    """Draws symbol sequences from a PFA with a private RNG.

    Parameters
    ----------
    pfa:
        The automaton to walk.
    seed:
        Seed for the private :class:`random.Random`; runs are reproducible
        given the seed.
    on_final:
        Behaviour at absorbing final states (see module docstring).
    """

    pfa: PFA
    seed: int | None = None
    on_final: OnFinal = "stop"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.on_final not in ("stop", "restart"):
            raise SamplingError(f"unknown on_final mode {self.on_final!r}")
        self._rng = random.Random(self.seed)
        if self.pfa.is_absorbing(self.pfa.start):
            raise SamplingError("PFA start state has no outgoing transitions")

    def _choose(self, state: int) -> Transition:
        """``MakeChoice`` of Algorithm 2: roulette-wheel selection."""
        arcs = self.pfa.outgoing(state)
        if not arcs:
            raise SamplingError(f"state {state} is absorbing")
        if len(arcs) == 1:
            return arcs[0]
        pick = self._rng.random()
        cumulative = 0.0
        for transition in arcs:
            cumulative += transition.probability
            if pick < cumulative:
                return transition
        return arcs[-1]  # guard against floating-point undershoot

    def sample(self, size: int) -> SampledPattern:
        """Generate one pattern with at most ``size`` symbols.

        ``size`` counts emitted symbols (service invocations); the paper's
        ``s`` counts pattern states, which for a connected walk is the
        same number plus one.
        """
        if size < 1:
            raise SamplingError(f"pattern size must be >= 1, got {size}")
        symbols: list[str] = []
        states: list[int] = [self.pfa.start]
        log_probability = 0.0
        restarts = 0
        state = self.pfa.start
        while len(symbols) < size:
            if self.pfa.is_absorbing(state):
                if self.on_final == "stop":
                    break
                restarts += 1
                state = self.pfa.start
                states.append(state)
                continue
            transition = self._choose(state)
            symbols.append(transition.symbol)
            log_probability += math.log(transition.probability)
            state = transition.target
            states.append(state)
        return SampledPattern(
            symbols=tuple(symbols),
            states=tuple(states),
            log_probability=log_probability,
            restarts=restarts,
        )

    def sample_many(self, count: int, size: int) -> list[SampledPattern]:
        """Generate ``count`` patterns (the loop in Algorithm 1, line 1-3)."""
        if count < 0:
            raise SamplingError(f"pattern count must be >= 0, got {count}")
        return [self.sample(size) for _ in range(count)]

    def sample_to_final(self, max_size: int = 10_000) -> SampledPattern:
        """Walk until an absorbing final state is reached (a complete task
        life cycle), or raise if ``max_size`` symbols pass without one."""
        import math

        symbols: list[str] = []
        states: list[int] = [self.pfa.start]
        log_probability = 0.0
        state = self.pfa.start
        while not self.pfa.is_absorbing(state):
            if len(symbols) >= max_size:
                raise SamplingError(
                    f"no final state reached within {max_size} symbols"
                )
            transition = self._choose(state)
            symbols.append(transition.symbol)
            log_probability += math.log(transition.probability)
            state = transition.target
            states.append(state)
        return SampledPattern(
            symbols=tuple(symbols),
            states=tuple(states),
            log_probability=log_probability,
            restarts=0,
        )


def sample_pattern(
    pfa: PFA,
    size: int,
    seed: int | None = None,
    on_final: OnFinal = "stop",
) -> SampledPattern:
    """One-shot convenience wrapper around :class:`PatternSampler`."""
    return PatternSampler(pfa, seed=seed, on_final=on_final).sample(size)
