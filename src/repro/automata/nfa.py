"""Nondeterministic finite automata via Thompson's construction.

``ConvertToNFA`` in Algorithm 2 of the paper is realised here by
:func:`regex_to_nfa`.  States are small integers allocated by
:class:`NFABuilder`; epsilon moves are stored separately from symbol moves
so closure computation stays simple.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Literal,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.errors import AutomatonError


@dataclass
class NFA:
    """A nondeterministic finite automaton with epsilon moves.

    Attributes
    ----------
    num_states:
        States are ``0 .. num_states - 1``.
    alphabet:
        The symbols appearing on (non-epsilon) arcs.
    transitions:
        Mapping ``state -> symbol -> set of successor states``.
    epsilon:
        Mapping ``state -> set of successor states`` for epsilon moves.
    start:
        The single start state.
    accepts:
        Set of accepting states.
    """

    num_states: int
    alphabet: frozenset[str]
    transitions: dict[int, dict[str, set[int]]]
    epsilon: dict[int, set[int]]
    start: int
    accepts: frozenset[int]

    def __post_init__(self) -> None:
        self._check_state(self.start)
        for state in self.accepts:
            self._check_state(state)
        for state, arcs in self.transitions.items():
            self._check_state(state)
            for symbol, targets in arcs.items():
                if symbol not in self.alphabet:
                    raise AutomatonError(
                        f"transition on unknown symbol {symbol!r}"
                    )
                for target in targets:
                    self._check_state(target)
        for state, targets in self.epsilon.items():
            self._check_state(state)
            for target in targets:
                self._check_state(target)

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.num_states:
            raise AutomatonError(f"state {state} out of range")

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """Return all states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        queue = deque(closure)
        while queue:
            state = queue.popleft()
            for target in self.epsilon.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    queue.append(target)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: str) -> frozenset[int]:
        """Return states directly reachable from ``states`` on ``symbol``."""
        result: set[int] = set()
        for state in states:
            result.update(self.transitions.get(state, {}).get(symbol, ()))
        return frozenset(result)

    def accepts_word(self, word: Iterable[str]) -> bool:
        """Simulate the NFA on a sequence of symbols."""
        current = self.epsilon_closure([self.start])
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            current = self.epsilon_closure(self.move(current, symbol))
            if not current:
                return False
        return bool(current & self.accepts)


@dataclass
class _Fragment:
    """A partially-built NFA fragment with one entry and one exit state."""

    start: int
    accept: int


@dataclass
class NFABuilder:
    """Incrementally builds an NFA using Thompson's construction."""

    alphabet: set[str] = field(default_factory=set)
    transitions: dict[int, dict[str, set[int]]] = field(default_factory=dict)
    epsilon: dict[int, set[int]] = field(default_factory=dict)
    _next_state: int = 0

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add_arc(self, source: int, symbol: str, target: int) -> None:
        self.alphabet.add(symbol)
        self.transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, set()).add(target)

    # -- Thompson construction per AST node -----------------------------

    def build(self, node: RegexNode) -> _Fragment:
        if isinstance(node, Empty):
            # Two fresh states with no connection: accepts nothing.
            return _Fragment(self.new_state(), self.new_state())
        if isinstance(node, Epsilon):
            start = self.new_state()
            accept = self.new_state()
            self.add_epsilon(start, accept)
            return _Fragment(start, accept)
        if isinstance(node, Literal):
            start = self.new_state()
            accept = self.new_state()
            self.add_arc(start, node.symbol, accept)
            return _Fragment(start, accept)
        if isinstance(node, Concat):
            left = self.build(node.left)
            right = self.build(node.right)
            self.add_epsilon(left.accept, right.start)
            return _Fragment(left.start, right.accept)
        if isinstance(node, Union):
            left = self.build(node.left)
            right = self.build(node.right)
            start = self.new_state()
            accept = self.new_state()
            self.add_epsilon(start, left.start)
            self.add_epsilon(start, right.start)
            self.add_epsilon(left.accept, accept)
            self.add_epsilon(right.accept, accept)
            return _Fragment(start, accept)
        if isinstance(node, Star):
            inner = self.build(node.child)
            start = self.new_state()
            accept = self.new_state()
            self.add_epsilon(start, inner.start)
            self.add_epsilon(start, accept)
            self.add_epsilon(inner.accept, inner.start)
            self.add_epsilon(inner.accept, accept)
            return _Fragment(start, accept)
        if isinstance(node, Plus):
            inner = self.build(node.child)
            start = self.new_state()
            accept = self.new_state()
            self.add_epsilon(start, inner.start)
            self.add_epsilon(inner.accept, inner.start)
            self.add_epsilon(inner.accept, accept)
            return _Fragment(start, accept)
        if isinstance(node, Optional_):
            inner = self.build(node.child)
            start = self.new_state()
            accept = self.new_state()
            self.add_epsilon(start, inner.start)
            self.add_epsilon(start, accept)
            self.add_epsilon(inner.accept, accept)
            return _Fragment(start, accept)
        raise AutomatonError(f"unsupported AST node {type(node).__name__}")

    def finish(self, fragment: _Fragment) -> NFA:
        return NFA(
            num_states=self._next_state,
            alphabet=frozenset(self.alphabet),
            transitions=self.transitions,
            epsilon=self.epsilon,
            start=fragment.start,
            accepts=frozenset({fragment.accept}),
        )


def regex_to_nfa(node: RegexNode) -> NFA:
    """Compile a regex AST into an NFA (``ConvertToNFA`` of Algorithm 2)."""
    builder = NFABuilder()
    fragment = builder.build(node)
    return builder.finish(fragment)
