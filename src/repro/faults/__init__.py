"""Fault catalogue and injection (the ground truth for detection
experiments).

The paper's two case studies each revolve around one seeded fault; the
catalogue generalises that into a set of known faults with expected
anomaly classes, so detection-rate experiments (E8-E10) have ground
truth to score against.
"""

from repro.faults.injection import (
    FAULT_CATALOGUE,
    FaultSpec,
    build_fault_scenario,
    fault_names,
)

__all__ = [
    "FAULT_CATALOGUE",
    "FaultSpec",
    "build_fault_scenario",
    "fault_names",
]
