"""Seeded faults with known signatures.

Each :class:`FaultSpec` builds an :class:`~repro.ptest.harness.
AdaptiveTest` containing exactly one known fault (or none, for the
control), together with the anomaly class a correct detector should
report.  Detection-rate sweeps iterate the catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import ConfigError
from repro.pcore.kernel import KernelConfig
from repro.pcore.programs import Compute, Exit, Syscall, TaskContext, YieldCpu
from repro.ptest.config import PTestConfig
from repro.ptest.detector import AnomalyKind
from repro.ptest.harness import AdaptiveTest
from repro.workloads.scenarios import (
    lifecycle_pfa,
    philosophers_case2,
    producer_consumer_scenario,
    stress_case1,
)


def _spin_hog_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """Computes forever without yielding: starves lower priorities."""
    del ctx
    while True:
        yield Compute(50)


def _polite_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """Computes a little, yields, exits — a well-behaved task."""
    del ctx
    for _ in range(40):
        yield Compute(1)
        yield YieldCpu()
    yield Exit(0)


def _priority_starvation(seed: int) -> AdaptiveTest:
    """Pair 1 (higher band = higher priority) hogs the CPU; pair 0's
    polite task starves in READY."""
    config = PTestConfig(
        pattern_count=2,
        pattern_size=1,
        op="round_robin",
        seed=seed,
        program="polite",
        pair_programs=("polite", "hog"),
        max_ticks=10_000,
        progress_window=400,
        reply_timeout=20_000,
    )
    return AdaptiveTest(
        config=config,
        programs={"polite": _polite_program, "hog": _spin_hog_program},
        pfa=lifecycle_pfa(("TC",)),
    )


def _healthy_control(seed: int) -> AdaptiveTest:
    """No fault: the full pCore PFA stress at moderate scale."""
    config = PTestConfig(
        pattern_count=4,
        pattern_size=6,
        op="round_robin",
        seed=seed,
        program="polite",
        max_ticks=20_000,
        kernel=KernelConfig(buggy_gc=False),
    )
    return AdaptiveTest(config=config, programs={"polite": _polite_program})


@dataclass(frozen=True)
class FaultSpec:
    """One catalogued fault."""

    name: str
    description: str
    #: Anomaly class a correct detector reports (``None`` = no anomaly).
    expected: AnomalyKind | None
    build: Callable[[int], AdaptiveTest]


FAULT_CATALOGUE: tuple[FaultSpec, ...] = (
    FaultSpec(
        name="gc_leak",
        description=(
            "pCore garbage collector leaks tasks deleted mid-flight; "
            "create/delete churn exhausts kernel memory (test case 1)"
        ),
        expected=AnomalyKind.CRASH,
        build=lambda seed: stress_case1(seed=seed, buggy_gc=True),
    ),
    FaultSpec(
        name="cyclic_lock",
        description=(
            "dining philosophers acquire forks in cyclic order "
            "(test case 2)"
        ),
        expected=AnomalyKind.DEADLOCK,
        build=lambda seed: philosophers_case2(seed=seed, op="cyclic"),
    ),
    FaultSpec(
        name="lost_wakeup",
        description=(
            "producer drops every fourth items-semaphore signal; the "
            "consumer eventually blocks forever"
        ),
        expected=AnomalyKind.STARVATION,
        build=lambda seed: producer_consumer_scenario(seed=seed, faulty=True),
    ),
    FaultSpec(
        name="priority_starvation",
        description=(
            "a high-priority task computes without yielding; a lower "
            "priority task never progresses"
        ),
        expected=AnomalyKind.STARVATION,
        build=_priority_starvation,
    ),
    FaultSpec(
        name="none",
        description="healthy control: correct GC, polite tasks",
        expected=None,
        build=_healthy_control,
    ),
)


def fault_names() -> list[str]:
    return [spec.name for spec in FAULT_CATALOGUE]


def build_fault_scenario(name: str, seed: int = 0) -> AdaptiveTest:
    """Instantiate one catalogued fault scenario by name."""
    for spec in FAULT_CATALOGUE:
        if spec.name == name:
            return spec.build(seed)
    raise ConfigError(f"unknown fault {name!r}; known: {fault_names()}")
