"""Convergence of profiled distributions to the ground truth.

"The knowledge about probability distributions can be learned through
system profiling" — but how much profiling?  This module measures the
KL divergence between a trace-learned transition distribution and the
true generating distribution, per automaton state and aggregated, as a
function of trace count.  scipy computes the divergences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import entropy

from repro.automata.dfa import DFA
from repro.automata.distributions import TransitionDistribution
from repro.automata.learn import estimate_distribution
from repro.automata.pfa import PFA
from repro.automata.sampling import PatternSampler
from repro.errors import DistributionError


def row_kl_divergence(
    true_row: dict[str, float], learned_row: dict[str, float]
) -> float:
    """KL(true || learned) over one state's outgoing symbols (nats).

    The learned row must give positive mass to every symbol the true row
    uses (guaranteed by Laplace smoothing in the learner).
    """
    symbols = sorted(true_row)
    if not symbols:
        return 0.0
    true_vector = np.array([true_row[s] for s in symbols])
    learned_vector = np.array([learned_row.get(s, 0.0) for s in symbols])
    if np.any((true_vector > 0) & (learned_vector <= 0)):
        raise DistributionError(
            "learned row has zero mass on a used transition; smooth first"
        )
    return float(entropy(true_vector, learned_vector))


def pfa_rows(pfa: PFA) -> dict[int, dict[str, float]]:
    """Per-state outgoing probability rows of a PFA."""
    return {
        state: {
            t.symbol: t.probability for t in pfa.outgoing(state)
        }
        for state in range(pfa.num_states)
        if not pfa.is_absorbing(state)
    }


def distribution_rows(
    dist: TransitionDistribution, dfa: DFA
) -> dict[int, dict[str, float]]:
    """Per-state rows of a learned distribution over a DFA's arcs."""
    rows: dict[int, dict[str, float]] = {}
    for state, arcs in dfa.transitions.items():
        rows[state] = {
            symbol: dist.get(state, symbol) for symbol in arcs
        }
    return rows


@dataclass(frozen=True)
class ConvergencePoint:
    """Learned-vs-true divergence at one trace budget."""

    traces: int
    mean_kl: float
    max_kl: float


def measure_convergence(
    true_pfa: PFA,
    structural_dfa: DFA,
    state_map: dict[int, int],
    trace_budgets: list[int],
    seed: int = 0,
    smoothing: float = 1.0,
    lifecycle_cap: int = 64,
) -> list[ConvergencePoint]:
    """Sample lifecycles from ``true_pfa``, learn on ``structural_dfa``,
    and score the divergence at each trace budget.

    ``state_map`` maps structural-DFA states to true-PFA states (the two
    automata accept the same language but may number states
    differently); build it with :func:`align_states`.
    """
    sampler = PatternSampler(true_pfa, seed=seed)
    points = []
    traces: list[tuple[str, ...]] = []
    true_rows = pfa_rows(true_pfa)
    for budget in sorted(trace_budgets):
        while len(traces) < budget:
            traces.append(sampler.sample_to_final(lifecycle_cap).symbols)
        learned = estimate_distribution(
            structural_dfa, traces, smoothing=smoothing
        )
        learned_rows = distribution_rows(learned, structural_dfa)
        divergences = []
        for dfa_state, pfa_state in state_map.items():
            if pfa_state not in true_rows:
                continue
            divergences.append(
                row_kl_divergence(
                    true_rows[pfa_state], learned_rows.get(dfa_state, {})
                )
            )
        points.append(
            ConvergencePoint(
                traces=budget,
                mean_kl=float(np.mean(divergences)) if divergences else 0.0,
                max_kl=float(np.max(divergences)) if divergences else 0.0,
            )
        )
    return points


def align_states(dfa: DFA, pfa: PFA) -> dict[int, int]:
    """Map DFA states to PFA states by parallel breadth-first walk.

    Both automata must accept the same language (checked transitively by
    the walk: a structural mismatch raises).
    """
    mapping = {dfa.start: pfa.start}
    queue = [dfa.start]
    seen = {dfa.start}
    while queue:
        state = queue.pop(0)
        pfa_state = mapping[state]
        for symbol, target in sorted(dfa.outgoing(state).items()):
            pfa_arc = pfa.step(pfa_state, symbol)
            if pfa_arc is None:
                raise DistributionError(
                    f"automata disagree at state {state} on {symbol!r}"
                )
            if target in mapping:
                if mapping[target] != pfa_arc.target:
                    # The DFA may merge states the PFA keeps apart (or
                    # vice versa); alignment requires compatible shapes.
                    raise DistributionError(
                        f"state {target} maps ambiguously; align on the "
                        f"unminimised subset DFA"
                    )
            else:
                mapping[target] = pfa_arc.target
                seen.add(target)
                queue.append(target)
    return mapping
