"""Coverage, detection metrics and profiling-based distribution learning.

Quantifies what the paper leaves qualitative: PFA-transition and
service-pair coverage of a pattern batch (:mod:`repro.analysis.coverage`),
fault-detection rates and times over seed sweeps
(:mod:`repro.analysis.metrics`), pattern-duplication statistics (the
future-work concern about replicated patterns), and learning transition
distributions from executed traces (:mod:`repro.analysis.profiling`).
"""

from repro.analysis.coverage import (
    CoverageReport,
    pattern_transition_coverage,
    service_pair_coverage,
)
from repro.analysis.metrics import (
    DetectionStats,
    detection_sweep,
    duplication_rate,
    unique_pattern_fraction,
)
from repro.analysis.convergence import (
    ConvergencePoint,
    align_states,
    measure_convergence,
    row_kl_divergence,
)
from repro.analysis.text_report import render_campaign, render_run, render_table
from repro.analysis.profiling import (
    learn_distribution_from_patterns,
    traces_from_result,
)

__all__ = [
    "CoverageReport",
    "pattern_transition_coverage",
    "service_pair_coverage",
    "DetectionStats",
    "detection_sweep",
    "duplication_rate",
    "unique_pattern_fraction",
    "learn_distribution_from_patterns",
    "traces_from_result",
    "ConvergencePoint",
    "align_states",
    "measure_convergence",
    "row_kl_divergence",
    "render_campaign",
    "render_run",
    "render_table",
]
