"""Plain-text / Markdown rendering of results and campaigns.

The CLI and benches need tables; users scripting campaigns want the
same rendering without pulling in a plotting stack.  Everything here is
pure string formatting over the result dataclasses.
"""

from __future__ import annotations

from typing import Sequence

from repro.ptest.campaign import CampaignRow
from repro.ptest.harness import TestRunResult


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], markdown: bool = False
) -> str:
    """Render rows as a fixed-width (or Markdown) table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    if markdown:
        head = "| " + " | ".join(
            str(h).ljust(w) for h, w in zip(headers, widths)
        ) + " |"
        rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |"
            for row in cells
        ]
        return "\n".join([head, rule, *body])
    head = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([head, rule, *body])


def render_run(result: TestRunResult, markdown: bool = False) -> str:
    """One run's summary block."""
    lines = [
        f"**{result.summary()}**" if markdown else result.summary(),
        render_table(
            ["metric", "value"],
            [
                ("rounds", result.rounds),
                ("ticks", result.ticks),
                ("commands issued", result.commands_issued),
                ("commands completed", result.commands_completed),
                ("error replies", result.commands_failed),
                ("merged length", result.merged_length),
            ],
            markdown=markdown,
        ),
    ]
    if result.service_counts:
        lines.append("")
        lines.append(
            render_table(
                ["service", "invocations"],
                sorted(result.service_counts.items()),
                markdown=markdown,
            )
        )
    if result.found_bug:
        lines.append("")
        lines.append(result.report.describe())
    return "\n".join(lines)


def render_campaign(
    rows: Sequence[CampaignRow], markdown: bool = False
) -> str:
    """A campaign's summary table."""
    return render_table(
        [
            "variant",
            "runs",
            "detections",
            "rate",
            "kinds",
            "mean ticks",
            "mean commands",
        ],
        [
            (
                row.variant,
                row.runs,
                row.detections,
                f"{row.rate:.2f}",
                ",".join(row.kinds) or "-",
                f"{row.mean_ticks_to_detection:.0f}",
                f"{row.mean_commands:.0f}",
            )
            for row in rows
        ],
        markdown=markdown,
    )
