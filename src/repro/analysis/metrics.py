"""Detection-rate metrics over seed sweeps.

The paper's future work: "identify the influence of probability
distributions on the generation of test pattern" and "the replicated
test patterns can reduce the effectiveness of pTest".  These helpers
quantify both: run a scenario builder across seeds and aggregate
detection outcomes; measure duplication within pattern batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.ptest.detector import AnomalyKind
from repro.ptest.harness import AdaptiveTest, TestRunResult


@dataclass(frozen=True)
class DetectionStats:
    """Aggregate of one detection sweep."""

    runs: int
    detections: int
    expected_kind_hits: int
    mean_ticks_to_detection: float
    mean_commands_to_detection: float
    false_kinds: tuple[str, ...]

    @property
    def rate(self) -> float:
        return self.detections / self.runs if self.runs else 0.0

    @property
    def precision(self) -> float:
        """Among detections, the share matching the expected kind."""
        if not self.detections:
            return 0.0
        return self.expected_kind_hits / self.detections


def detection_sweep(
    builder: Callable[[int], AdaptiveTest],
    seeds: Iterable[int],
    expected: AnomalyKind | None,
) -> DetectionStats:
    """Run ``builder(seed)`` per seed; score against ``expected``.

    With ``expected=None`` (healthy control) ``detections`` counts false
    positives and the means stay NaN-free at 0.
    """
    runs = 0
    detections = 0
    hits = 0
    tick_sum = 0.0
    command_sum = 0.0
    false_kinds: list[str] = []
    for seed in seeds:
        result: TestRunResult = builder(seed).run()
        runs += 1
        if not result.found_bug:
            continue
        detections += 1
        primary = result.report.primary
        tick_sum += primary.detected_at
        command_sum += result.commands_issued
        if expected is not None and primary.kind is expected:
            hits += 1
        else:
            false_kinds.append(primary.kind.value)
    mean_ticks = tick_sum / detections if detections else 0.0
    mean_commands = command_sum / detections if detections else 0.0
    return DetectionStats(
        runs=runs,
        detections=detections,
        expected_kind_hits=hits,
        mean_ticks_to_detection=mean_ticks,
        mean_commands_to_detection=mean_commands,
        false_kinds=tuple(false_kinds),
    )


def duplication_rate(patterns: Sequence[Sequence[str]]) -> float:
    """Fraction of patterns in a batch that duplicate an earlier one.

    0.0 = all unique; approaching 1.0 = the batch is mostly replicas
    (the effectiveness concern of the paper's future work).
    """
    if not patterns:
        return 0.0
    seen: set[tuple[str, ...]] = set()
    duplicates = 0
    for pattern in patterns:
        key = tuple(pattern)
        if key in seen:
            duplicates += 1
        else:
            seen.add(key)
    return duplicates / len(patterns)


def unique_pattern_fraction(patterns: Sequence[Sequence[str]]) -> float:
    """Distinct patterns / total patterns."""
    if not patterns:
        return 1.0
    return len({tuple(p) for p in patterns}) / len(patterns)


def expected_distinct_patterns(
    probabilities: Sequence[float], draws: int
) -> float:
    """Analytic expected number of distinct outcomes over ``draws``
    samples of a categorical distribution — the model for duplication
    growth used to cross-check the empirical rate (E9)."""
    if draws < 0:
        raise ValueError(f"draws must be >= 0, got {draws}")
    return float(
        sum(1.0 - math.pow(1.0 - p, draws) for p in probabilities)
    )
