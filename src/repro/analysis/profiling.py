"""Learning PFA distributions from executed runs.

"The knowledge about probability distributions can be learned through
system profiling" — the loop closed here: run a (possibly uniform)
stress test, collect the per-pair service traces it actually executed,
and estimate a transition distribution for the next, better-informed
round of testing.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.dfa import DFA
from repro.automata.distributions import TransitionDistribution
from repro.automata.learn import estimate_distribution
from repro.ptest.harness import TestRunResult


def traces_from_result(result: TestRunResult) -> list[tuple[str, ...]]:
    """The per-pair service sequences a run issued (its profile)."""
    return [tuple(pattern) for pattern in result.patterns]


def learn_distribution_from_patterns(
    dfa: DFA,
    traces: Sequence[Sequence[str]],
    smoothing: float = 1.0,
) -> TransitionDistribution:
    """Estimate a smoothed transition distribution from traces.

    Thin wrapper over :func:`repro.automata.learn.estimate_distribution`
    so analysis code does not import automata internals directly.
    """
    return estimate_distribution(dfa, traces, smoothing=smoothing)
