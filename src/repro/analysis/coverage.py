"""Coverage metrics over PFAs and pattern batches.

"The effects of code coverage influences the quality of fault detection
... the code coverage analysis is a useful information for stress
testing on large software systems" (Section II-A).  The tractable
analogues in pTest's setting:

* **transition coverage** — which PFA arcs the generated patterns
  exercised (the structural coverage of the behaviour model), and
* **service-pair coverage** — which ordered pairs of consecutive
  services appeared, relative to the pairs the model allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.automata.pfa import PFA


@dataclass(frozen=True)
class CoverageReport:
    """Fractional coverage with the exercised/possible breakdown."""

    covered: frozenset
    possible: frozenset

    @property
    def fraction(self) -> float:
        if not self.possible:
            return 1.0
        return len(self.covered & self.possible) / len(self.possible)

    @property
    def missing(self) -> frozenset:
        return self.possible - self.covered


def pattern_transition_coverage(
    pfa: PFA, patterns: Iterable[Sequence[str]]
) -> CoverageReport:
    """Which PFA transitions the patterns walk (replayed from the start
    state; a pattern that falls off the automaton contributes its valid
    prefix)."""
    possible = frozenset(
        (state, transition.symbol)
        for state in range(pfa.num_states)
        for transition in pfa.outgoing(state)
    )
    covered: set[tuple[int, str]] = set()
    for pattern in patterns:
        state = pfa.start
        for symbol in pattern:
            transition = pfa.step(state, symbol)
            if transition is None:
                break
            covered.add((state, symbol))
            state = transition.target
    return CoverageReport(covered=frozenset(covered), possible=possible)


def _legal_pairs(pfa: PFA) -> frozenset[tuple[str, str]]:
    """Ordered symbol pairs realisable as consecutive PFA steps."""
    pairs: set[tuple[str, str]] = set()
    for state in range(pfa.num_states):
        for first in pfa.outgoing(state):
            for second in pfa.outgoing(first.target):
                pairs.add((first.symbol, second.symbol))
    return frozenset(pairs)


def service_pair_coverage(
    pfa: PFA, patterns: Iterable[Sequence[str]]
) -> CoverageReport:
    """Which consecutive service pairs appeared, out of the legal ones."""
    covered: set[tuple[str, str]] = set()
    for pattern in patterns:
        for first, second in zip(pattern, pattern[1:]):
            covered.add((first, second))
    return CoverageReport(
        covered=frozenset(covered), possible=_legal_pairs(pfa)
    )
