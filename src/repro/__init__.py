"""repro: reproduction of *pTest* (DATE 2009).

pTest is an adaptive stress-testing tool for concurrent software on
embedded multicore processors using the master-slave model.  This
package reimplements the tool and every substrate it ran on — the
OMAP5912-like dual-core SoC, the pCore microkernel, the bridge
middleware, the master-side runtime — as deterministic simulation, plus
the baselines it is compared against and the analyses its evaluation
calls for.

Quick start::

    from repro import CampaignSpec, execute_spec

    spec = CampaignSpec(scenario="philosophers", seeds=(0, 1, 2))
    outcome = execute_spec(spec)
    print(outcome.total_detections)

The names in ``__all__`` below are the supported embedding API: the
campaign entry points (:class:`Campaign`, :class:`AdaptiveCampaign`),
the serializable request schema (:class:`CampaignSpec`,
:func:`execute_spec`), the scenario registry surface
(:func:`scenario`, :class:`ScenarioRef`, :func:`scenario_ref`), the
client for a running ``repro serve`` (:class:`Client`), and the error
root (:class:`ReproError`).  Everything else should be imported from
its subpackage and may move between releases.

Imports are lazy (PEP 562): ``import repro`` itself stays cheap — the
campaign machinery, worker pools and simulator only load when the
first attribute is touched.

Subpackages: :mod:`repro.automata` (regex -> NFA -> PFA pipeline),
:mod:`repro.sim` (the SoC), :mod:`repro.pcore` (the slave kernel),
:mod:`repro.master`, :mod:`repro.bridge`, :mod:`repro.ptest` (the
tool), :mod:`repro.baselines`, :mod:`repro.workloads`,
:mod:`repro.faults`, :mod:`repro.analysis`.
"""

__version__ = "0.1.0"

# Supported API name -> home module.  Resolved on first attribute
# access so `import repro` pulls in nothing beyond this file.
_EXPORTS = {
    "ReproError": "repro.errors",
    "Campaign": "repro.ptest.campaign",
    "AdaptiveCampaign": "repro.ptest.adaptive",
    "CampaignSpec": "repro.ptest.spec",
    "RoundResult": "repro.ptest.spec",
    "SpecOutcome": "repro.ptest.spec",
    "execute_spec": "repro.ptest.spec",
    "Client": "repro.client",
    "RemoteOutcome": "repro.client",
    "ServerError": "repro.client",
    "scenario": "repro.workloads.registry",
    "ScenarioRef": "repro.workloads.registry",
    "scenario_ref": "repro.workloads.registry",
    "PTestConfig": "repro.ptest.config",
    "run_adaptive_test": "repro.ptest.harness",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
