"""repro: reproduction of *pTest* (DATE 2009).

pTest is an adaptive stress-testing tool for concurrent software on
embedded multicore processors using the master-slave model.  This
package reimplements the tool and every substrate it ran on — the
OMAP5912-like dual-core SoC, the pCore microkernel, the bridge
middleware, the master-side runtime — as deterministic simulation, plus
the baselines it is compared against and the analyses its evaluation
calls for.

Quick start::

    from repro.ptest import PTestConfig, run_adaptive_test

    result = run_adaptive_test(PTestConfig(pattern_count=4, pattern_size=8))
    print(result.summary())

Subpackages: :mod:`repro.automata` (regex -> NFA -> PFA pipeline),
:mod:`repro.sim` (the SoC), :mod:`repro.pcore` (the slave kernel),
:mod:`repro.master`, :mod:`repro.bridge`, :mod:`repro.ptest` (the
tool), :mod:`repro.baselines`, :mod:`repro.workloads`,
:mod:`repro.faults`, :mod:`repro.analysis`.
"""

from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = ["ReproError", "__version__"]
