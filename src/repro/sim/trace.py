"""Structured tracing of simulation runs.

The bug detector's reproduction story depends on knowing exactly what
happened and in what order: every interesting action (command issued,
service executed, task state change, mailbox post, kernel panic) is
recorded as a :class:`TraceEvent`.  The :class:`Tracer` keeps a bounded
ring of events with category filters; dumps are plain dicts so reports
can serialise them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

#: Well-known categories; free-form strings are allowed too.
CATEGORY_COMMAND = "command"
CATEGORY_SERVICE = "service"
CATEGORY_TASK = "task"
CATEGORY_MAILBOX = "mailbox"
CATEGORY_KERNEL = "kernel"
CATEGORY_DETECTOR = "detector"
CATEGORY_MASTER = "master"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event.

    ``core`` identifies where it happened (``"master"``, ``"slave"`` or a
    component name); ``payload`` is a small dict of primitives.
    """

    time: int
    core: str
    category: str
    payload: dict

    def describe(self) -> str:
        """One-line human-readable rendering."""
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[{self.time:>8}] {self.core:<6} {self.category:<8} {fields}"


@dataclass
class Tracer:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events are discarded beyond it.  Large
        enough by default to hold a whole stress-test run.
    enabled_categories:
        When non-empty, only these categories are recorded.
    """

    capacity: int = 100_000
    enabled_categories: frozenset[str] = frozenset()
    events: deque[TraceEvent] = field(default_factory=deque, repr=False)
    recorded: int = 0
    discarded: int = 0

    def record(
        self, time: int, core: str, category: str, **payload: object
    ) -> None:
        """Append an event (cheap no-op when the category is filtered)."""
        if self.enabled_categories and category not in self.enabled_categories:
            return
        if len(self.events) >= self.capacity:
            self.events.popleft()
            self.discarded += 1
        self.events.append(
            TraceEvent(time=time, core=core, category=category, payload=dict(payload))
        )
        self.recorded += 1

    def filter(
        self,
        category: str | None = None,
        core: str | None = None,
        since: int | None = None,
    ) -> list[TraceEvent]:
        """Return recorded events matching all given criteria."""
        result = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if core is not None and event.core != core:
                continue
            if since is not None and event.time < since:
                continue
            result.append(event)
        return result

    def tail(self, count: int = 50) -> list[TraceEvent]:
        """The most recent ``count`` events (for bug-report dumps)."""
        if count <= 0:
            return []
        return list(self.events)[-count:]

    def dump(self, events: Iterable[TraceEvent] | None = None) -> list[dict]:
        """Serialise events to plain dicts."""
        source = self.events if events is None else events
        return [
            {
                "time": event.time,
                "core": event.core,
                "category": event.category,
                **event.payload,
            }
            for event in source
        ]

    def clear(self) -> None:
        self.events.clear()
