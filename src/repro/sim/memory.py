"""Shared on-chip memory.

Models the OMAP5912's 250 KB of shared internal SRAM: a flat byte array
with checked word accesses, little-endian like both the ARM926 (in its
usual configuration) and the C55x DSP data view.  Watchpoints let tests
and the tracer observe specific addresses (e.g. the ``x``/``y`` flags of
the Fig. 1 example live here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MemoryError_

#: Size of the OMAP5912 shared internal SRAM, per the paper (250 Kbytes).
OMAP5912_SRAM_BYTES = 250 * 1024

WatchCallback = Callable[[int, int, int], None]  # (address, old, new)


@dataclass
class SharedMemory:
    """Byte-addressable shared memory with bounds and alignment checks."""

    size: int = OMAP5912_SRAM_BYTES
    data: bytearray = field(init=False, repr=False)
    reads: int = 0
    writes: int = 0
    _watchpoints: dict[int, list[WatchCallback]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.size < 1:
            raise MemoryError_(f"memory size must be >= 1, got {self.size}")
        self.data = bytearray(self.size)

    # -- access checks ---------------------------------------------------

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryError_(
                f"access of {width} bytes at {address:#x} outside "
                f"[0, {self.size:#x})"
            )
        if width > 1 and address % width != 0:
            raise MemoryError_(
                f"misaligned {width}-byte access at {address:#x}"
            )

    # -- scalar accessors --------------------------------------------------

    def read_u8(self, address: int) -> int:
        self._check(address, 1)
        self.reads += 1
        return self.data[address]

    def write_u8(self, address: int, value: int) -> None:
        self._check(address, 1)
        if not 0 <= value < 2**8:
            raise MemoryError_(f"value {value} not a u8")
        self._store(address, 1, value)

    def read_u16(self, address: int) -> int:
        self._check(address, 2)
        self.reads += 1
        return int.from_bytes(self.data[address : address + 2], "little")

    def write_u16(self, address: int, value: int) -> None:
        self._check(address, 2)
        if not 0 <= value < 2**16:
            raise MemoryError_(f"value {value} not a u16")
        self._store(address, 2, value)

    def read_u32(self, address: int) -> int:
        self._check(address, 4)
        self.reads += 1
        return int.from_bytes(self.data[address : address + 4], "little")

    def write_u32(self, address: int, value: int) -> None:
        self._check(address, 4)
        if not 0 <= value < 2**32:
            raise MemoryError_(f"value {value} not a u32")
        self._store(address, 4, value)

    def _store(self, address: int, width: int, value: int) -> None:
        old = int.from_bytes(self.data[address : address + width], "little")
        self.data[address : address + width] = value.to_bytes(width, "little")
        self.writes += 1
        for watched in range(address, address + width):
            for callback in self._watchpoints.get(watched, ()):  # fire once
                callback(address, old, value)
                break

    # -- block accessors ---------------------------------------------------

    def read_block(self, address: int, length: int) -> bytes:
        if length < 0:
            raise MemoryError_(f"negative block length {length}")
        self._check(address, 1)
        if address + length > self.size:
            raise MemoryError_(
                f"block read of {length} bytes at {address:#x} overruns memory"
            )
        self.reads += 1
        return bytes(self.data[address : address + length])

    def write_block(self, address: int, payload: bytes) -> None:
        self._check(address, 1)
        if address + len(payload) > self.size:
            raise MemoryError_(
                f"block write of {len(payload)} bytes at {address:#x} "
                f"overruns memory"
            )
        self.data[address : address + len(payload)] = payload
        self.writes += 1

    # -- watchpoints ---------------------------------------------------------

    def watch(self, address: int, callback: WatchCallback) -> None:
        """Invoke ``callback(address, old, new)`` on writes touching
        ``address``."""
        self._check(address, 1)
        self._watchpoints.setdefault(address, []).append(callback)

    def unwatch(self, address: int) -> None:
        self._watchpoints.pop(address, None)

    def clear(self) -> None:
        """Zero the whole memory (power-on reset)."""
        self.data = bytearray(self.size)
