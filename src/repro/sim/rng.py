"""Named deterministic random streams.

Every stochastic component (pattern sampler, merger, scheduler noise,
workload compute jitter) draws from its own named substream derived from
one master seed, so changing how often one component draws never shifts
another component's sequence — a prerequisite for the bug detector's
"reproduce the bug" promise.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


@dataclass
class RngStreams:
    """Factory of independent :class:`random.Random` streams."""

    master_seed: int
    _streams: dict[str, random.Random] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The substream seed is derived by hashing ``(master_seed, name)``
        so streams are independent and stable across runs and platforms
        (Python's ``hash()`` is salted per-process; ``hashlib`` is not).
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory (e.g. one per test run in a sweep)."""
        digest = hashlib.sha256(f"{self.master_seed}/{name}".encode()).digest()
        return RngStreams(master_seed=int.from_bytes(digest[:8], "big"))

    def fresh_seed(self, name: str) -> int:
        """A stable integer seed for components that build their own RNG."""
        digest = hashlib.sha256(
            f"{self.master_seed}#{name}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")
