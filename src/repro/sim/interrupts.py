"""Interrupt lines between the two cores.

The paper lists "sending events by triggering interrupts" as the second
standard inter-processor mechanism (besides polling shared memory).  An
:class:`InterruptLine` is a named, maskable, level-ish flag with attached
handlers; the :class:`InterruptController` groups a core's lines and
dispatches pending ones when the core takes an interrupt window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

Handler = Callable[[], None]


@dataclass
class InterruptLine:
    """One interrupt line with pending/masked state and handlers."""

    name: str
    pending: int = 0
    masked: bool = False
    raised_total: int = 0
    handled_total: int = 0
    _handlers: list[Handler] = field(default_factory=list, repr=False)

    def connect(self, handler: Handler) -> None:
        """Attach a handler invoked when the line is serviced."""
        self._handlers.append(handler)

    def raise_(self) -> None:
        """Assert the line (named with an underscore: ``raise`` is a
        keyword)."""
        self.pending += 1
        self.raised_total += 1

    def service(self) -> bool:
        """Run handlers for one pending assertion; returns ``True`` if
        something was serviced."""
        if self.masked or self.pending == 0:
            return False
        self.pending -= 1
        self.handled_total += 1
        for handler in self._handlers:
            handler()
        return True


class InterruptController:
    """Per-core set of interrupt lines with priority dispatch.

    Lines are serviced in registration order (earlier = higher priority),
    matching simple embedded interrupt controllers.
    """

    def __init__(self) -> None:
        self._lines: dict[str, InterruptLine] = {}

    def add_line(self, name: str) -> InterruptLine:
        if name in self._lines:
            raise SimulationError(f"interrupt line {name!r} already exists")
        line = InterruptLine(name=name)
        self._lines[name] = line
        return line

    def line(self, name: str) -> InterruptLine:
        try:
            return self._lines[name]
        except KeyError:
            raise SimulationError(f"no interrupt line {name!r}") from None

    def pending_lines(self) -> list[str]:
        return [
            name
            for name, line in self._lines.items()
            if line.pending and not line.masked
        ]

    def dispatch_one(self) -> str | None:
        """Service the highest-priority pending line, if any.

        Returns the serviced line's name, or ``None`` when nothing was
        pending.
        """
        for name, line in self._lines.items():
            if line.service():
                return name
        return None

    def dispatch_all(self, budget: int = 64) -> int:
        """Service pending lines until quiet or ``budget`` dispatches.

        The budget guards against handler loops that re-raise their own
        line forever.
        """
        count = 0
        while count < budget:
            if self.dispatch_one() is None:
                return count
            count += 1
        raise SimulationError(
            f"interrupt storm: more than {budget} dispatches in one window"
        )
