"""Hardware mailboxes for inter-core messaging.

The OMAP5912 gives software four mailbox registers for ARM<->DSP event
exchange; the pCore Bridge builds its command/reply protocol on top of
them.  A :class:`Mailbox` here is a bounded FIFO of small messages with a
configurable overflow policy; a :class:`MailboxBank` groups four of them
and assigns directions the way the bridge uses them (two per direction:
command and reply channels).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MailboxError


class OverflowPolicy(enum.Enum):
    """What a full mailbox does with a new message."""

    #: Refuse the post; the sender sees ``False`` and may retry later.
    REJECT = "reject"
    #: Silently drop the new message (models lossy interrupt coalescing).
    DROP = "drop"
    #: Raise :class:`MailboxError`; useful in tests to catch overruns.
    RAISE = "raise"


@dataclass(frozen=True)
class MailboxMessage:
    """One word-sized message plus an optional out-of-band payload.

    Real mailboxes carry a single word; larger data travels through
    shared memory and the word is a descriptor.  ``payload`` models the
    descriptor's target without forcing every test to serialise bytes.
    """

    word: int
    payload: object | None = None
    sent_at: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.word < 2**32:
            raise MailboxError(f"mailbox word {self.word} not a u32")


@dataclass
class Mailbox:
    """A bounded FIFO mailbox.

    Attributes
    ----------
    name:
        Identifier used in traces (e.g. ``"arm2dsp_cmd"``).
    capacity:
        Maximum queued messages; the OMAP's hardware FIFO depth is tiny,
        so the default is 4.
    policy:
        Overflow behaviour (see :class:`OverflowPolicy`).
    """

    name: str
    capacity: int = 4
    policy: OverflowPolicy = OverflowPolicy.REJECT
    _queue: deque[MailboxMessage] = field(default_factory=deque, repr=False)
    posted: int = 0
    dropped: int = 0
    delivered: int = 0
    high_watermark: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise MailboxError(f"capacity must be >= 1, got {self.capacity}")

    def post(self, message: MailboxMessage) -> bool:
        """Enqueue a message; returns ``False`` if rejected when full."""
        if len(self._queue) >= self.capacity:
            if self.policy is OverflowPolicy.RAISE:
                raise MailboxError(f"mailbox {self.name} overflow")
            self.dropped += 1
            if self.policy is OverflowPolicy.DROP:
                return True  # sender believes it succeeded: lossy channel
            return False
        self._queue.append(message)
        self.posted += 1
        self.high_watermark = max(self.high_watermark, len(self._queue))
        return True

    def poll(self) -> MailboxMessage | None:
        """Dequeue the oldest message, or ``None`` when empty.

        Polling is how the slave side consumes commands; the paper notes
        "processors polling events through shared memory" as one of the
        two common mechanisms.
        """
        if not self._queue:
            return None
        self.delivered += 1
        return self._queue.popleft()

    def peek(self) -> MailboxMessage | None:
        """Look at the head message without consuming it."""
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def drain(self) -> Iterator[MailboxMessage]:
        """Consume and yield every queued message (used at shutdown)."""
        while self._queue:
            self.delivered += 1
            yield self._queue.popleft()


#: Conventional roles of the four OMAP mailboxes as the bridge uses them.
DEFAULT_MAILBOX_ROLES = (
    "arm2dsp_cmd",
    "arm2dsp_data",
    "dsp2arm_reply",
    "dsp2arm_event",
)


@dataclass
class MailboxBank:
    """The four-mailbox bank of the OMAP5912."""

    mailboxes: dict[str, Mailbox]

    @classmethod
    def omap5912(
        cls,
        capacity: int = 4,
        policy: OverflowPolicy = OverflowPolicy.REJECT,
    ) -> "MailboxBank":
        """Build the bank with the conventional four roles."""
        return cls(
            mailboxes={
                role: Mailbox(name=role, capacity=capacity, policy=policy)
                for role in DEFAULT_MAILBOX_ROLES
            }
        )

    def __getitem__(self, role: str) -> Mailbox:
        try:
            return self.mailboxes[role]
        except KeyError:
            raise MailboxError(f"no mailbox with role {role!r}") from None

    def roles(self) -> list[str]:
        return list(self.mailboxes)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-mailbox counters, for the trace dump and tests."""
        return {
            role: {
                "posted": box.posted,
                "delivered": box.delivered,
                "dropped": box.dropped,
                "queued": len(box),
                "high_watermark": box.high_watermark,
            }
            for role, box in self.mailboxes.items()
        }
