"""The assembled dual-core system-on-chip.

:class:`DualCoreSoC` wires together two stepped cores, the four-mailbox
bank, shared SRAM, per-core interrupt controllers, a timed-event
scheduler and a tracer.  Its :meth:`DualCoreSoC.step` advances simulated
time by one tick: each core gets ``steps_per_tick`` scheduling steps,
then due timed events fire.  Because every step is an explicit call,
any interleaving of master and slave activity is a deterministic,
replayable schedule — the property pTest's merger exploits.

Defaults model the OMAP5912 OSK of the paper's evaluation: both cores at
192 MHz (1:1 step ratio), four mailboxes, 250 KB shared SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import SimulationError
from repro.sim.events import EventScheduler, SimClock
from repro.sim.interrupts import InterruptController
from repro.sim.mailbox import MailboxBank, OverflowPolicy
from repro.sim.memory import OMAP5912_SRAM_BYTES, SharedMemory
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class Core(Protocol):
    """What the SoC needs from a core model."""

    name: str

    def step(self, now: int) -> bool:
        """Perform one scheduling step at time ``now``.

        Returns ``True`` if the core did useful work (ran a task or
        handled a message), ``False`` if it idled.
        """
        ...  # pragma: no cover - protocol

    def is_halted(self) -> bool:
        """Whether the core has stopped (e.g. kernel panic)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SoCConfig:
    """Static platform parameters (OMAP5912 OSK defaults)."""

    master_name: str = "arm926"
    slave_name: str = "c55x"
    master_clock_mhz: int = 192
    slave_clock_mhz: int = 192
    sram_bytes: int = OMAP5912_SRAM_BYTES
    mailbox_capacity: int = 4
    mailbox_policy: OverflowPolicy = OverflowPolicy.REJECT
    #: Scheduling steps each core takes per simulated tick.  With equal
    #: clocks this is (1, 1); a 2:1 ratio models a faster master, etc.
    master_steps_per_tick: int = 1
    slave_steps_per_tick: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.master_steps_per_tick < 1 or self.slave_steps_per_tick < 1:
            raise SimulationError("steps_per_tick values must be >= 1")


@dataclass
class DualCoreSoC:
    """The simulated platform: two cores plus shared fabric."""

    config: SoCConfig = field(default_factory=SoCConfig)
    clock: SimClock = field(default_factory=SimClock)
    tracer: Tracer = field(default_factory=Tracer)
    master: Core | None = None
    slave: Core | None = None
    scheduler: EventScheduler = field(init=False)
    mailboxes: MailboxBank = field(init=False)
    sram: SharedMemory = field(init=False)
    master_irq: InterruptController = field(default_factory=InterruptController)
    slave_irq: InterruptController = field(default_factory=InterruptController)
    rng: RngStreams = field(init=False)
    ticks_run: int = 0

    def __post_init__(self) -> None:
        self.scheduler = EventScheduler(self.clock)
        self.mailboxes = MailboxBank.omap5912(
            capacity=self.config.mailbox_capacity,
            policy=self.config.mailbox_policy,
        )
        self.sram = SharedMemory(size=self.config.sram_bytes)
        self.rng = RngStreams(master_seed=self.config.seed)

    def attach(self, master: Core, slave: Core) -> None:
        """Install the two core models (must happen before stepping)."""
        self.master = master
        self.slave = slave

    @property
    def now(self) -> int:
        return self.clock.now

    def step(self) -> bool:
        """Advance one tick; returns ``True`` if either core did work."""
        if self.master is None or self.slave is None:
            raise SimulationError("cores not attached; call attach() first")
        worked = False
        for _ in range(self.config.master_steps_per_tick):
            if not self.master.is_halted():
                worked |= self.master.step(self.clock.now)
        for _ in range(self.config.slave_steps_per_tick):
            if not self.slave.is_halted():
                worked |= self.slave.step(self.clock.now)
        self.clock.advance(1)
        self.scheduler.fire_due()
        self.ticks_run += 1
        return worked

    def run(
        self,
        max_ticks: int,
        until: Callable[["DualCoreSoC"], bool] | None = None,
        idle_limit: int | None = None,
    ) -> int:
        """Step the SoC until a predicate holds or budgets run out.

        Parameters
        ----------
        max_ticks:
            Hard tick budget for this call.
        until:
            Optional stop predicate evaluated after every tick.
        idle_limit:
            Stop after this many *consecutive* ticks in which neither
            core did work and no events are pending (system quiescent).

        Returns the number of ticks executed.
        """
        if max_ticks < 0:
            raise SimulationError(f"negative tick budget {max_ticks}")
        idle_run = 0
        for executed in range(1, max_ticks + 1):
            worked = self.step()
            if until is not None and until(self):
                return executed
            if worked or self.scheduler.pending():
                idle_run = 0
            else:
                idle_run += 1
                if idle_limit is not None and idle_run >= idle_limit:
                    return executed
        return max_ticks

    def both_halted(self) -> bool:
        if self.master is None or self.slave is None:
            return False
        return self.master.is_halted() and self.slave.is_halted()
