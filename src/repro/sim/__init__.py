"""Discrete-event model of an OMAP5912-like dual-core SoC.

The paper ran pTest on a TI OMAP5912 (ARM926 master + C55x DSP slave,
four hardware mailboxes, 250 KB shared internal SRAM).  We do not have
that hardware; this package models the parts of it pTest actually
depends on:

* a global simulated clock and timed-event scheduler
  (:mod:`repro.sim.events`),
* bounded hardware mailboxes for inter-core events
  (:mod:`repro.sim.mailbox`),
* shared on-chip memory with bounds/alignment checking
  (:mod:`repro.sim.memory`),
* interrupt lines (:mod:`repro.sim.interrupts`),
* the assembled SoC with two stepped cores (:mod:`repro.sim.soc`),
* structured run tracing (:mod:`repro.sim.trace`), and
* named deterministic RNG streams (:mod:`repro.sim.rng`).

Everything is deterministic under a seed: concurrency is modelled as an
explicit, replayable interleaving of core steps, which is exactly the
dimension pTest perturbs.
"""

from repro.sim.events import EventScheduler, ScheduledEvent, SimClock
from repro.sim.interrupts import InterruptController, InterruptLine
from repro.sim.mailbox import Mailbox, MailboxBank, MailboxMessage, OverflowPolicy
from repro.sim.memory import SharedMemory
from repro.sim.rng import RngStreams
from repro.sim.soc import Core, DualCoreSoC, SoCConfig
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "EventScheduler",
    "ScheduledEvent",
    "SimClock",
    "InterruptController",
    "InterruptLine",
    "Mailbox",
    "MailboxBank",
    "MailboxMessage",
    "OverflowPolicy",
    "SharedMemory",
    "RngStreams",
    "Core",
    "DualCoreSoC",
    "SoCConfig",
    "TraceEvent",
    "Tracer",
]
