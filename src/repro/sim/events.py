"""Simulated clock and timed-event scheduler.

Time is a dimensionless integer tick count.  One tick corresponds to one
scheduling step of a core; the OMAP's two cores both ran at 192 MHz, so a
1:1 step ratio between master and slave is the default in
:mod:`repro.sim.soc`.

:class:`EventScheduler` is a classic heap-based calendar queue used for
timeouts (bug-detector heartbeat windows, bridge reply deadlines).  Event
callbacks run when the clock passes their due tick; events can be
cancelled; ties break by insertion order so runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass
class SimClock:
    """Monotonic integer simulation clock."""

    now: int = 0

    def advance(self, ticks: int = 1) -> int:
        """Move time forward; negative advances are rejected."""
        if ticks < 0:
            raise SimulationError(f"cannot advance clock by {ticks}")
        self.now += ticks
        return self.now


@dataclass(order=True)
class ScheduledEvent:
    """One pending event in the calendar queue.

    Ordering is ``(due, sequence)`` so simultaneous events fire in
    insertion order, keeping runs deterministic.
    """

    due: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when it comes due."""
        self.cancelled = True


class EventScheduler:
    """Heap-based timed-event dispatcher driven by a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def schedule_at(
        self, due: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run when the clock reaches ``due``."""
        if due < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {due}; clock already at "
                f"{self.clock.now}"
            )
        event = ScheduledEvent(
            due=due, sequence=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label=label)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def fire_due(self) -> int:
        """Run every event due at or before the current time.

        Returns the number of callbacks executed.  Callbacks may schedule
        further events; newly due ones fire in the same call.
        """
        fired = 0
        while self._heap and self._heap[0].due <= self.clock.now:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.callback()
            fired += 1
        return fired

    def tick(self, ticks: int = 1) -> int:
        """Advance the clock tick-by-tick, firing events as they come due.

        Returns the number of callbacks executed across all ticks.
        """
        fired = 0
        for _ in range(ticks):
            self.clock.advance(1)
            fired += self.fire_due()
        return fired

    def next_due(self) -> int | None:
        """Due time of the earliest live event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].due if self._heap else None

    def run_until_idle(self, max_ticks: int = 1_000_000) -> int:
        """Jump the clock from event to event until the queue empties.

        Raises :class:`SimulationError` if more than ``max_ticks`` elapse,
        which usually indicates an event loop re-arming itself forever.
        """
        start = self.clock.now
        while True:
            due = self.next_due()
            if due is None:
                return self.clock.now - start
            if due - start > max_ticks:
                raise SimulationError(
                    f"event queue did not drain within {max_ticks} ticks"
                )
            self.clock.advance(due - self.clock.now)
            self.fire_due()
