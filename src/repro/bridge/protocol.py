"""Wire protocol of the modelled pCore Bridge.

A service request is encoded into a single u32 mailbox word::

    bits 28-31  service opcode (1..6)
    bits 18-27  sequence id (mod 1024)
    bits 10-17  target tid + 1 (0 = no target)
    bits  0-9   priority + 1 (0 = no priority)

Program names don't fit in a word; like real descriptor-passing
middleware, the program name (and the issuer/sequence metadata) rides in
a :class:`CommandFrame` written to a shared-memory slot, and the word
carries enough to find it.  The codec is exercised by property tests:
``decode(encode(x)) == x`` for every representable request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BridgeError
from repro.pcore.services import (
    ServiceCode,
    ServiceRequest,
    ServiceResult,
    ServiceStatus,
)

_OPCODES: dict[ServiceCode, int] = {
    ServiceCode.TC: 1,
    ServiceCode.TD: 2,
    ServiceCode.TS: 3,
    ServiceCode.TR: 4,
    ServiceCode.TCH: 5,
    ServiceCode.TY: 6,
}
_CODES = {value: key for key, value in _OPCODES.items()}

_STATUS_CODES: dict[ServiceStatus, int] = {
    status: index for index, status in enumerate(ServiceStatus)
}
_STATUS_BY_CODE = {value: key for key, value in _STATUS_CODES.items()}

#: Field widths of the request word.
REQUEST_SEQ_BITS = 10
MAX_REQUEST_SEQ = 1 << REQUEST_SEQ_BITS
MAX_TID = (1 << 8) - 2
MAX_PRIORITY = (1 << 10) - 2

#: Field width of the reply word's sequence id.
MAX_SEQ = 1 << 12


@dataclass(frozen=True)
class CommandFrame:
    """Out-of-band request metadata carried via shared memory."""

    sequence: int
    program: str | None
    issuer: int | None


def encode_request(request: ServiceRequest, sequence: int) -> tuple[int, CommandFrame]:
    """Encode a request into (mailbox word, descriptor frame)."""
    if request.target is not None and not 0 <= request.target <= MAX_TID:
        raise BridgeError(f"target {request.target} not encodable")
    if request.priority is not None and not 0 <= request.priority <= MAX_PRIORITY:
        raise BridgeError(f"priority {request.priority} not encodable")
    if sequence < 0:
        raise BridgeError(f"negative sequence {sequence}")
    word = (
        (_OPCODES[request.service] << 28)
        | ((sequence % MAX_REQUEST_SEQ) << 18)
        | (((request.target + 1) if request.target is not None else 0) << 10)
        | ((request.priority + 1) if request.priority is not None else 0)
    )
    return word, CommandFrame(
        sequence=sequence, program=request.program, issuer=request.issuer
    )


def decode_request(word: int, frame: CommandFrame) -> ServiceRequest:
    """Inverse of :func:`encode_request`."""
    opcode = (word >> 28) & 0xF
    if opcode not in _CODES:
        raise BridgeError(f"unknown service opcode {opcode}")
    seq_low = (word >> 18) & (MAX_REQUEST_SEQ - 1)
    if frame.sequence % MAX_REQUEST_SEQ != seq_low:
        raise BridgeError(
            f"frame sequence {frame.sequence} does not match word "
            f"sequence {seq_low}"
        )
    target_raw = (word >> 10) & 0xFF
    priority_raw = word & 0x3FF
    return ServiceRequest(
        service=_CODES[opcode],
        target=(target_raw - 1) if target_raw else None,
        priority=(priority_raw - 1) if priority_raw else None,
        program=frame.program,
        issuer=frame.issuer,
        sequence=frame.sequence,
    )


def encode_result(result: ServiceResult, sequence: int) -> int:
    """Encode a reply into a u32 word::

        bits 24-31  status code
        bits 12-23  sequence id (mod 4096)
        bits  0-11  value + 1 (0 = no value), truncated
    """
    status_code = _STATUS_CODES[result.status]
    value = result.value
    if value is not None and not 0 <= value < (1 << 12) - 1:
        value = (1 << 12) - 2  # clamp out-of-range tids; detail in payload
    return (
        (status_code << 24)
        | ((sequence % MAX_SEQ) << 12)
        | ((value + 1) if value is not None else 0)
    )


def decode_result(word: int) -> tuple[ServiceStatus, int, int | None]:
    """Decode a reply word into (status, sequence mod 4096, value)."""
    status_code = (word >> 24) & 0xFF
    if status_code not in _STATUS_BY_CODE:
        raise BridgeError(f"unknown status code {status_code}")
    sequence = (word >> 12) & 0xFFF
    value_raw = word & 0xFFF
    return (
        _STATUS_BY_CODE[status_code],
        sequence,
        (value_raw - 1) if value_raw else None,
    )
