"""The pCore Bridge: command/reply middleware over the mailbox bank.

Models the middleware of the paper's reference [16] ("Enabling streaming
remoting on embedded dual-core processors") at the level pTest uses it:
the master posts framed service commands into the ``arm2dsp_cmd``
mailbox, the slave polls them into the kernel, and replies travel back
through ``dsp2arm_reply``.  Frames are genuinely encoded into u32 words
plus a shared-memory descriptor so mailbox capacity and memory pressure
stay honest.
"""

from repro.bridge.protocol import (
    CommandFrame,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
)
from repro.bridge.bridge import BridgeMaster, SlaveBridgeAdapter, build_bridge

__all__ = [
    "CommandFrame",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
    "BridgeMaster",
    "SlaveBridgeAdapter",
    "build_bridge",
]
