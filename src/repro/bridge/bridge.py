"""Master and slave endpoints of the bridge.

:class:`BridgeMaster` lives on the master core: it assigns sequence ids,
encodes requests, posts them to the command mailbox and collects replies
from the reply mailbox.  :class:`SlaveBridgeAdapter` wraps the pCore
kernel into a :class:`repro.sim.soc.Core`: each step it moves arrived
commands into the kernel inbox, steps the kernel, and flushes kernel
replies back through the reply mailbox (retrying when that mailbox is
full).

When the slave kernel panics, outstanding and future commands never get
replies — the silence the bug detector's crash monitor keys on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import BridgeError
from repro.bridge.protocol import (
    CommandFrame,
    decode_request,
    encode_request,
    encode_result,
)
from repro.pcore.kernel import PCoreKernel
from repro.pcore.services import ServiceRequest, ServiceResult
from repro.sim.mailbox import Mailbox, MailboxBank, MailboxMessage
from repro.sim.trace import CATEGORY_COMMAND, Tracer


@dataclass
class BridgeMaster:
    """Master-side endpoint: issue requests, pump replies."""

    command_box: Mailbox
    reply_box: Mailbox
    tracer: Tracer | None = None
    now: int = 0
    _next_seq: int = 1
    issued: int = 0
    #: Replies received, by sequence id.
    replies: dict[int, ServiceResult] = field(default_factory=dict)
    #: Sequence ids issued but not yet answered.
    outstanding: dict[int, ServiceRequest] = field(default_factory=dict)
    #: Issue time of each outstanding sequence id (crash detection).
    issue_times: dict[int, int] = field(default_factory=dict)

    def issue(self, request: ServiceRequest) -> int | None:
        """Encode and post ``request``; returns its sequence id, or
        ``None`` when the command mailbox is full (caller retries)."""
        sequence = self._next_seq
        word, frame = encode_request(request, sequence)
        message = MailboxMessage(word=word, payload=frame, sent_at=self.now)
        if not self.command_box.post(message):
            return None
        self._next_seq += 1
        self.issued += 1
        self.outstanding[sequence] = request
        self.issue_times[sequence] = self.now
        if self.tracer is not None:
            self.tracer.record(
                self.now,
                "bridge",
                CATEGORY_COMMAND,
                event="issue",
                seq=sequence,
                service=request.service.name,
                target=request.target,
            )
        return sequence

    def pump(self) -> list[ServiceResult]:
        """Drain the reply mailbox; returns newly arrived results."""
        arrived: list[ServiceResult] = []
        while True:
            message = self.reply_box.poll()
            if message is None:
                return arrived
            result = message.payload
            if not isinstance(result, ServiceResult):
                raise BridgeError("reply mailbox carried a non-result payload")
            sequence = result.request.sequence
            if sequence is None:
                raise BridgeError("reply without a sequence id")
            self.replies[sequence] = result
            self.outstanding.pop(sequence, None)
            self.issue_times.pop(sequence, None)
            arrived.append(result)

    def reply_for(self, sequence: int) -> ServiceResult | None:
        return self.replies.get(sequence)

    def oldest_outstanding_age(self) -> int | None:
        """Age in ticks of the oldest unanswered command, or ``None``."""
        if not self.issue_times:
            return None
        return self.now - min(self.issue_times.values())


@dataclass
class SlaveBridgeAdapter:
    """Wraps the kernel into a Core, pumping mailboxes around it."""

    kernel: PCoreKernel
    command_box: Mailbox
    reply_box: Mailbox
    name: str = "dsp"
    #: Commands moved from the mailbox per step (poll burst).
    poll_burst: int = 4
    #: Kernel software-queue depth: the adapter stops polling while the
    #: kernel inbox holds this many requests, so backpressure reaches
    #: the hardware FIFO instead of hiding in an unbounded list.
    inbox_limit: int = 2
    #: Replies the reply mailbox refused; retried next step.
    _reply_backlog: deque[ServiceResult] = field(default_factory=deque)
    delivered: int = 0
    now: int = 0

    def __post_init__(self) -> None:
        self.kernel.reply_handler = self._on_kernel_reply

    def is_halted(self) -> bool:
        return self.kernel.is_halted()

    def step(self, now: int) -> bool:
        self.now = now
        worked = self._flush_replies()
        worked |= self._poll_commands()
        worked |= self.kernel.step(now)
        return worked

    # -- internals -----------------------------------------------------------

    def _poll_commands(self) -> bool:
        moved = False
        for _ in range(self.poll_burst):
            if self.kernel.is_halted():
                break  # a crashed kernel stops polling: commands pile up
            if len(self.kernel.inbox) >= self.inbox_limit:
                break  # software queue full: leave commands in the FIFO
            message = self.command_box.poll()
            if message is None:
                break
            frame = message.payload
            if not isinstance(frame, CommandFrame):
                raise BridgeError("command mailbox carried a non-frame payload")
            request = decode_request(message.word, frame)
            self.kernel.submit(request)
            self.delivered += 1
            moved = True
        return moved

    def _on_kernel_reply(self, result: ServiceResult) -> None:
        self._reply_backlog.append(result)

    def _flush_replies(self) -> bool:
        flushed = False
        while self._reply_backlog:
            result = self._reply_backlog[0]
            word = encode_result(result, result.request.sequence or 0)
            message = MailboxMessage(word=word, payload=result, sent_at=self.now)
            if not self.reply_box.post(message):
                break
            self._reply_backlog.popleft()
            flushed = True
        return flushed


def build_bridge(
    mailboxes: MailboxBank,
    kernel: PCoreKernel,
    tracer: Tracer | None = None,
) -> tuple[BridgeMaster, SlaveBridgeAdapter]:
    """Wire both endpoints over the standard mailbox roles."""
    master = BridgeMaster(
        command_box=mailboxes["arm2dsp_cmd"],
        reply_box=mailboxes["dsp2arm_reply"],
        tracer=tracer,
    )
    slave = SlaveBridgeAdapter(
        kernel=kernel,
        command_box=mailboxes["arm2dsp_cmd"],
        reply_box=mailboxes["dsp2arm_reply"],
    )
    return master, slave
