"""The master core model: a time-shared thread executor.

Implements :class:`repro.sim.soc.Core`.  Each step: pump bridge replies
(waking WAITING threads), then run one operation of the scheduled
thread.  The Fig. 1 example and custom experiments build directly on
this; pTest's committer is a different, pattern-driven master core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.master.scheduler import TimeSharingScheduler
from repro.master.thread import (
    Delay,
    Done,
    IssueService,
    MasterThread,
    ReadShared,
    ThreadState,
    WaitReply,
    WriteShared,
)
from repro.sim.memory import SharedMemory
from repro.sim.trace import CATEGORY_MASTER, Tracer


@dataclass
class MasterSystem:
    """Runs master threads against a bridge-master endpoint."""

    bridge: object  # BridgeMaster; typed loosely to avoid an import cycle
    shared_memory: SharedMemory | None = None
    scheduler: TimeSharingScheduler = field(default_factory=TimeSharingScheduler)
    tracer: Tracer | None = None
    name: str = "linux"
    now: int = 0
    steps: int = 0
    _halted: bool = False

    def add_thread(self, thread: MasterThread) -> None:
        thread.start()
        self.scheduler.add(thread)

    def is_halted(self) -> bool:
        return self._halted or self.scheduler.all_done()

    def halt(self) -> None:
        self._halted = True

    # -- Core protocol ------------------------------------------------------

    def step(self, now: int) -> bool:
        self.now = now
        self.steps += 1
        self.bridge.now = now
        self._pump_replies()
        thread = self.scheduler.pick()
        if thread is None:
            return False
        self._run_thread_step(thread)
        return True

    # -- internals -----------------------------------------------------------

    def _pump_replies(self) -> None:
        for result in self.bridge.pump():
            for thread in self.scheduler.threads:
                if (
                    thread.state is ThreadState.WAITING
                    and thread.outstanding_seq is not None
                    and self.bridge.reply_for(thread.outstanding_seq) is result
                ):
                    thread.replies.append(result)
                    thread.pending_send = result
                    thread.outstanding_seq = None
                    thread.state = ThreadState.READY
        # Threads whose reply arrived in an earlier pump (before they
        # started waiting) unblock here too.
        for thread in self.scheduler.threads:
            if (
                thread.state is ThreadState.WAITING
                and thread.outstanding_seq is not None
            ):
                result = self.bridge.reply_for(thread.outstanding_seq)
                if result is not None:
                    thread.replies.append(result)
                    thread.pending_send = result
                    thread.outstanding_seq = None
                    thread.state = ThreadState.READY

    def _run_thread_step(self, thread: MasterThread) -> None:
        thread.steps_run += 1
        thread.last_progress = self.now
        if thread.delay_remaining > 0:
            thread.delay_remaining -= 1
            return
        if thread.stalled_op is not None:
            op = thread.stalled_op
            thread.stalled_op = None
            thread.state = ThreadState.READY
            self._apply_op(thread, op)
            return
        if thread.program is None:
            raise SimulationError(f"thread {thread.name} not started")
        try:
            send_value = thread.pending_send
            thread.pending_send = None
            op = thread.program.send(send_value)
        except StopIteration:
            thread.state = ThreadState.DONE
            self.scheduler.notify_blocked(thread)
            return
        self._apply_op(thread, op)

    def _apply_op(self, thread: MasterThread, op: object) -> None:
        if isinstance(op, IssueService):
            seq = self.bridge.issue(op.request)
            if seq is None:  # command mailbox full: retry next step
                thread.stalled_op = op
                thread.state = ThreadState.STALLED
                return
            thread.issued += 1
            thread.outstanding_seq = seq
            thread.pending_send = seq
            self._trace(
                thread, event="issue", service=op.request.service.name, seq=seq
            )
        elif isinstance(op, WaitReply):
            if thread.outstanding_seq is None:
                raise SimulationError(
                    f"thread {thread.name} waits with no outstanding request"
                )
            result = self.bridge.reply_for(thread.outstanding_seq)
            if result is not None:
                thread.replies.append(result)
                thread.pending_send = result
                thread.outstanding_seq = None
                return
            thread.state = ThreadState.WAITING
            self.scheduler.notify_blocked(thread)
        elif isinstance(op, Delay):
            thread.delay_remaining = op.ticks - 1  # this step counts
        elif isinstance(op, ReadShared):
            if self.shared_memory is None:
                raise SimulationError("no shared memory attached")
            thread.pending_send = self.shared_memory.read_u16(op.address)
        elif isinstance(op, WriteShared):
            if self.shared_memory is None:
                raise SimulationError("no shared memory attached")
            self.shared_memory.write_u16(op.address, op.value)
        elif isinstance(op, Done):
            thread.state = ThreadState.DONE
            self.scheduler.notify_blocked(thread)
        else:
            raise SimulationError(f"unknown master op {type(op).__name__}")

    def _trace(self, thread: MasterThread, **payload: object) -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.now, self.name, CATEGORY_MASTER, thread=thread.name, **payload
            )
