"""Round-robin time-sharing over master threads.

Linux on the ARM core time-shares its threads; the model is a quantum
round-robin: the current thread runs ``quantum`` steps (or until it
blocks), then the next runnable thread takes over.  WAITING threads are
skipped until their reply arrives; STALLED threads (mailbox full) stay
runnable so they can retry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.master.thread import MasterThread, ThreadState


@dataclass
class TimeSharingScheduler:
    """Quantum round-robin over a thread list."""

    quantum: int = 4
    threads: list[MasterThread] = field(default_factory=list)
    _cursor: int = 0
    _slice_used: int = 0
    context_switches: int = 0

    def __post_init__(self) -> None:
        if self.quantum < 1:
            raise SimulationError(f"quantum must be >= 1, got {self.quantum}")

    def add(self, thread: MasterThread) -> None:
        self.threads.append(thread)

    def runnable_threads(self) -> list[MasterThread]:
        return [thread for thread in self.threads if thread.runnable]

    def all_done(self) -> bool:
        return all(thread.done for thread in self.threads)

    def _advance_cursor(self) -> None:
        if self.threads:
            self._cursor = (self._cursor + 1) % len(self.threads)
        self._slice_used = 0
        self.context_switches += 1

    def pick(self) -> MasterThread | None:
        """Choose the thread to run this step (or ``None`` if all
        blocked/done).  Quantum exhaustion rotates the cursor."""
        if not self.threads:
            return None
        if self._slice_used >= self.quantum:
            self._advance_cursor()
        for _ in range(len(self.threads)):
            thread = self.threads[self._cursor]
            if thread.runnable:
                self._slice_used += 1
                return thread
            self._advance_cursor()
        return None

    def notify_blocked(self, thread: MasterThread) -> None:
        """The current thread blocked: rotate away from it."""
        if self.threads and self.threads[self._cursor] is thread:
            self._advance_cursor()
