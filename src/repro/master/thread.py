"""Master-side threads and their operations.

A master thread's program is a generator yielding :class:`MasterOp`
values, in the same spirit as slave task programs: every step is an
explicit scheduling point.  The Fig. 1 master processes, for example::

    def m1(ctx):
        yield IssueService(ServiceRequest(ServiceCode.TR, target=1))
        yield WaitReply()
        yield Done()
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.errors import SimulationError
from repro.pcore.services import ServiceRequest, ServiceResult


@dataclass(frozen=True)
class MasterOp:
    """Base class for operations a master thread can yield."""


@dataclass(frozen=True)
class IssueService(MasterOp):
    """Issue a remote service request through the bridge.

    The issued request's sequence id is delivered back into the program
    as the value of the ``yield``.
    """

    request: ServiceRequest


@dataclass(frozen=True)
class WaitReply(MasterOp):
    """Block until the reply to this thread's most recent issue arrives.

    The :class:`~repro.pcore.services.ServiceResult` is sent into the
    program as the value of the ``yield``.
    """


@dataclass(frozen=True)
class Delay(MasterOp):
    """Consume ``ticks`` master scheduling steps doing nothing."""

    ticks: int

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise SimulationError(f"Delay ticks must be >= 1, got {self.ticks}")


@dataclass(frozen=True)
class ReadShared(MasterOp):
    """Read a u16 from shared memory (value sent into the program)."""

    address: int


@dataclass(frozen=True)
class WriteShared(MasterOp):
    """Write a u16 to shared memory."""

    address: int
    value: int


@dataclass(frozen=True)
class Done(MasterOp):
    """Thread finished its work."""


class ThreadState(enum.Enum):
    READY = "ready"
    #: Waiting for a bridge reply.
    WAITING = "waiting"
    #: Waiting for the command mailbox to accept a post.
    STALLED = "stalled"
    DONE = "done"


MasterProgram = Callable[["MasterThread"], Generator[MasterOp, object, None]]


@dataclass
class MasterThread:
    """One time-shared master thread."""

    mtid: int
    name: str
    program_factory: MasterProgram
    state: ThreadState = ThreadState.READY
    program: Generator[MasterOp, object, None] | None = field(
        default=None, repr=False
    )
    #: Remaining delay ticks when executing a Delay op.
    delay_remaining: int = 0
    #: Sequence id of the outstanding request (for WaitReply).
    outstanding_seq: int | None = None
    #: Op deferred because the mailbox was full.
    stalled_op: MasterOp | None = None
    #: Value to send into the generator at the next resume.
    pending_send: object = None
    steps_run: int = 0
    issued: int = 0
    last_progress: int = 0
    #: Results observed by this thread, newest last.
    replies: list[ServiceResult] = field(default_factory=list)

    def start(self) -> None:
        if self.program is None:
            self.program = self.program_factory(self)

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.STALLED)

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE
