"""The master system: Linux-like time-shared threads issuing remote
commands.

On the OMAP5912 the master is Linux on the ARM926; each pCore task is
controlled by a corresponding Linux thread (one-to-one).  This package
models the part pTest relies on: threads scheduled by round-robin
time-sharing whose programs issue remote commands and touch shared
memory (:mod:`repro.master.thread`, :mod:`repro.master.scheduler`,
:mod:`repro.master.system`).

pTest's committer (in :mod:`repro.ptest.committer`) is one specific
master workload; the generic machinery here also runs the Fig. 1 example
processes M1/M2.
"""

from repro.master.thread import (
    Delay,
    Done,
    IssueService,
    MasterOp,
    MasterThread,
    ReadShared,
    ThreadState,
    WaitReply,
    WriteShared,
)
from repro.master.scheduler import TimeSharingScheduler
from repro.master.system import MasterSystem

__all__ = [
    "Delay",
    "Done",
    "IssueService",
    "MasterOp",
    "MasterThread",
    "ReadShared",
    "ThreadState",
    "WaitReply",
    "WriteShared",
    "TimeSharingScheduler",
    "MasterSystem",
]
