"""Command-line interface: ``python -m repro <command>``.

Commands mirror the examples so the tool is usable without writing
Python:

``run``            an adaptive stress test — either a registered
                   scenario by name (``run philosophers -p op=cyclic``)
                   or the explicit (n, s, op, seed) form
``campaign``       sweep a registered scenario over seeds (and an
                   optional parameter grid) through the batched
                   process-pool executor
``adapt``          multi-round adaptive campaign: rounds run on one
                   warm worker pool and a refine policy (grid_zoom,
                   halving, replay, repeat) steers each next round's
                   variants from the previous round's detections
``scenarios``      list the scenario registry with parameter specs

Exit codes: 0 success, 1 a bug was found (``run`` and friends), 2
configuration error, 3 execution-fabric failure (a campaign's worker
pool died or hung unrecoverably — see ``--cell-timeout`` /
``--quarantine``).
``bench``          run the perf hot-path benchmark suite and print the
                   JSON artifact path plus headline speedups
``stress``         test case 1 (GC crash, with --fixed-gc control)
``philosophers``   test case 2 (deadlock, choose --op / --ordered)
``fig1``           the Fig. 1 example (--order good|bad)
``sweep``          detection-rate sweep of a catalogued fault over seeds
``faults``         list the seeded-fault catalogue
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigError, ReproError, WatchdogTimeout
from repro.faults import FAULT_CATALOGUE, build_fault_scenario, fault_names
from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test
from repro.ptest.merger import MERGE_OPS
from repro.workloads.fig1 import run_fig1
from repro.workloads.registry import REGISTRY, build_scenario
from repro.workloads.scenarios import philosophers_case2, stress_case1


def _print_result(result) -> int:
    print(result.summary())
    if result.found_bug:
        print(result.report.describe())
        return 1
    return 0


def _parse_params(pairs: list[str] | None) -> dict[str, str]:
    """``key=value`` strings -> param mapping (registry coerces types)."""
    params: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"malformed parameter {pair!r}; expected key=value"
            )
        params[key] = value
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    explicit_flags = {
        "--patterns/-n": args.patterns,
        "--size/-s": args.size,
        "--op": args.op,
        "--max-ticks": args.max_ticks,
    }
    if args.scenario is not None:
        # The explicit-form flags do not apply to a registered scenario
        # (its parameters travel via --param); reject rather than
        # silently ignore them.
        given = [flag for flag, value in explicit_flags.items() if value is not None]
        if given:
            print(
                f"{', '.join(given)} only apply to the explicit form; "
                f"use --param to parameterise scenario {args.scenario!r} "
                "(see `repro scenarios`)"
            )
            return 2
        try:
            test = build_scenario(
                args.scenario, args.seed, **_parse_params(args.param)
            )
        except ReproError as error:
            # Unknown scenario, bad param, or a builder rejecting an
            # out-of-range value — never exit 1 (that means "bug found").
            print(error)
            return 2
        print(f"scenario: {args.scenario} seed={args.seed}")
        return _print_result(test.run())
    if args.param:
        print("--param requires a scenario name (see `repro scenarios`)")
        return 2
    # Omit flags the user left unset so PTestConfig's own defaults apply.
    overrides = {
        "pattern_count": args.patterns,
        "pattern_size": args.size,
        "op": args.op,
        "max_ticks": args.max_ticks,
    }
    config = PTestConfig(
        seed=args.seed,
        **{key: value for key, value in overrides.items() if value is not None},
    )
    print(f"adaptive test: {config.describe()}")
    return _print_result(run_adaptive_test(config))


def _executor_failure(error: BaseException, quarantine_flag: bool) -> int:
    """One-line diagnosis (never a traceback) for a dead or hung
    execution fabric: exit 3, distinct from "bug found" (1) and config
    errors (2) so scripts can retry or escalate appropriately."""
    print(f"executor failure: {type(error).__name__}: {error}")
    if not quarantine_flag:
        print(
            "hint: rerun with --quarantine to bisect out the failing "
            "cell(s) and complete with partial results"
        )
    return 3


def _print_quarantine(report) -> None:
    """Summarise a run's quarantine accounting.

    Printed whenever quarantine was requested — a clean run states
    "0 of N cells" explicitly rather than staying silent, so partial
    results are never mistaken for complete ones (or vice versa).
    """
    if report is None:
        return
    print(report.describe())
    for cell in report.cells:
        print(f"  quarantined: {cell.describe()}")


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.text_report import render_campaign
    from repro.ptest.campaign import Campaign
    from repro.ptest.pool import close_pool

    campaign = Campaign(
        seeds=tuple(range(args.seeds)),
        workers=args.workers,
        batch_size=args.batch_size,
        keep_results=False,
        cell_timeout=args.cell_timeout,
        quarantine=args.quarantine,
    )
    try:
        fixed = _parse_params(args.param)
        grid = _parse_grid(args.grid)
        if grid:
            campaign.add_grid(args.scenario, args.scenario, grid, **fixed)
        else:
            campaign.add_scenario(args.scenario, args.scenario, **fixed)
    except (ReproError, ValueError) as error:
        # ValueError covers duplicate variant names (e.g. a repeated
        # grid value); ReproError covers registry/param problems.
        print(error)
        return 2
    try:
        rows = campaign.run()
    except WatchdogTimeout as error:
        # Before the (ReproError, ...) -> 2 arm: a hung batch is a
        # fabric failure, not a config mistake.
        return _executor_failure(error, args.quarantine)
    except (BrokenProcessPool, CancelledError) as error:
        return _executor_failure(error, args.quarantine)
    except (ReproError, ValueError) as error:
        # e.g. batch_size < 1, or a builder rejecting a param value at
        # cell-build time — config problems, not found bugs.
        print(error)
        return 2
    finally:
        if not args.keep_pool:
            # Deterministic teardown of this campaign's shared pool
            # only — an embedding caller's other warm pools survive.
            # With --keep-pool even this one stays warm (the atexit
            # hook reaps it eventually).
            close_pool(args.workers)
    print(
        f"campaign: {args.scenario} over {args.seeds} seed(s), "
        f"workers={args.workers}"
        + (f", batch_size={args.batch_size}" if args.batch_size else "")
    )
    print(render_campaign(rows))
    _print_quarantine(campaign.last_quarantine)
    return 0


def _parse_grid(pairs: list[str] | None) -> dict[str, list[str]]:
    """``key=v1,v2,...`` strings -> param grid (registry coerces types)."""
    grid: dict[str, list[str]] = {}
    for pair in pairs or []:
        key, sep, values = pair.partition("=")
        if not sep or not key or not values:
            raise ConfigError(
                f"malformed grid {pair!r}; expected key=v1,v2,..."
            )
        if key in grid:
            raise ConfigError(f"grid parameter {key!r} given more than once")
        grid[key] = values.split(",")
    return grid


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.analysis.text_report import render_campaign
    from repro.ptest.adaptive import POLICIES, AdaptiveCampaign
    from repro.ptest.pipeline import parse_pipeline
    from repro.ptest.pool import close_pool

    if args.pipeline is not None and args.policy is not None:
        print(
            "--policy and --pipeline are mutually exclusive; a pipeline "
            "is itself the policy schedule"
        )
        return 2
    pipeline = None
    try:
        # Construct inside the try: policy/param validation errors are
        # config problems and must exit 2, not traceback.
        replay_kwargs = {"max_sources": args.max_sources}
        if args.pipeline is not None:
            pipeline = parse_pipeline(
                args.pipeline, policy_kwargs={"replay": replay_kwargs}
            )
            policy = pipeline
            rounds = args.rounds
            if rounds is None:
                rounds = pipeline.total_rounds()
                if rounds is None:
                    raise ConfigError(
                        f"pipeline {args.pipeline!r} has an unbounded "
                        "final stage; give --rounds to cap the campaign"
                    )
        else:
            policy_name = args.policy if args.policy is not None else "grid_zoom"
            # `choices=` already filters CLI input; the lookup stays
            # defensive for embedders calling main() with a bad name —
            # a ConfigError listing the registry, never a KeyError.
            factory = POLICIES.get(policy_name)
            if factory is None:
                raise ConfigError(
                    f"unknown policy {policy_name!r}; "
                    f"known policies: {', '.join(sorted(POLICIES))}"
                )
            policy_kwargs = (
                replay_kwargs if policy_name == "replay" else {}
            )
            policy = factory(**policy_kwargs)
            rounds = args.rounds if args.rounds is not None else 3
        if args.resume and args.checkpoint is None:
            raise ConfigError("--resume needs --checkpoint PATH")
        campaign = AdaptiveCampaign(
            seeds=tuple(range(args.seeds)),
            rounds=rounds,
            policy=policy,
            workers=args.workers,
            batch_size=args.batch_size,
            prewarm=not args.no_prewarm,
            cell_timeout=args.cell_timeout,
            quarantine=args.quarantine,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
        fixed = _parse_params(args.param)
        grid = _parse_grid(args.grid)
        if grid:
            campaign.add_grid(args.scenario, args.scenario, grid, **fixed)
        else:
            campaign.add_scenario(args.scenario, args.scenario, **fixed)
        result = campaign.run()
    except WatchdogTimeout as error:
        # A hung round the watchdog could not recover — fabric failure
        # (exit 3), checked before the ReproError -> 2 arm.
        return _executor_failure(error, args.quarantine)
    except (BrokenProcessPool, CancelledError) as error:
        return _executor_failure(error, args.quarantine)
    except (ReproError, ValueError) as error:
        # Config problems (unknown scenario/param, bad grid or rounds,
        # a policy needing refs it did not get) — not found bugs.
        print(error)
        return 2
    finally:
        if not args.keep_pool:
            close_pool(args.workers)
    schedule = (
        f"pipeline={pipeline.describe()}"
        if pipeline is not None
        else f"policy={args.policy or 'grid_zoom'}"
    )
    print(
        f"adaptive campaign: {args.scenario} x {args.seeds} seed(s), "
        f"{schedule}, {len(result.rounds)}/{rounds} "
        f"round(s), workers={args.workers}"
        + (" [stopped early]" if result.stopped_early else "")
        + (
            f" [prewarmed {result.prewarmed_refs} ref(s)]"
            if result.prewarmed_refs
            else ""
        )
        + (
            f" [resumed {result.resumed_rounds} round(s) from checkpoint]"
            if result.resumed_rounds
            else ""
        )
    )
    stage_labels = dict(pipeline.stage_log) if pipeline is not None else {}
    if pipeline is not None and pipeline.current_stage is not None:
        # The budget-capped final round is never refined, so it misses
        # the stage log; the stage left active is the one that ran it.
        last_index = result.rounds[-1].index
        stage_labels.setdefault(last_index, pipeline.current_stage.label)
    for observation in result.rounds:
        pool_note = (
            f" pool_id={observation.pool_id}"
            if observation.pool_id is not None
            else ""
        )
        stage_note = (
            f" stage={stage_labels[observation.index]}"
            if observation.index in stage_labels
            else ""
        )
        print(
            f"-- round {observation.index + 1}: "
            f"{observation.total_detections} detection(s)"
            f"{stage_note}{pool_note}"
        )
        print(render_campaign(list(observation.rows)))
        _print_quarantine(observation.quarantine)
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    for spec in REGISTRY:
        print(spec.describe())
        if spec.description:
            print(f"    {spec.description}")
    return 0


def _load_bench_main():
    """Import ``benchmarks/bench_perf_hotpaths.py`` from the repo tree.

    The bench suite lives beside the package, not inside it, so the CLI
    locates it relative to the source checkout; returns ``None`` when
    the tree is not there (e.g. an installed wheel without benchmarks).
    """
    import importlib.util
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_perf_hotpaths.py"
    )
    if not script.is_file():
        return None
    spec = importlib.util.spec_from_file_location(
        "repro_bench_perf_hotpaths", script
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


def _cmd_bench(args: argparse.Namespace) -> int:
    bench_main = _load_bench_main()
    if bench_main is None:
        print(
            "benchmarks/bench_perf_hotpaths.py not found; `repro bench` "
            "needs the source checkout (the bench suite is not installed "
            "with the package)"
        )
        return 2
    argv = []
    if args.quick:
        argv.append("--quick")
    argv.extend(["--workers", str(args.workers)])
    return bench_main(argv)


def _cmd_stress(args: argparse.Namespace) -> int:
    test = stress_case1(seed=args.seed, buggy_gc=not args.fixed_gc)
    return _print_result(test.run())


def _cmd_philosophers(args: argparse.Namespace) -> int:
    test = philosophers_case2(
        seed=args.seed, op=args.op, ordered=args.ordered
    )
    return _print_result(test.run())


def _cmd_fig1(args: argparse.Namespace) -> int:
    result = run_fig1(args.order)
    outcome = "terminated" if result.terminated else "wedged"
    print(f"order={args.order}: {outcome} after {result.ticks} ticks")
    print(f"  reached: {''.join(sorted(result.reached))}")
    if result.unreachable:
        print(f"  unreachable: {''.join(sorted(result.unreachable))}")
    for anomaly in result.anomalies:
        print(f"  {anomaly.describe()}")
    return 0 if result.terminated else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = next(
        (s for s in FAULT_CATALOGUE if s.name == args.fault), None
    )
    if spec is None:
        print(f"unknown fault {args.fault!r}; try: {fault_names()}")
        return 2
    found = 0
    for seed in range(args.seeds):
        result = build_fault_scenario(args.fault, seed=seed).run()
        verdict = (
            result.report.primary.kind.value if result.found_bug else "clean"
        )
        print(f"  seed {seed}: {verdict}")
        found += int(result.found_bug)
    expected = spec.expected.value if spec.expected else "none"
    print(
        f"{args.fault}: detected {found}/{args.seeds} "
        f"(expected anomaly: {expected})"
    )
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    for spec in FAULT_CATALOGUE:
        expected = spec.expected.value if spec.expected else "none"
        print(f"{spec.name:>22}  [{expected:>10}]  {spec.description}")
    return 0


def _policy_choices() -> tuple[str, ...]:
    """Adapt-policy names, straight from the registry (one source)."""
    from repro.ptest.adaptive import POLICIES

    return tuple(sorted(POLICIES))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pTest (DATE 2009) reproduction — adaptive stress "
        "testing of concurrent software on a simulated embedded "
        "multicore platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run an adaptive stress test")
    run_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (see `scenarios`); omit for the "
        "explicit (n, s, op) form",
    )
    run_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable)",
    )
    # Explicit-form flags default to None so the scenario form can tell
    # "flag given" from "default" and reject the combination.
    run_p.add_argument("--patterns", "-n", type=int, default=None)
    run_p.add_argument("--size", "-s", type=int, default=None)
    run_p.add_argument("--op", choices=sorted(MERGE_OPS), default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-ticks", type=int, default=None)
    run_p.set_defaults(func=_cmd_run)

    campaign_p = sub.add_parser(
        "campaign", help="sweep a registered scenario over seeds"
    )
    campaign_p.add_argument("scenario", help="registered scenario name")
    campaign_p.add_argument("--seeds", type=int, default=5)
    campaign_p.add_argument("--workers", type=int, default=1)
    campaign_p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    campaign_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="fixed scenario parameter (repeatable)",
    )
    campaign_p.add_argument(
        "--grid",
        "-g",
        action="append",
        metavar="KEY=V1,V2,...",
        help="sweep a parameter over several values (repeatable; "
        "variants are the cartesian product)",
    )
    campaign_p.add_argument(
        "--keep-pool",
        action="store_true",
        help="leave the shared worker pool warm after the campaign "
        "instead of shutting it down (for embedding callers that will "
        "dispatch again)",
    )
    campaign_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per cell: hung worker batches are "
        "killed and retried instead of wedging the campaign "
        "(default: wait forever)",
    )
    campaign_p.add_argument(
        "--quarantine",
        action="store_true",
        help="bisect repeatedly-failing batches down to the poison "
        "cells and complete with partial results (reported per cell) "
        "instead of aborting",
    )
    campaign_p.set_defaults(func=_cmd_campaign)

    adapt_p = sub.add_parser(
        "adapt",
        help="multi-round adaptive campaign on one warm worker pool",
    )
    adapt_p.add_argument("scenario", help="registered scenario name")
    adapt_p.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="maximum refinement rounds (policy may stop earlier; "
        "default 3, or the pipeline's own total when --pipeline is "
        "given)",
    )
    adapt_p.add_argument(
        "--policy",
        choices=_policy_choices(),
        default=None,
        help="refine policy steering each next round (default grid_zoom: "
        "narrow the grid around the highest-detection cell; halving: "
        "drop the bottom half of variants; replay: re-merge detecting "
        "interleavings into replay cells; repeat: rerun unchanged)",
    )
    adapt_p.add_argument(
        "--pipeline",
        metavar="NAME:ROUNDS,...",
        default=None,
        help='composed policy schedule, e.g. "grid_zoom:3,replay:2" — '
        "run each stage's policy for its round count, handing the "
        "latest round's detections to the next stage (mutually "
        "exclusive with --policy; only the final stage may omit "
        ":rounds, capped by --rounds)",
    )
    adapt_p.add_argument(
        "--no-prewarm",
        action="store_true",
        help="disable cross-round worker-cache pre-warming (results "
        "are identical either way; useful for benchmarking round-start "
        "cost)",
    )
    adapt_p.add_argument(
        "--max-sources",
        type=int,
        default=2,
        help="detections seeding each replay round (replay policy only)",
    )
    adapt_p.add_argument("--seeds", type=int, default=5)
    adapt_p.add_argument("--workers", type=int, default=1)
    adapt_p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    adapt_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="fixed scenario parameter (repeatable)",
    )
    adapt_p.add_argument(
        "--grid",
        "-g",
        action="append",
        metavar="KEY=V1,V2,...",
        help="round-1 parameter grid (repeatable; variants are the "
        "cartesian product, which the policy then refines)",
    )
    adapt_p.add_argument(
        "--keep-pool",
        action="store_true",
        help="leave the shared worker pool warm after the run",
    )
    adapt_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per cell (see `campaign --cell-timeout`)",
    )
    adapt_p.add_argument(
        "--quarantine",
        action="store_true",
        help="bisect repeatedly-failing batches down to the poison "
        "cells and keep going (see `campaign --quarantine`)",
    )
    adapt_p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist round-by-round progress to PATH (atomic "
        "write-then-rename after every round)",
    )
    adapt_p.add_argument(
        "--resume",
        action="store_true",
        help="replay completed rounds from --checkpoint and continue "
        "where the previous run stopped (bit-identical to an "
        "uninterrupted run; a missing file starts fresh)",
    )
    adapt_p.set_defaults(func=_cmd_adapt)

    scenarios_p = sub.add_parser(
        "scenarios", help="list the scenario registry"
    )
    scenarios_p.set_defaults(func=_cmd_scenarios)

    bench_p = sub.add_parser(
        "bench", help="run the perf hot-path benchmark suite"
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="small iteration counts (the CI smoke configuration)",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool width for the campaign layers (default 4)",
    )
    bench_p.set_defaults(func=_cmd_bench)

    stress_p = sub.add_parser("stress", help="test case 1 (GC crash)")
    stress_p.add_argument("--seed", type=int, default=0)
    stress_p.add_argument(
        "--fixed-gc", action="store_true", help="run the control instead"
    )
    stress_p.set_defaults(func=_cmd_stress)

    phil_p = sub.add_parser("philosophers", help="test case 2 (deadlock)")
    phil_p.add_argument("--seed", type=int, default=0)
    phil_p.add_argument("--op", choices=sorted(MERGE_OPS), default="cyclic")
    phil_p.add_argument(
        "--ordered", action="store_true", help="deadlock-free control"
    )
    phil_p.set_defaults(func=_cmd_philosophers)

    fig1_p = sub.add_parser("fig1", help="the Fig. 1 example")
    fig1_p.add_argument("--order", choices=("good", "bad"), default="bad")
    fig1_p.set_defaults(func=_cmd_fig1)

    sweep_p = sub.add_parser("sweep", help="fault detection sweep")
    sweep_p.add_argument("fault", help="fault name (see `faults`)")
    sweep_p.add_argument("--seeds", type=int, default=5)
    sweep_p.set_defaults(func=_cmd_sweep)

    faults_p = sub.add_parser("faults", help="list the fault catalogue")
    faults_p.set_defaults(func=_cmd_faults)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
