"""Command-line interface: ``python -m repro <command>``.

Commands mirror the examples so the tool is usable without writing
Python:

``run``            an adaptive stress test — either a registered
                   scenario by name (``run philosophers -p op=cyclic``)
                   or the explicit (n, s, op, seed) form
``campaign``       sweep a registered scenario over seeds (and an
                   optional parameter grid) through the batched
                   process-pool executor
``adapt``          multi-round adaptive campaign: rounds run on one
                   warm worker pool and a refine policy (grid_zoom,
                   halving, replay, repeat) steers each next round's
                   variants from the previous round's detections
``serve``          long-running campaign server: many concurrent
                   requests multiplexed onto shared warm pools over a
                   newline-JSON socket protocol
``submit``         send one campaign/adapt spec to a running server
                   via :class:`repro.client.Client`
``scenarios``      list the scenario registry with parameter specs

``run``/``campaign``/``adapt`` all parse into one serializable
:class:`~repro.ptest.spec.CampaignSpec` and dispatch through
:func:`~repro.ptest.spec.execute_spec` — the same schema ``serve``
accepts on the wire (``campaign --spec file.json`` loads one,
``--dump-spec`` writes one without running).

Exit codes: 0 success, 1 a bug was found (``run`` and friends), 2
configuration error, 3 execution-fabric failure (a campaign's worker
pool died or hung unrecoverably — see ``--cell-timeout`` /
``--quarantine``).
``bench``          run the perf hot-path benchmark suite and print the
                   JSON artifact path plus headline speedups
``stress``         test case 1 (GC crash, with --fixed-gc control)
``philosophers``   test case 2 (deadlock, choose --op / --ordered)
``fig1``           the Fig. 1 example (--order good|bad)
``sweep``          detection-rate sweep of a catalogued fault over seeds
``faults``         list the seeded-fault catalogue
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigError, ReproError, WatchdogTimeout
from repro.faults import FAULT_CATALOGUE, build_fault_scenario, fault_names
from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test
from repro.ptest.merger import MERGE_OPS
from repro.workloads.fig1 import run_fig1
from repro.workloads.registry import REGISTRY
from repro.workloads.scenarios import philosophers_case2, stress_case1


def _print_result(result) -> int:
    print(result.summary())
    if result.found_bug:
        print(result.report.describe())
        return 1
    return 0


def _parse_params(pairs: list[str] | None) -> dict[str, str]:
    """``key=value`` strings -> param mapping (registry coerces types)."""
    params: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"malformed parameter {pair!r}; expected key=value"
            )
        params[key] = value
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    explicit_flags = {
        "--patterns/-n": args.patterns,
        "--size/-s": args.size,
        "--op": args.op,
        "--max-ticks": args.max_ticks,
    }
    if args.scenario is not None:
        # The explicit-form flags do not apply to a registered scenario
        # (its parameters travel via --param); reject rather than
        # silently ignore them.
        given = [flag for flag, value in explicit_flags.items() if value is not None]
        if given:
            print(
                f"{', '.join(given)} only apply to the explicit form; "
                f"use --param to parameterise scenario {args.scenario!r} "
                "(see `repro scenarios`)"
            )
            return 2
        from repro.ptest.spec import CampaignSpec, execute_spec

        try:
            spec = CampaignSpec(
                scenario=args.scenario,
                mode="run",
                params=tuple(_parse_params(args.param).items()),
                seeds=(args.seed,),
            )
            outcome = execute_spec(spec)
        except ReproError as error:
            # Unknown scenario, bad param, or a builder rejecting an
            # out-of-range value — never exit 1 (that means "bug found").
            print(error)
            return 2
        print(f"scenario: {args.scenario} seed={args.seed}")
        return _print_result(outcome.run_result)
    if args.param:
        print("--param requires a scenario name (see `repro scenarios`)")
        return 2
    # Omit flags the user left unset so PTestConfig's own defaults apply.
    overrides = {
        "pattern_count": args.patterns,
        "pattern_size": args.size,
        "op": args.op,
        "max_ticks": args.max_ticks,
    }
    config = PTestConfig(
        seed=args.seed,
        **{key: value for key, value in overrides.items() if value is not None},
    )
    print(f"adaptive test: {config.describe()}")
    return _print_result(run_adaptive_test(config))


def _executor_failure(error: BaseException, quarantine_flag: bool) -> int:
    """One-line diagnosis (never a traceback) for a dead or hung
    execution fabric: exit 3, distinct from "bug found" (1) and config
    errors (2) so scripts can retry or escalate appropriately.  The
    spelling is shared with ``repro serve``'s error frames (see
    :func:`~repro.ptest.executor.executor_diagnosis`)."""
    from repro.ptest.executor import QUARANTINE_HINT, executor_diagnosis

    print(executor_diagnosis(error))
    if not quarantine_flag:
        print(QUARANTINE_HINT)
    return 3


def _print_quarantine(report) -> None:
    """Summarise a run's quarantine accounting.

    Printed whenever quarantine was requested — a clean run states
    "0 of N cells" explicitly rather than staying silent, so partial
    results are never mistaken for complete ones (or vice versa).
    """
    if report is None:
        return
    print(report.describe())
    for cell in report.cells:
        print(f"  quarantined: {cell.describe()}")


def _load_spec_file(path: str):
    """A validated :class:`~repro.ptest.spec.CampaignSpec` from a JSON
    file (``--spec``); I/O problems are config errors, not tracebacks."""
    from pathlib import Path

    from repro.ptest.spec import CampaignSpec

    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ConfigError(f"cannot read spec file {path!r}: {error}")
    return CampaignSpec.from_json(text)


def _build_spec(args: argparse.Namespace, mode: str):
    """The subcommand's :class:`~repro.ptest.spec.CampaignSpec` — from
    ``--spec FILE`` when given, otherwise from the parsed flags.

    ``getattr`` defaults keep embedders that call the handlers with a
    partial namespace (bypassing argparse) on the ConfigError path
    rather than an AttributeError.
    """
    from repro.ptest.spec import CampaignSpec

    spec_path = getattr(args, "spec", None)
    if spec_path is not None:
        if args.scenario is not None:
            raise ConfigError(
                "give a scenario name or --spec FILE, not both"
            )
        spec = _load_spec_file(spec_path)
        if spec.mode != mode:
            raise ConfigError(
                f"spec file {spec_path!r} has mode {spec.mode!r}; "
                f"`repro {mode}` runs mode {mode!r} specs "
                "(use `repro submit` to dispatch any mode)"
            )
        return spec
    if args.scenario is None:
        raise ConfigError(
            f"`repro {mode}` needs a scenario name or --spec FILE"
        )
    common = dict(
        scenario=args.scenario,
        mode=mode,
        params=tuple(_parse_params(args.param).items()),
        grid=tuple(
            (key, tuple(values))
            for key, values in _parse_grid(args.grid).items()
        ),
        seeds=tuple(range(args.seeds)),
        workers=args.workers,
        batch_size=args.batch_size,
        cell_timeout=getattr(args, "cell_timeout", None),
        quarantine=getattr(args, "quarantine", False),
    )
    if mode == "adapt":
        return CampaignSpec(
            **common,
            policy=args.policy,
            pipeline=args.pipeline,
            rounds=args.rounds,
            max_sources=args.max_sources,
            prewarm=not args.no_prewarm,
            checkpoint=getattr(args, "checkpoint", None),
            resume=getattr(args, "resume", False),
        )
    return CampaignSpec(**common)


def _dump_spec(args: argparse.Namespace, spec) -> bool:
    """Handle ``--dump-spec PATH``: write the spec as JSON and skip
    execution.  Returns whether the run should stop here."""
    path = getattr(args, "dump_spec", None)
    if path is None:
        return False
    from pathlib import Path

    Path(path).write_text(spec.to_json(indent=2) + "\n")
    print(f"spec written to {path}")
    return True


def _print_campaign_outcome(spec, outcome) -> None:
    from repro.analysis.text_report import render_campaign

    print(
        f"campaign: {spec.scenario} over {len(spec.seeds)} seed(s), "
        f"workers={spec.workers}"
        + (f", batch_size={spec.batch_size}" if spec.batch_size else "")
    )
    print(render_campaign(list(outcome.rows)))
    _print_quarantine(outcome.quarantine)


def _print_adapt_outcome(spec, outcome) -> None:
    from repro.analysis.text_report import render_campaign

    print(
        f"adaptive campaign: {spec.scenario} x {len(spec.seeds)} seed(s), "
        f"{outcome.schedule}, {len(outcome.rounds)}/{outcome.rounds_budget} "
        f"round(s), workers={spec.workers}"
        + (" [stopped early]" if outcome.stopped_early else "")
        + (
            f" [prewarmed {outcome.prewarmed_refs} ref(s)]"
            if outcome.prewarmed_refs
            else ""
        )
        + (
            f" [resumed {outcome.resumed_rounds} round(s) from checkpoint]"
            if outcome.resumed_rounds
            else ""
        )
    )
    pool_ids = outcome.pool_ids or (None,) * len(outcome.rounds)
    for round_result, pool_id in zip(outcome.rounds, pool_ids):
        pool_note = f" pool_id={pool_id}" if pool_id is not None else ""
        stage_note = (
            f" stage={round_result.stage}"
            if round_result.stage is not None
            else ""
        )
        print(
            f"-- round {round_result.index + 1}: "
            f"{round_result.total_detections} detection(s)"
            f"{stage_note}{pool_note}"
        )
        print(render_campaign(list(round_result.rows)))
        _print_quarantine(round_result.quarantine)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.ptest.pool import close_pool
    from repro.ptest.spec import execute_spec

    try:
        spec = _build_spec(args, "campaign")
    except (ReproError, ValueError) as error:
        # Contradictory knobs, malformed --param/--grid, an unreadable
        # --spec file — config problems, caught before any pool exists.
        print(error)
        return 2
    if _dump_spec(args, spec):
        return 0
    try:
        outcome = execute_spec(spec)
    except WatchdogTimeout as error:
        # Before the (ReproError, ...) -> 2 arm: a hung batch is a
        # fabric failure, not a config mistake.
        return _executor_failure(error, spec.quarantine)
    except (BrokenProcessPool, CancelledError) as error:
        return _executor_failure(error, spec.quarantine)
    except (ReproError, ValueError) as error:
        # ValueError covers duplicate variant names (e.g. a repeated
        # grid value); ReproError covers registry/param problems and
        # builders rejecting a value at cell-build time.
        print(error)
        return 2
    finally:
        if not getattr(args, "keep_pool", False):
            # Deterministic teardown of this campaign's shared pool
            # only — an embedding caller's other warm pools survive.
            # With --keep-pool even this one stays warm (the atexit
            # hook reaps it eventually).
            close_pool(spec.workers)
    _print_campaign_outcome(spec, outcome)
    return 0


def _parse_grid(pairs: list[str] | None) -> dict[str, list[str]]:
    """``key=v1,v2,...`` strings -> param grid (registry coerces types)."""
    grid: dict[str, list[str]] = {}
    for pair in pairs or []:
        key, sep, values = pair.partition("=")
        if not sep or not key or not values:
            raise ConfigError(
                f"malformed grid {pair!r}; expected key=v1,v2,..."
            )
        if key in grid:
            raise ConfigError(f"grid parameter {key!r} given more than once")
        grid[key] = values.split(",")
    return grid


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.ptest.pool import close_pool
    from repro.ptest.spec import execute_spec

    try:
        # Construct inside the try: policy/pipeline/param validation
        # errors are config problems and must exit 2, not traceback.
        spec = _build_spec(args, "adapt")
    except (ReproError, ValueError) as error:
        print(error)
        return 2
    if _dump_spec(args, spec):
        return 0
    try:
        outcome = execute_spec(spec)
    except WatchdogTimeout as error:
        # A hung round the watchdog could not recover — fabric failure
        # (exit 3), checked before the ReproError -> 2 arm.
        return _executor_failure(error, spec.quarantine)
    except (BrokenProcessPool, CancelledError) as error:
        return _executor_failure(error, spec.quarantine)
    except (ReproError, ValueError) as error:
        # Config problems (unknown scenario/param, bad grid or rounds,
        # a policy needing refs it did not get) — not found bugs.
        print(error)
        return 2
    finally:
        if not getattr(args, "keep_pool", False):
            close_pool(spec.workers)
    _print_adapt_outcome(spec, outcome)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.ptest.pool import shutdown_pools
    from repro.serve import serve

    def ready(address: tuple[str, int]) -> None:
        host, port = address
        print(
            f"repro serve: listening on {host}:{port} "
            f"(max_concurrent={args.max_concurrent}); "
            'send {"op": "shutdown"} to drain and exit',
            flush=True,
        )

    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                max_concurrent=args.max_concurrent,
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: interrupted")
    except (ReproError, OSError) as error:
        # Bad max_concurrent, port already bound — config problems.
        print(error)
        return 2
    finally:
        # The server process owns its warm pools; tear them down
        # deterministically rather than leaning on the atexit hook.
        shutdown_pools()
    print("repro serve: drained and stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.client import Client, ServerError

    try:
        spec_path = getattr(args, "spec", None)
        if spec_path is not None:
            if args.scenario is not None:
                raise ConfigError(
                    "give a scenario name or --spec FILE, not both"
                )
            spec = _load_spec_file(spec_path)
        else:
            # Flag form: the same campaign-shaped spec `repro campaign`
            # builds (use --spec for adapt/run submissions).
            spec = _build_spec(args, "campaign")
    except (ReproError, ValueError) as error:
        print(error)
        return 2
    if _dump_spec(args, spec):
        return 0
    client = Client(args.host, args.port, timeout=args.timeout)
    try:
        outcome = client.run(spec)
    except ServerError as error:
        # The server already classified the failure; mirror the local
        # CLI's exit-code mapping (2 config, 3 executor failure).
        print(error)
        if error.hint:
            print(error.hint)
        return error.exit_code if error.exit_code is not None else 2
    finally:
        client.close()
    queue_note = " [queued]" if outcome.queued else ""
    print(f"submitted to {args.host}:{args.port}{queue_note}")
    if spec.mode == "adapt":
        _print_adapt_outcome(spec, outcome)
    else:
        _print_campaign_outcome(spec, outcome)
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    for spec in REGISTRY:
        print(spec.describe())
        if spec.description:
            print(f"    {spec.description}")
    return 0


def _load_bench_main():
    """Import ``benchmarks/bench_perf_hotpaths.py`` from the repo tree.

    The bench suite lives beside the package, not inside it, so the CLI
    locates it relative to the source checkout; returns ``None`` when
    the tree is not there (e.g. an installed wheel without benchmarks).
    """
    import importlib.util
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_perf_hotpaths.py"
    )
    if not script.is_file():
        return None
    spec = importlib.util.spec_from_file_location(
        "repro_bench_perf_hotpaths", script
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


def _cmd_bench(args: argparse.Namespace) -> int:
    bench_main = _load_bench_main()
    if bench_main is None:
        print(
            "benchmarks/bench_perf_hotpaths.py not found; `repro bench` "
            "needs the source checkout (the bench suite is not installed "
            "with the package)"
        )
        return 2
    argv = []
    if args.quick:
        argv.append("--quick")
    argv.extend(["--workers", str(args.workers)])
    return bench_main(argv)


def _cmd_stress(args: argparse.Namespace) -> int:
    test = stress_case1(seed=args.seed, buggy_gc=not args.fixed_gc)
    return _print_result(test.run())


def _cmd_philosophers(args: argparse.Namespace) -> int:
    test = philosophers_case2(
        seed=args.seed, op=args.op, ordered=args.ordered
    )
    return _print_result(test.run())


def _cmd_fig1(args: argparse.Namespace) -> int:
    result = run_fig1(args.order)
    outcome = "terminated" if result.terminated else "wedged"
    print(f"order={args.order}: {outcome} after {result.ticks} ticks")
    print(f"  reached: {''.join(sorted(result.reached))}")
    if result.unreachable:
        print(f"  unreachable: {''.join(sorted(result.unreachable))}")
    for anomaly in result.anomalies:
        print(f"  {anomaly.describe()}")
    return 0 if result.terminated else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = next(
        (s for s in FAULT_CATALOGUE if s.name == args.fault), None
    )
    if spec is None:
        print(f"unknown fault {args.fault!r}; try: {fault_names()}")
        return 2
    found = 0
    for seed in range(args.seeds):
        result = build_fault_scenario(args.fault, seed=seed).run()
        verdict = (
            result.report.primary.kind.value if result.found_bug else "clean"
        )
        print(f"  seed {seed}: {verdict}")
        found += int(result.found_bug)
    expected = spec.expected.value if spec.expected else "none"
    print(
        f"{args.fault}: detected {found}/{args.seeds} "
        f"(expected anomaly: {expected})"
    )
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    for spec in FAULT_CATALOGUE:
        expected = spec.expected.value if spec.expected else "none"
        print(f"{spec.name:>22}  [{expected:>10}]  {spec.description}")
    return 0


def _policy_choices() -> tuple[str, ...]:
    """Adapt-policy names, straight from the registry (one source)."""
    from repro.ptest.adaptive import POLICIES

    return tuple(sorted(POLICIES))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pTest (DATE 2009) reproduction — adaptive stress "
        "testing of concurrent software on a simulated embedded "
        "multicore platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run an adaptive stress test")
    run_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (see `scenarios`); omit for the "
        "explicit (n, s, op) form",
    )
    run_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable)",
    )
    # Explicit-form flags default to None so the scenario form can tell
    # "flag given" from "default" and reject the combination.
    run_p.add_argument("--patterns", "-n", type=int, default=None)
    run_p.add_argument("--size", "-s", type=int, default=None)
    run_p.add_argument("--op", choices=sorted(MERGE_OPS), default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-ticks", type=int, default=None)
    run_p.set_defaults(func=_cmd_run)

    campaign_p = sub.add_parser(
        "campaign", help="sweep a registered scenario over seeds"
    )
    campaign_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (or give --spec FILE)",
    )
    campaign_p.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="load the whole campaign from a CampaignSpec JSON file "
        "instead of flags (see --dump-spec)",
    )
    campaign_p.add_argument(
        "--dump-spec",
        metavar="PATH",
        default=None,
        help="write the parsed CampaignSpec as JSON to PATH and exit "
        "without running (round-trips through --spec and `repro serve`)",
    )
    campaign_p.add_argument("--seeds", type=int, default=5)
    campaign_p.add_argument("--workers", type=int, default=1)
    campaign_p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    campaign_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="fixed scenario parameter (repeatable)",
    )
    campaign_p.add_argument(
        "--grid",
        "-g",
        action="append",
        metavar="KEY=V1,V2,...",
        help="sweep a parameter over several values (repeatable; "
        "variants are the cartesian product)",
    )
    campaign_p.add_argument(
        "--keep-pool",
        action="store_true",
        help="leave the shared worker pool warm after the campaign "
        "instead of shutting it down (for embedding callers that will "
        "dispatch again)",
    )
    campaign_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per cell: hung worker batches are "
        "killed and retried instead of wedging the campaign "
        "(default: wait forever)",
    )
    campaign_p.add_argument(
        "--quarantine",
        action="store_true",
        help="bisect repeatedly-failing batches down to the poison "
        "cells and complete with partial results (reported per cell) "
        "instead of aborting",
    )
    campaign_p.set_defaults(func=_cmd_campaign)

    adapt_p = sub.add_parser(
        "adapt",
        help="multi-round adaptive campaign on one warm worker pool",
    )
    adapt_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (or give --spec FILE)",
    )
    adapt_p.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="load the whole run from a CampaignSpec JSON file "
        "instead of flags (see --dump-spec)",
    )
    adapt_p.add_argument(
        "--dump-spec",
        metavar="PATH",
        default=None,
        help="write the parsed CampaignSpec as JSON to PATH and exit "
        "without running",
    )
    adapt_p.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="maximum refinement rounds (policy may stop earlier; "
        "default 3, or the pipeline's own total when --pipeline is "
        "given)",
    )
    adapt_p.add_argument(
        "--policy",
        choices=_policy_choices(),
        default=None,
        help="refine policy steering each next round (default grid_zoom: "
        "narrow the grid around the highest-detection cell; halving: "
        "drop the bottom half of variants; replay: re-merge detecting "
        "interleavings into replay cells; repeat: rerun unchanged)",
    )
    adapt_p.add_argument(
        "--pipeline",
        metavar="NAME:ROUNDS,...",
        default=None,
        help='composed policy schedule, e.g. "grid_zoom:3,replay:2" — '
        "run each stage's policy for its round count, handing the "
        "latest round's detections to the next stage (mutually "
        "exclusive with --policy; only the final stage may omit "
        ":rounds, capped by --rounds)",
    )
    adapt_p.add_argument(
        "--no-prewarm",
        action="store_true",
        help="disable cross-round worker-cache pre-warming (results "
        "are identical either way; useful for benchmarking round-start "
        "cost)",
    )
    adapt_p.add_argument(
        "--max-sources",
        type=int,
        default=2,
        help="detections seeding each replay round (replay policy only)",
    )
    adapt_p.add_argument("--seeds", type=int, default=5)
    adapt_p.add_argument("--workers", type=int, default=1)
    adapt_p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    adapt_p.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="KEY=VALUE",
        help="fixed scenario parameter (repeatable)",
    )
    adapt_p.add_argument(
        "--grid",
        "-g",
        action="append",
        metavar="KEY=V1,V2,...",
        help="round-1 parameter grid (repeatable; variants are the "
        "cartesian product, which the policy then refines)",
    )
    adapt_p.add_argument(
        "--keep-pool",
        action="store_true",
        help="leave the shared worker pool warm after the run",
    )
    adapt_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per cell (see `campaign --cell-timeout`)",
    )
    adapt_p.add_argument(
        "--quarantine",
        action="store_true",
        help="bisect repeatedly-failing batches down to the poison "
        "cells and keep going (see `campaign --quarantine`)",
    )
    adapt_p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist round-by-round progress to PATH (atomic "
        "write-then-rename after every round)",
    )
    adapt_p.add_argument(
        "--resume",
        action="store_true",
        help="replay completed rounds from --checkpoint and continue "
        "where the previous run stopped (bit-identical to an "
        "uninterrupted run; a missing file starts fresh)",
    )
    adapt_p.set_defaults(func=_cmd_adapt)

    serve_p = sub.add_parser(
        "serve",
        help="serve campaigns over a socket: accept CampaignSpec "
        "requests from many clients on shared warm worker pools",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=7341,
        help="TCP port to listen on (0 picks a free port; default 7341)",
    )
    serve_p.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="campaigns executing at once; excess requests queue "
        "(never rejected) until a slot frees up",
    )
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit a campaign to a running `repro serve` instance",
    )
    submit_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name for a campaign-mode submission "
        "(use --spec for run/adapt specs)",
    )
    submit_p.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="CampaignSpec JSON file to submit (any mode)",
    )
    submit_p.add_argument(
        "--dump-spec",
        metavar="PATH",
        default=None,
        help="write the parsed CampaignSpec as JSON to PATH and exit "
        "without submitting",
    )
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=7341)
    submit_p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-read socket timeout in seconds",
    )
    submit_p.add_argument("--seeds", type=int, default=5)
    submit_p.add_argument("--workers", type=int, default=1)
    submit_p.add_argument("--batch-size", type=int, default=None)
    submit_p.add_argument(
        "--param", "-p", action="append", metavar="KEY=VALUE"
    )
    submit_p.add_argument(
        "--grid", "-g", action="append", metavar="KEY=V1,V2,..."
    )
    submit_p.set_defaults(func=_cmd_submit)

    scenarios_p = sub.add_parser(
        "scenarios", help="list the scenario registry"
    )
    scenarios_p.set_defaults(func=_cmd_scenarios)

    bench_p = sub.add_parser(
        "bench", help="run the perf hot-path benchmark suite"
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="small iteration counts (the CI smoke configuration)",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool width for the campaign layers (default 4)",
    )
    bench_p.set_defaults(func=_cmd_bench)

    stress_p = sub.add_parser("stress", help="test case 1 (GC crash)")
    stress_p.add_argument("--seed", type=int, default=0)
    stress_p.add_argument(
        "--fixed-gc", action="store_true", help="run the control instead"
    )
    stress_p.set_defaults(func=_cmd_stress)

    phil_p = sub.add_parser("philosophers", help="test case 2 (deadlock)")
    phil_p.add_argument("--seed", type=int, default=0)
    phil_p.add_argument("--op", choices=sorted(MERGE_OPS), default="cyclic")
    phil_p.add_argument(
        "--ordered", action="store_true", help="deadlock-free control"
    )
    phil_p.set_defaults(func=_cmd_philosophers)

    fig1_p = sub.add_parser("fig1", help="the Fig. 1 example")
    fig1_p.add_argument("--order", choices=("good", "bad"), default="bad")
    fig1_p.set_defaults(func=_cmd_fig1)

    sweep_p = sub.add_parser("sweep", help="fault detection sweep")
    sweep_p.add_argument("fault", help="fault name (see `faults`)")
    sweep_p.add_argument("--seeds", type=int, default=5)
    sweep_p.set_defaults(func=_cmd_sweep)

    faults_p = sub.add_parser("faults", help="list the fault catalogue")
    faults_p.set_defaults(func=_cmd_faults)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
