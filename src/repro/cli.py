"""Command-line interface: ``python -m repro <command>``.

Commands mirror the examples so the tool is usable without writing
Python:

``run``            an adaptive stress test with explicit (n, s, op, seed)
``stress``         test case 1 (GC crash, with --fixed-gc control)
``philosophers``   test case 2 (deadlock, choose --op / --ordered)
``fig1``           the Fig. 1 example (--order good|bad)
``sweep``          detection-rate sweep of a catalogued fault over seeds
``faults``         list the seeded-fault catalogue
"""

from __future__ import annotations

import argparse
import sys

from repro.faults import FAULT_CATALOGUE, build_fault_scenario, fault_names
from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test
from repro.ptest.merger import MERGE_OPS
from repro.workloads.fig1 import run_fig1
from repro.workloads.scenarios import philosophers_case2, stress_case1


def _print_result(result) -> int:
    print(result.summary())
    if result.found_bug:
        print(result.report.describe())
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = PTestConfig(
        pattern_count=args.patterns,
        pattern_size=args.size,
        op=args.op,
        seed=args.seed,
        max_ticks=args.max_ticks,
    )
    print(f"adaptive test: {config.describe()}")
    return _print_result(run_adaptive_test(config))


def _cmd_stress(args: argparse.Namespace) -> int:
    test = stress_case1(seed=args.seed, buggy_gc=not args.fixed_gc)
    return _print_result(test.run())


def _cmd_philosophers(args: argparse.Namespace) -> int:
    test = philosophers_case2(
        seed=args.seed, op=args.op, ordered=args.ordered
    )
    return _print_result(test.run())


def _cmd_fig1(args: argparse.Namespace) -> int:
    result = run_fig1(args.order)
    outcome = "terminated" if result.terminated else "wedged"
    print(f"order={args.order}: {outcome} after {result.ticks} ticks")
    print(f"  reached: {''.join(sorted(result.reached))}")
    if result.unreachable:
        print(f"  unreachable: {''.join(sorted(result.unreachable))}")
    for anomaly in result.anomalies:
        print(f"  {anomaly.describe()}")
    return 0 if result.terminated else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = next(
        (s for s in FAULT_CATALOGUE if s.name == args.fault), None
    )
    if spec is None:
        print(f"unknown fault {args.fault!r}; try: {fault_names()}")
        return 2
    found = 0
    for seed in range(args.seeds):
        result = build_fault_scenario(args.fault, seed=seed).run()
        verdict = (
            result.report.primary.kind.value if result.found_bug else "clean"
        )
        print(f"  seed {seed}: {verdict}")
        found += int(result.found_bug)
    expected = spec.expected.value if spec.expected else "none"
    print(
        f"{args.fault}: detected {found}/{args.seeds} "
        f"(expected anomaly: {expected})"
    )
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    for spec in FAULT_CATALOGUE:
        expected = spec.expected.value if spec.expected else "none"
        print(f"{spec.name:>22}  [{expected:>10}]  {spec.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pTest (DATE 2009) reproduction — adaptive stress "
        "testing of concurrent software on a simulated embedded "
        "multicore platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run an adaptive stress test")
    run_p.add_argument("--patterns", "-n", type=int, default=4)
    run_p.add_argument("--size", "-s", type=int, default=8)
    run_p.add_argument("--op", choices=sorted(MERGE_OPS), default="round_robin")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-ticks", type=int, default=20_000)
    run_p.set_defaults(func=_cmd_run)

    stress_p = sub.add_parser("stress", help="test case 1 (GC crash)")
    stress_p.add_argument("--seed", type=int, default=0)
    stress_p.add_argument(
        "--fixed-gc", action="store_true", help="run the control instead"
    )
    stress_p.set_defaults(func=_cmd_stress)

    phil_p = sub.add_parser("philosophers", help="test case 2 (deadlock)")
    phil_p.add_argument("--seed", type=int, default=0)
    phil_p.add_argument("--op", choices=sorted(MERGE_OPS), default="cyclic")
    phil_p.add_argument(
        "--ordered", action="store_true", help="deadlock-free control"
    )
    phil_p.set_defaults(func=_cmd_philosophers)

    fig1_p = sub.add_parser("fig1", help="the Fig. 1 example")
    fig1_p.add_argument("--order", choices=("good", "bad"), default="bad")
    fig1_p.set_defaults(func=_cmd_fig1)

    sweep_p = sub.add_parser("sweep", help="fault detection sweep")
    sweep_p.add_argument("fault", help="fault name (see `faults`)")
    sweep_p.add_argument("--seeds", type=int, default=5)
    sweep_p.set_defaults(func=_cmd_sweep)

    faults_p = sub.add_parser("faults", help="list the fault catalogue")
    faults_p.set_defaults(func=_cmd_faults)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
