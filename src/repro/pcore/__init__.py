"""Model of the pCore microkernel (the paper's slave runtime system).

pCore is a microkernel for specialised processing units (the C55x DSP of
the OMAP5912 in the paper): up to 16 concurrent tasks, preemptive
priority-based scheduling, and the six task-management services of
Table I (task_create, task_delete, task_suspend, task_resume,
task_chanprio, task_yield).  This package models it at the level pTest
observes it:

* :mod:`repro.pcore.tcb` — task control blocks and the task state machine,
* :mod:`repro.pcore.programs` — task bodies as generator coroutines
  yielding :class:`~repro.pcore.programs.Syscall` objects,
* :mod:`repro.pcore.scheduler` — preemptive priority scheduling,
* :mod:`repro.pcore.memory` — the tiny-kernel memory manager and its
  garbage collector, with the injectable GC fault of test case 1,
* :mod:`repro.pcore.sync` — mutexes/semaphores with owner and wait-queue
  tracking (feeding the detector's wait-for graph),
* :mod:`repro.pcore.services` — Table I service semantics,
* :mod:`repro.pcore.kernel` — the kernel itself, a stepped
  :class:`repro.sim.soc.Core`.
"""

from repro.pcore.ipc import KMessageQueue
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.memory import GarbageCollector, KernelMemory, MemoryBlock
from repro.pcore.programs import (
    Acquire,
    QRecv,
    QSend,
    forever_program,
    idle_program,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    Release,
    Sleep,
    Syscall,
    TaskContext,
    YieldCpu,
)
from repro.pcore.scheduler import PriorityScheduler
from repro.pcore.services import (
    SERVICE_ABBREVIATIONS,
    ServiceCode,
    ServiceRequest,
    ServiceResult,
    ServiceStatus,
)
from repro.pcore.sync import KMutex, KSemaphore
from repro.pcore.tcb import TaskControlBlock, TaskState

__all__ = [
    "KMessageQueue",
    "KernelConfig",
    "QRecv",
    "QSend",
    "PCoreKernel",
    "GarbageCollector",
    "KernelMemory",
    "MemoryBlock",
    "Acquire",
    "forever_program",
    "idle_program",
    "Compute",
    "Exit",
    "MemRead",
    "MemWrite",
    "Release",
    "Sleep",
    "Syscall",
    "TaskContext",
    "YieldCpu",
    "PriorityScheduler",
    "SERVICE_ABBREVIATIONS",
    "ServiceCode",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStatus",
    "KMutex",
    "KSemaphore",
    "TaskControlBlock",
    "TaskState",
]
