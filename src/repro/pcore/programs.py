"""Task bodies as generator coroutines.

A task program is a Python generator function taking a
:class:`TaskContext` and yielding :class:`Syscall` values.  The kernel
resumes the generator for one syscall at a time, so *every* interleaving
of task progress is an explicit scheduling decision — the substitution
this reproduction makes for real hardware nondeterminism (see DESIGN.md).

Example::

    def spin(ctx):
        for _ in range(3):
            yield Compute(5)     # burn 5 compute units
            yield YieldCpu()     # let equal-priority tasks run
        yield Exit(0)

Syscalls are small frozen dataclasses rather than an enum + payload so
that type checks in the kernel dispatcher stay obvious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import ServiceError


@dataclass(frozen=True)
class Syscall:
    """Base class for values a task program may yield."""


@dataclass(frozen=True)
class Compute(Syscall):
    """Consume ``units`` compute steps before the next syscall.

    The kernel charges one unit per scheduling step, so a task yielding
    ``Compute(5)`` occupies five steps (unless preempted between them).
    """

    units: int

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ServiceError(f"Compute units must be >= 1, got {self.units}")


@dataclass(frozen=True)
class YieldCpu(Syscall):
    """Voluntarily give up the CPU (back of the ready queue).

    This is the ``yield()`` of the Fig. 1 example — *not* the TY kernel
    service, which terminates the running task.
    """


@dataclass(frozen=True)
class Sleep(Syscall):
    """Sleep for ``ticks`` simulated ticks."""

    ticks: int

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ServiceError(f"Sleep ticks must be >= 1, got {self.ticks}")


@dataclass(frozen=True)
class Acquire(Syscall):
    """Acquire a named kernel synchronization object (blocking)."""

    resource: str


@dataclass(frozen=True)
class Release(Syscall):
    """Release a named kernel synchronization object."""

    resource: str


@dataclass(frozen=True)
class MemRead(Syscall):
    """Read a u16 from shared memory; the value is sent into the
    generator as the result of the ``yield``."""

    address: int


@dataclass(frozen=True)
class MemWrite(Syscall):
    """Write a u16 to shared memory."""

    address: int
    value: int


@dataclass(frozen=True)
class QSend(Syscall):
    """Send a word to a kernel message queue (blocks while full)."""

    queue: str
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise ServiceError(f"QSend value {self.value} not a u32")


@dataclass(frozen=True)
class QRecv(Syscall):
    """Receive a word from a kernel message queue (blocks while empty).

    The received value arrives as the result of the ``yield``.
    """

    queue: str


@dataclass(frozen=True)
class Exit(Syscall):
    """Terminate the task normally with an exit value."""

    value: object = None


@dataclass
class TaskContext:
    """Facilities a task program may use besides syscalls.

    Only immutable identity and a scratch dict are exposed; everything
    with side effects goes through syscalls so the kernel sees it.
    """

    tid: int
    name: str
    priority: int
    #: Program-private scratch space (survives across yields).
    scratch: dict

    def __init__(self, tid: int, name: str, priority: int) -> None:
        self.tid = tid
        self.name = name
        self.priority = priority
        self.scratch = {}


#: Type of a task program: called with the context, returns the coroutine.
TaskProgram = Callable[[TaskContext], Generator[Syscall, object, None]]


#: Compute steps of the default task body.  Finite: pCore tasks "perform
#: sub-functions" and terminate; an immortal default would make lower
#: priority tasks starve by construction under strict priority
#: scheduling (see :func:`forever_program` when immortality is wanted).
IDLE_PROGRAM_STEPS = 24


def idle_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """The default task body: a short polite compute loop, then exit.

    Tasks created by lifecycle-only stress patterns run this; it makes
    observable progress, yields at every step so the scheduler can
    interleave, and finishes on its own if no TD/TY arrives first.
    """
    del ctx
    for _ in range(IDLE_PROGRAM_STEPS):
        yield Compute(1)
        yield YieldCpu()
    yield Exit(0)


def forever_program(ctx: TaskContext) -> Generator[Syscall, object, None]:
    """A program that computes forever in small slices (never exits).

    For tests and scenarios that need the task alive until an explicit
    TD/TY — note that under preemptive priority scheduling an immortal
    task starves everything below its priority.
    """
    del ctx
    while True:
        yield Compute(1)
        yield YieldCpu()


def spin_exit_program(units: int) -> TaskProgram:
    """A program that computes ``units`` steps then exits."""

    def program(ctx: TaskContext) -> Generator[Syscall, object, None]:
        del ctx
        if units > 0:
            yield Compute(units)
        yield Exit(0)

    return program
