"""Intra-kernel message queues (task-to-task IPC).

pCore's second headline feature is "supporting dual-core/multicore
communication protocols"; on the task side that surfaces as bounded
message queues.  A :class:`KMessageQueue` carries word-sized payloads
between tasks with blocking send (when full) and blocking receive (when
empty).  Queues are ownerless, so like semaphores they contribute no
wait-for edges — a stuck pipeline shows up as starvation, not deadlock,
which matches how such bugs look from outside on real hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import KernelError


@dataclass
class KMessageQueue:
    """A bounded FIFO of word-sized messages between tasks."""

    name: str
    capacity: int = 8
    _items: deque[int] = field(default_factory=deque, repr=False)
    #: Tasks blocked trying to send (queue full), FIFO.
    send_waiters: list[int] = field(default_factory=list)
    #: Tasks blocked trying to receive (queue empty), FIFO.
    recv_waiters: list[int] = field(default_factory=list)
    sent: int = 0
    received: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise KernelError(
                f"queue {self.name}: capacity must be >= 1, got {self.capacity}"
            )

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def try_send(self, tid: int, value: int) -> bool:
        """Enqueue ``value``; on a full queue the sender is parked."""
        if self.full:
            if tid not in self.send_waiters:
                self.send_waiters.append(tid)
            return False
        self._items.append(value)
        self.sent += 1
        return True

    def try_recv(self, tid: int) -> tuple[bool, int | None]:
        """Dequeue a value; on an empty queue the receiver is parked."""
        if self.empty:
            if tid not in self.recv_waiters:
                self.recv_waiters.append(tid)
            return False, None
        self.received += 1
        return True, self._items.popleft()

    def pop_send_waiter(self) -> int | None:
        """A slot freed: which parked sender should retry?"""
        if self.send_waiters:
            return self.send_waiters.pop(0)
        return None

    def pop_recv_waiter(self) -> int | None:
        """An item arrived: which parked receiver should retry?"""
        if self.recv_waiters:
            return self.recv_waiters.pop(0)
        return None

    def drop_waiter(self, tid: int) -> None:
        """Remove a dying task from both wait lists."""
        if tid in self.send_waiters:
            self.send_waiters.remove(tid)
        if tid in self.recv_waiters:
            self.recv_waiters.remove(tid)
