"""Kernel synchronization objects with detector-visible wait queues.

The dining-philosophers case (test case 2) needs mutually exclusive
shared resources whose ownership and wait queues the bug detector can
inspect to build a wait-for graph.  :class:`KMutex` is an owned binary
lock; :class:`KSemaphore` a counting semaphore (no owner, so it
contributes no wait-for edges, but its queue still shows starvation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError


@dataclass
class KMutex:
    """A non-recursive, owned, mutually-exclusive resource.

    ``version`` increments on every change to ``owner`` or ``waiters``;
    the bug detector's incrementally maintained wait-for graph uses it
    to skip resources whose edges cannot have moved since its last
    sweep.
    """

    name: str
    owner: int | None = None  # tid of the holding task
    waiters: list[int] = field(default_factory=list)
    acquisitions: int = 0
    contentions: int = 0
    version: int = 0

    def try_acquire(self, tid: int) -> bool:
        """Acquire for ``tid``; on failure the caller blocks and we queue
        the tid."""
        if self.owner is None:
            self.owner = tid
            self.acquisitions += 1
            self.version += 1
            return True
        if self.owner == tid:
            raise KernelError(
                f"task {tid} re-acquiring non-recursive mutex {self.name}"
            )
        if tid not in self.waiters:
            self.waiters.append(tid)
            self.version += 1
        self.contentions += 1
        return False

    def release(self, tid: int) -> int | None:
        """Release by the owner; returns the next owner's tid if a waiter
        was promoted (the kernel must unblock that task)."""
        if self.owner != tid:
            raise KernelError(
                f"task {tid} releasing mutex {self.name} owned by "
                f"{self.owner}"
            )
        self.version += 1
        if self.waiters:
            self.owner = self.waiters.pop(0)
            self.acquisitions += 1
            return self.owner
        self.owner = None
        return None

    def drop_waiter(self, tid: int) -> None:
        """Remove a tid from the wait queue (task deleted while blocked)."""
        if tid in self.waiters:
            self.waiters.remove(tid)
            self.version += 1

    def forfeit(self, tid: int) -> int | None:
        """Owner died without releasing; promote the next waiter.

        Returns the promoted tid, if any.  Used by task_delete so a
        deleted owner does not wedge the resource forever (the deadlock
        we *model* comes from cyclic waiting, not from lost owners).
        """
        if self.owner != tid:
            return None
        self.version += 1
        if self.waiters:
            self.owner = self.waiters.pop(0)
            self.acquisitions += 1
            return self.owner
        self.owner = None
        return None


@dataclass
class KSemaphore:
    """Counting semaphore without ownership."""

    name: str
    count: int = 1
    waiters: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise KernelError(
                f"semaphore {self.name} initial count {self.count} < 0"
            )

    def try_acquire(self, tid: int) -> bool:
        if self.count > 0:
            self.count -= 1
            return True
        if tid not in self.waiters:
            self.waiters.append(tid)
        return False

    def release(self, tid: int) -> int | None:
        """Increment; returns a woken waiter's tid if one was queued."""
        del tid  # semaphores are ownerless; signature kept uniform
        if self.waiters:
            return self.waiters.pop(0)
        self.count += 1
        return None

    def drop_waiter(self, tid: int) -> None:
        if tid in self.waiters:
            self.waiters.remove(tid)

    def forfeit(self, tid: int) -> int | None:
        """Semaphores have no owner; nothing to forfeit."""
        del tid
        return None


#: Union type used by the kernel's resource table.
SyncObject = KMutex | KSemaphore
