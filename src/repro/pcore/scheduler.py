"""Preemptive priority-based scheduling, as in pCore.

pCore "always schedules the task with highest priority to run"; each
task has a unique priority.  The ready structure is therefore a simple
priority-ordered list; preemption happens whenever a higher-priority
task becomes READY while a lower one is RUNNING.  Equal priorities never
occur for live tasks (the kernel enforces uniqueness), but the scheduler
breaks hypothetical ties FIFO for robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError
from repro.pcore.tcb import TaskControlBlock, TaskState


@dataclass
class PriorityScheduler:
    """Ready-queue management for the pCore kernel.

    Higher ``priority`` value runs first.  The RUNNING task is tracked
    here; state transitions themselves are performed by the kernel so the
    scheduler stays a pure policy object.
    """

    _ready: list[TaskControlBlock] = field(default_factory=list)
    current: TaskControlBlock | None = None
    dispatches: int = 0
    preemptions: int = 0

    def enqueue(self, task: TaskControlBlock) -> None:
        """Add a READY task to the ready structure."""
        if task.state is not TaskState.READY:
            raise KernelError(
                f"cannot enqueue task {task.tid} in state {task.state.value}"
            )
        if task in self._ready:
            raise KernelError(f"task {task.tid} already queued")
        self._ready.append(task)
        # Stable sort keeps FIFO order among (hypothetical) equal
        # priorities while ordering by descending priority.
        self._ready.sort(key=lambda t: -t.priority)

    def remove(self, task: TaskControlBlock) -> None:
        """Drop a task from the ready structure (suspend/delete paths)."""
        if task in self._ready:
            self._ready.remove(task)
        if self.current is task:
            self.current = None

    def peek(self) -> TaskControlBlock | None:
        """Highest-priority READY task without dispatching it."""
        return self._ready[0] if self._ready else None

    def should_preempt(self) -> bool:
        """True when a READY task outranks the RUNNING one."""
        if self.current is None:
            return bool(self._ready)
        head = self.peek()
        return head is not None and head.priority > self.current.priority

    def dispatch(self) -> TaskControlBlock | None:
        """Pop the highest-priority READY task and mark it current.

        The caller transitions states; ``dispatch`` only reorders the
        bookkeeping.  Returns ``None`` when the ready list is empty.
        """
        if not self._ready:
            return None
        task = self._ready.pop(0)
        self.current = task
        self.dispatches += 1
        return task

    def yield_current(self) -> None:
        """The RUNNING task gave up the CPU voluntarily."""
        self.current = None

    def ready_tasks(self) -> list[TaskControlBlock]:
        """Snapshot of the ready list, highest priority first."""
        return list(self._ready)

    def __len__(self) -> int:
        return len(self._ready)
