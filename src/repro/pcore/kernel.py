"""The pCore kernel: a stepped core model running tasks and services.

Each :meth:`PCoreKernel.step` performs (in order):

1. wake due sleepers,
2. run the garbage collector when its interval elapses,
3. process **one** pending remote service request (commands interleave
   with task execution at step granularity — the interleaving pTest's
   merger manipulates),
4. dispatch and execute one scheduling step of the highest-priority
   READY task.

Crash semantics (test case 1): pCore sizes its internal memory so that
``max_tasks`` TCBs and stacks always fit.  If an allocation fails while
the live-task count is under the limit, the kernel's accounting has been
corrupted — with the buggy garbage collector this is exactly what the
accumulated leak produces — and the kernel **panics**: it halts, stops
answering the bridge, and records the panic reason for the bug detector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import KernelError
from repro.pcore.memory import (
    DEFAULT_STACK_BYTES,
    GarbageCollector,
    GarbageItem,
    KernelMemory,
    PCORE_INTERNAL_MEMORY_BYTES,
    TCB_BYTES,
)
from repro.pcore.ipc import KMessageQueue
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    QRecv,
    QSend,
    Release,
    Sleep,
    Syscall,
    TaskContext,
    TaskProgram,
    YieldCpu,
    idle_program,
)
from repro.pcore.scheduler import PriorityScheduler
from repro.pcore.services import (
    ServiceCode,
    ServiceRequest,
    ServiceResult,
    ServiceStats,
    ServiceStatus,
)
from repro.pcore.sync import KMutex, KSemaphore, SyncObject
from repro.pcore.tcb import TaskControlBlock, TaskState
from repro.sim.memory import SharedMemory
from repro.sim.trace import (
    CATEGORY_KERNEL,
    CATEGORY_SERVICE,
    CATEGORY_TASK,
    Tracer,
)


@dataclass(frozen=True)
class KernelConfig:
    """Static kernel parameters (paper defaults).

    ``memory_bytes`` can be shrunk in experiments to shorten the time to
    exhaustion under the GC fault without changing the fault itself.
    """

    max_tasks: int = 16
    stack_bytes: int = DEFAULT_STACK_BYTES
    memory_bytes: int = PCORE_INTERNAL_MEMORY_BYTES
    gc_interval: int = 32
    buggy_gc: bool = False
    #: Steps charged when the dispatcher switches to a different task.
    #: pCore's "multiset context switch" (reference [9] of the paper)
    #: exists to keep this small; the ablation bench sweeps it.
    context_switch_cost: int = 0
    #: Mutex priority inheritance: a blocked waiter donates its priority
    #: to the owner until release.  Off by default (classic pCore); the
    #: priority-inversion study toggles it.
    priority_inheritance: bool = False

    def __post_init__(self) -> None:
        if self.max_tasks < 1:
            raise KernelError("max_tasks must be >= 1")
        if self.context_switch_cost < 0:
            raise KernelError("context_switch_cost must be >= 0")
        needed = self.max_tasks * (self.stack_bytes + TCB_BYTES)
        if needed > self.memory_bytes:
            raise KernelError(
                f"memory_bytes={self.memory_bytes} cannot hold "
                f"{self.max_tasks} tasks ({needed} bytes needed)"
            )


@dataclass
class PCoreKernel:
    """The slave runtime system (implements :class:`repro.sim.soc.Core`)."""

    config: KernelConfig = field(default_factory=KernelConfig)
    name: str = "pcore"
    tracer: Tracer | None = None
    shared_memory: SharedMemory | None = None
    reply_handler: Callable[[ServiceResult], None] | None = None

    tasks: dict[int, TaskControlBlock] = field(default_factory=dict)
    resources: dict[str, SyncObject] = field(default_factory=dict)
    msg_queues: dict[str, KMessageQueue] = field(default_factory=dict)
    scheduler: PriorityScheduler = field(default_factory=PriorityScheduler)
    stats: ServiceStats = field(default_factory=ServiceStats)
    memory: KernelMemory = field(init=False)
    gc: GarbageCollector = field(init=False)
    inbox: deque[ServiceRequest] = field(default_factory=deque)
    completed: list[ServiceResult] = field(default_factory=list)

    panic_reason: str | None = None
    panicked_at: int | None = None
    steps: int = 0
    idle_steps: int = 0
    now: int = 0
    #: Remaining dispatcher-switch penalty steps (context_switch_cost).
    _switch_penalty: int = 0
    _last_dispatched: int | None = None
    context_switches: int = 0
    _programs: dict[str, TaskProgram] = field(default_factory=dict)
    #: Values to send into a task generator at its next resume.
    _pending_send: dict[int, object] = field(default_factory=dict)
    #: Messages of senders parked on a full queue, completed at wake.
    _parked_sends: dict[int, tuple[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.memory = KernelMemory(capacity=self.config.memory_bytes)
        self.gc = GarbageCollector(self.memory, buggy=self.config.buggy_gc)
        self._programs["idle"] = idle_program

    # -- program registry -------------------------------------------------

    def register_program(self, name: str, program: TaskProgram) -> None:
        """Make a task body available to TC requests under ``name``."""
        self._programs[name] = program

    # -- Core protocol -----------------------------------------------------

    def is_halted(self) -> bool:
        return self.panic_reason is not None

    def panic(self, reason: str) -> None:
        """Halt the kernel; the crash is what the bug detector looks for."""
        if self.panic_reason is not None:
            return
        self.panic_reason = reason
        self.panicked_at = self.now
        self._trace(CATEGORY_KERNEL, event="panic", reason=reason)

    def step(self, now: int) -> bool:
        """One kernel scheduling step (see module docstring)."""
        if self.is_halted():
            return False
        self.now = now
        self.steps += 1
        try:
            self._wake_sleepers()
            if self.config.gc_interval and self.steps % self.config.gc_interval == 0:
                self.gc.collect()
            worked = self._process_one_request()
            worked |= self._run_one_task_step()
        except KernelError as error:
            # An internal invariant broke: that *is* a kernel crash.
            self.panic(f"kernel fault: {error}")
            return True
        if not worked:
            self.idle_steps += 1
        return worked

    # -- remote interface --------------------------------------------------

    def submit(self, request: ServiceRequest) -> None:
        """Queue a remote service request (called by the bridge)."""
        self.inbox.append(request)

    def _reply(self, result: ServiceResult) -> None:
        self.completed.append(result)
        self._trace(
            CATEGORY_SERVICE,
            service=result.request.service.name,
            target=result.request.target,
            status=result.status.value,
            value=result.value,
        )
        if self.reply_handler is not None:
            self.reply_handler(result)

    def _process_one_request(self) -> bool:
        if not self.inbox:
            return False
        request = self.inbox.popleft()
        result = self.execute_service(request)
        self._reply(result)
        return True

    # -- service semantics ---------------------------------------------------

    def execute_service(self, request: ServiceRequest) -> ServiceResult:
        """Validate and apply one Table I service."""
        if self.is_halted():
            return self._result(request, ServiceStatus.KERNEL_DOWN)
        handlers = {
            ServiceCode.TC: self._svc_create,
            ServiceCode.TD: self._svc_delete,
            ServiceCode.TS: self._svc_suspend,
            ServiceCode.TR: self._svc_resume,
            ServiceCode.TCH: self._svc_chanprio,
            ServiceCode.TY: self._svc_yield,
        }
        result = handlers[request.service](request)
        self.stats.note(result)
        return result

    def _result(
        self,
        request: ServiceRequest,
        status: ServiceStatus,
        value: int | None = None,
        detail: str = "",
    ) -> ServiceResult:
        return ServiceResult(
            request=request,
            status=status,
            value=value,
            detail=detail,
            completed_at=self.now,
        )

    def live_tasks(self) -> list[TaskControlBlock]:
        """Tasks that can still run (everything but TERMINATED zombies)."""
        return [task for task in self.tasks.values() if task.alive]

    def _lookup(self, request: ServiceRequest) -> TaskControlBlock | None:
        if request.target is None:
            return None
        return self.tasks.get(request.target)

    def _svc_create(self, request: ServiceRequest) -> ServiceResult:
        if len(self.live_tasks()) >= self.config.max_tasks:
            return self._result(request, ServiceStatus.TASK_LIMIT)
        priority = request.priority
        if priority is None or priority < 0:
            return self._result(
                request, ServiceStatus.BAD_PRIORITY, detail="missing priority"
            )
        if any(t.priority == priority for t in self.live_tasks()):
            return self._result(
                request,
                ServiceStatus.BAD_PRIORITY,
                detail=f"priority {priority} already in use",
            )
        tcb_block = self.memory.allocate(TCB_BYTES, tag="tcb")
        stack_block = (
            self.memory.allocate(self.config.stack_bytes, tag="stack")
            if tcb_block is not None
            else None
        )
        if tcb_block is None or stack_block is None:
            if tcb_block is not None:
                self.memory.free(tcb_block)
            # pCore's sizing invariant says this must always succeed for
            # a legal task count; failing here means the GC leak ate the
            # heap -> the crash of test case 1.
            self.panic(
                f"task_create allocation failed with "
                f"{len(self.live_tasks())} live tasks "
                f"(leaked={self.gc.leaked_bytes}B, "
                f"free={self.memory.free_bytes}B)"
            )
            return self._result(request, ServiceStatus.NO_MEMORY)
        tid = self._allocate_tid(request.target)
        program_name = request.program or "idle"
        program = self._programs.get(program_name, idle_program)
        context = TaskContext(
            tid=tid, name=f"{program_name}-{tid}", priority=priority
        )
        task = TaskControlBlock(
            tid=tid,
            name=context.name,
            priority=priority,
            program=program(context),
            stack_block=stack_block,
            tcb_block=tcb_block,
            created_at=self.now,
            last_progress=self.now,
        )
        self.tasks[tid] = task
        self.scheduler.enqueue(task)
        self._trace(CATEGORY_TASK, event="create", tid=tid, priority=priority)
        return self._result(request, ServiceStatus.OK, value=tid)

    def _allocate_tid(self, requested: int | None) -> int:
        # Smallest free tid, like pCore's fixed 16-entry task table; tids
        # recycle after termination (and stay within the bridge protocol's
        # 8-bit target field under any workload).
        if requested is not None and requested not in self.tasks:
            return requested
        tid = 1
        while tid in self.tasks:
            tid += 1
        return tid

    def _svc_delete(self, request: ServiceRequest) -> ServiceResult:
        task = self._lookup(request)
        if task is None or not task.alive:
            return self._result(request, ServiceStatus.NO_SUCH_TASK)
        # A remote delete kills the task mid-flight (it never finished on
        # its own) — the condition the buggy GC mishandles.
        self._terminate(task, reason="task_delete", midflight=True)
        return self._result(request, ServiceStatus.OK, value=task.tid)

    def _svc_suspend(self, request: ServiceRequest) -> ServiceResult:
        task = self._lookup(request)
        if task is None or not task.alive:
            return self._result(request, ServiceStatus.NO_SUCH_TASK)
        if task.state is TaskState.SUSPENDED:
            return self._result(
                request, ServiceStatus.ILLEGAL_STATE, detail="already suspended"
            )
        if task.state is TaskState.BLOCKED:
            task.suspended_while_blocked = True
            waiting_on = task.waiting_on or ""
            if waiting_on.startswith("q:"):
                queue = self.msg_queues.get(waiting_on[2:])
                if queue is not None:
                    queue.drop_waiter(task.tid)
            else:
                resource = self.resources.get(waiting_on)
                if resource is not None:
                    resource.drop_waiter(task.tid)
        elif task.state is TaskState.READY:
            self.scheduler.remove(task)
        elif task.state is TaskState.RUNNING:
            self.scheduler.remove(task)
        elif task.state is TaskState.SLEEPING:
            task.wakeup_at = None
        task.transition(TaskState.SUSPENDED)
        self._trace(CATEGORY_TASK, event="suspend", tid=task.tid)
        return self._result(request, ServiceStatus.OK, value=task.tid)

    def _svc_resume(self, request: ServiceRequest) -> ServiceResult:
        task = self._lookup(request)
        if task is None or not task.alive:
            return self._result(request, ServiceStatus.NO_SUCH_TASK)
        if task.state is not TaskState.SUSPENDED:
            # "The task resuming operation can be performed only when the
            # corresponding task is suspended."
            return self._result(
                request,
                ServiceStatus.ILLEGAL_STATE,
                detail=f"cannot resume from {task.state.value}",
            )
        if task.suspended_while_blocked and task.waiting_on is not None:
            # The task was suspended mid-wait: re-attempt the operation
            # it was parked on; on failure it goes straight back to the
            # wait queue.
            task.suspended_while_blocked = False
            if not self._retry_parked_wait(task):
                task.transition(TaskState.BLOCKED)
                self._trace(
                    CATEGORY_TASK, event="resume_reblocked", tid=task.tid
                )
                return self._result(request, ServiceStatus.OK, value=task.tid)
            task.waiting_on = None
        task.transition(TaskState.READY)
        self.scheduler.enqueue(task)
        self._trace(CATEGORY_TASK, event="resume", tid=task.tid)
        return self._result(request, ServiceStatus.OK, value=task.tid)

    def _svc_chanprio(self, request: ServiceRequest) -> ServiceResult:
        task = self._lookup(request)
        if task is None or not task.alive:
            return self._result(request, ServiceStatus.NO_SUCH_TASK)
        priority = request.priority
        if priority is None or priority < 0:
            return self._result(
                request, ServiceStatus.BAD_PRIORITY, detail="missing priority"
            )
        if any(
            t.priority == priority and t.tid != task.tid
            for t in self.live_tasks()
        ):
            return self._result(
                request,
                ServiceStatus.BAD_PRIORITY,
                detail=f"priority {priority} already in use",
            )
        old = task.priority
        task.priority = priority
        if task.state is TaskState.READY:
            self.scheduler.remove(task)
            self.scheduler.enqueue(task)
        self._trace(
            CATEGORY_TASK,
            event="chanprio",
            tid=task.tid,
            old=old,
            new=priority,
        )
        return self._result(request, ServiceStatus.OK, value=task.tid)

    def _svc_yield(self, request: ServiceRequest) -> ServiceResult:
        # Table I: TY terminates the current running task.  A remote TY
        # carrying a target tid models that task invoking task_yield the
        # next time it runs (the committer uses this form so each pair's
        # TY ends its own task); without a target, the scheduler's
        # current task — or the one that would run next — terminates.
        if request.target is not None:
            task = self.tasks.get(request.target)
            if task is None or not task.alive:
                return self._result(request, ServiceStatus.NO_SUCH_TASK)
            self._terminate(task, reason="task_yield")
            return self._result(request, ServiceStatus.OK, value=task.tid)
        task = self.scheduler.current
        if task is None or not task.alive:
            task = self.scheduler.peek()
        if task is None or not task.alive:
            return self._result(request, ServiceStatus.NO_RUNNING_TASK)
        self._terminate(task, reason="task_yield")
        return self._result(request, ServiceStatus.OK, value=task.tid)

    # -- internal state changes ----------------------------------------------

    def _resource(self, name: str) -> SyncObject:
        if name not in self.resources:
            self.resources[name] = KMutex(name=name)
        return self.resources[name]

    def add_semaphore(self, name: str, count: int) -> KSemaphore:
        """Pre-register a counting semaphore (mutexes auto-create)."""
        semaphore = KSemaphore(name=name, count=count)
        self.resources[name] = semaphore
        return semaphore

    def add_message_queue(self, name: str, capacity: int = 8) -> KMessageQueue:
        """Pre-register a task-to-task message queue."""
        queue = KMessageQueue(name=name, capacity=capacity)
        self.msg_queues[name] = queue
        return queue

    def _queue(self, name: str) -> KMessageQueue:
        if name not in self.msg_queues:
            self.msg_queues[name] = KMessageQueue(name=name)
        return self.msg_queues[name]

    def _detach_everywhere(self, task: TaskControlBlock) -> None:
        """Remove a dying task from scheduler and sync structures."""
        self.scheduler.remove(task)
        for resource in self.resources.values():
            resource.drop_waiter(task.tid)
            promoted = resource.forfeit(task.tid)
            if promoted is not None:
                self._unblock(promoted, resource.name)
        for queue in self.msg_queues.values():
            queue.drop_waiter(task.tid)
        self._parked_sends.pop(task.tid, None)

    def _terminate(
        self, task: TaskControlBlock, reason: str, midflight: bool = False
    ) -> None:
        """Tear a task down: detach, mark TERMINATED, reap its memory.

        pCore reaps immediately on any termination path (task_delete,
        task_yield, or the program finishing); the blocks go to the
        garbage collector, whose buggy variant leaks the mid-flight
        kills.
        """
        self._detach_everywhere(task)
        task.transition(TaskState.TERMINATED)
        task.terminated_at = self.now
        self.tasks.pop(task.tid, None)
        blocks = [
            block
            for block in (task.tcb_block, task.stack_block)
            if block is not None
        ]
        if blocks:
            self.gc.defer(
                GarbageItem(
                    tid=task.tid, blocks=blocks, killed_midflight=midflight
                )
            )
        self._trace(
            CATEGORY_TASK,
            event="terminate",
            tid=task.tid,
            reason=reason,
            midflight=midflight,
        )

    def _retry_parked_wait(self, task: TaskControlBlock) -> bool:
        """Re-attempt the blocking operation a resumed task was parked
        on; returns ``True`` when it now completes."""
        waiting_on = task.waiting_on or ""
        if waiting_on.startswith("q:"):
            queue = self._queue(waiting_on[2:])
            if task.tid in self._parked_sends:
                _name, value = self._parked_sends[task.tid]
                if not queue.try_send(task.tid, value):
                    return False
                del self._parked_sends[task.tid]
                self._wake_queue_receiver(queue)
                return True
            delivered, value = queue.try_recv(task.tid)
            if not delivered:
                return False
            self._pending_send[task.tid] = value
            self._wake_queue_sender(queue)
            return True
        return self._resource(waiting_on).try_acquire(task.tid)

    def _donate_priority(self, waiter: TaskControlBlock, resource) -> None:
        """Mutex priority inheritance: boost the owner to the waiter's
        priority so a medium-priority task cannot starve the owner (the
        classic priority-inversion fix)."""
        owner_tid = getattr(resource, "owner", None)
        if owner_tid is None:
            return
        owner = self.tasks.get(owner_tid)
        if owner is None or not owner.alive:
            return
        if owner.priority >= waiter.priority:
            return
        if owner.base_priority is None:
            owner.base_priority = owner.priority
        self._set_priority(owner, waiter.priority)
        self._trace(
            CATEGORY_TASK,
            event="priority_inherit",
            tid=owner.tid,
            boosted_to=waiter.priority,
        )

    def _set_priority(self, task: TaskControlBlock, priority: int) -> None:
        """Change a task's effective priority, keeping queues ordered."""
        task.priority = priority
        if task.state is TaskState.READY:
            self.scheduler.remove(task)
            self.scheduler.enqueue(task)

    def _unblock(self, tid: int, resource_name: str) -> None:
        task = self.tasks.get(tid)
        if task is None or task.state is not TaskState.BLOCKED:
            return
        if task.waiting_on != resource_name:
            return
        task.waiting_on = None
        task.transition(TaskState.READY)
        self.scheduler.enqueue(task)

    def _wake_sleepers(self) -> None:
        for task in self.tasks.values():
            if (
                task.state is TaskState.SLEEPING
                and task.wakeup_at is not None
                and task.wakeup_at <= self.now
            ):
                task.wakeup_at = None
                task.transition(TaskState.READY)
                self.scheduler.enqueue(task)

    # -- task execution ----------------------------------------------------

    def _run_one_task_step(self) -> bool:
        if self._switch_penalty > 0:
            # The dispatcher is mid context switch: the step is consumed
            # saving/restoring task state, not running anything.
            self._switch_penalty -= 1
            return True
        current = self.scheduler.current
        if (
            current is None
            or current.state is not TaskState.RUNNING
            or self.scheduler.should_preempt()
        ):
            if current is not None and current.state is TaskState.RUNNING:
                self.scheduler.preemptions += 1
                current.transition(TaskState.READY)
                self.scheduler.yield_current()
                self.scheduler.enqueue(current)
            dispatched = self.scheduler.dispatch()
            if dispatched is None:
                return False
            dispatched.transition(TaskState.RUNNING)
            if dispatched.tid != self._last_dispatched:
                self.context_switches += 1
                self._last_dispatched = dispatched.tid
                if self.config.context_switch_cost > 0:
                    self._switch_penalty = self.config.context_switch_cost
                    return True  # this step starts the switch
            current = dispatched
        self._execute_step(current)
        return True

    def _execute_step(self, task: TaskControlBlock) -> None:
        task.steps_run += 1
        task.last_progress = self.now
        if task.compute_remaining > 0:
            task.compute_remaining -= 1
            return
        if task.program is None:
            return  # placeholder task: occupies the CPU harmlessly
        try:
            send_value = self._pending_send.pop(task.tid, None)
            syscall = task.program.send(send_value)
        except StopIteration:
            self._terminate(task, reason="returned")
            self.scheduler.yield_current()
            return
        self._apply_syscall(task, syscall)

    def _apply_syscall(self, task: TaskControlBlock, syscall: Syscall) -> None:
        if isinstance(syscall, Compute):
            task.compute_remaining = syscall.units - 1
        elif isinstance(syscall, YieldCpu):
            task.transition(TaskState.READY)
            self.scheduler.yield_current()
            self.scheduler.enqueue(task)
        elif isinstance(syscall, Sleep):
            task.wakeup_at = self.now + syscall.ticks
            task.transition(TaskState.SLEEPING)
            self.scheduler.yield_current()
        elif isinstance(syscall, Acquire):
            resource = self._resource(syscall.resource)
            if not resource.try_acquire(task.tid):
                task.waiting_on = syscall.resource
                task.transition(TaskState.BLOCKED)
                self.scheduler.yield_current()
                if self.config.priority_inheritance:
                    self._donate_priority(task, resource)
        elif isinstance(syscall, Release):
            resource = self._resource(syscall.resource)
            woken = resource.release(task.tid)
            if woken is not None:
                self._unblock(woken, syscall.resource)
            if task.base_priority is not None:
                # Boost ends with the release (single-level inheritance).
                self._set_priority(task, task.base_priority)
                task.base_priority = None
        elif isinstance(syscall, MemRead):
            if self.shared_memory is None:
                raise KernelError("no shared memory attached for MemRead")
            self._pending_send[task.tid] = self.shared_memory.read_u16(
                syscall.address
            )
        elif isinstance(syscall, MemWrite):
            if self.shared_memory is None:
                raise KernelError("no shared memory attached for MemWrite")
            self.shared_memory.write_u16(syscall.address, syscall.value)
        elif isinstance(syscall, QSend):
            queue = self._queue(syscall.queue)
            if queue.try_send(task.tid, syscall.value):
                self._wake_queue_receiver(queue)
            else:
                self._parked_sends[task.tid] = (syscall.queue, syscall.value)
                task.waiting_on = f"q:{syscall.queue}"
                task.transition(TaskState.BLOCKED)
                self.scheduler.yield_current()
        elif isinstance(syscall, QRecv):
            queue = self._queue(syscall.queue)
            delivered, value = queue.try_recv(task.tid)
            if delivered:
                self._pending_send[task.tid] = value
                self._wake_queue_sender(queue)
            else:
                task.waiting_on = f"q:{syscall.queue}"
                task.transition(TaskState.BLOCKED)
                self.scheduler.yield_current()
        elif isinstance(syscall, Exit):
            task.exit_value = syscall.value
            self._terminate(task, reason="exit")
            self.scheduler.yield_current()
        else:
            raise KernelError(f"unknown syscall {type(syscall).__name__}")

    def _wake_queue_receiver(self, queue: KMessageQueue) -> None:
        """An item arrived: complete one parked receiver's QRecv."""
        woken = queue.pop_recv_waiter()
        if woken is None:
            return
        delivered, value = queue.try_recv(woken)
        if not delivered:  # pragma: no cover - item was just enqueued
            raise KernelError(f"queue {queue.name}: wake without item")
        self._pending_send[woken] = value
        self._unblock_from_queue(woken, queue.name)
        self._wake_queue_sender(queue)

    def _wake_queue_sender(self, queue: KMessageQueue) -> None:
        """A slot freed: complete one parked sender's QSend."""
        woken = queue.pop_send_waiter()
        if woken is None:
            return
        parked = self._parked_sends.pop(woken, None)
        if parked is None:  # pragma: no cover - parked with its wait entry
            raise KernelError(f"queue {queue.name}: waiter without message")
        _name, value = parked
        if not queue.try_send(woken, value):  # pragma: no cover
            raise KernelError(f"queue {queue.name}: wake without slot")
        self._unblock_from_queue(woken, queue.name)
        self._wake_queue_receiver(queue)

    def _unblock_from_queue(self, tid: int, queue_name: str) -> None:
        task = self.tasks.get(tid)
        if task is None or task.state is not TaskState.BLOCKED:
            return
        if task.waiting_on != f"q:{queue_name}":
            return
        task.waiting_on = None
        task.transition(TaskState.READY)
        self.scheduler.enqueue(task)

    # -- introspection for the detector ---------------------------------------

    def wait_for_edges(self) -> list[tuple[int, int, str]]:
        """Edges ``(waiter_tid, owner_tid, resource)`` of the wait-for
        graph, from mutex ownership.  Semaphores are ownerless and add no
        edges."""
        edges = []
        for resource in self.resources.values():
            owner = getattr(resource, "owner", None)
            if owner is None:
                continue
            for waiter in resource.waiters:
                edges.append((waiter, owner, resource.name))
        return edges

    def task_states(self) -> dict[int, TaskState]:
        return {tid: task.state for tid, task in self.tasks.items()}

    def describe_tasks(self) -> list[str]:
        return [task.describe() for task in self.tasks.values()]

    def _trace(self, category: str, **payload: object) -> None:
        if self.tracer is not None:
            self.tracer.record(self.now, self.name, category, **payload)
