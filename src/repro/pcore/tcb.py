"""Task control blocks and the pCore task state machine.

A pCore task ("a thread in the POSIX standard" per the paper) is created
with a unique priority by a remote thread and moves through the states
below.  The detector reads these states directly — they are the ``qs``
field of the Definition 2 record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator

from repro.errors import ServiceError


class TaskState(enum.Enum):
    """Lifecycle states of a pCore task."""

    #: Runnable, waiting for the CPU.
    READY = "ready"
    #: Currently executing on the DSP.
    RUNNING = "running"
    #: Suspended by task_suspend; only task_resume makes it READY again.
    SUSPENDED = "suspended"
    #: Blocked on a synchronization object (mutex/semaphore).
    BLOCKED = "blocked"
    #: Sleeping until a wakeup tick.
    SLEEPING = "sleeping"
    #: Finished (exited, yielded via TY, or deleted).
    TERMINATED = "terminated"


#: States from which a task can never run again.
DEAD_STATES = frozenset({TaskState.TERMINATED})

#: Legal state transitions; the kernel asserts each move against this map.
LEGAL_TRANSITIONS: dict[TaskState, frozenset[TaskState]] = {
    TaskState.READY: frozenset(
        {TaskState.RUNNING, TaskState.SUSPENDED, TaskState.TERMINATED}
    ),
    TaskState.RUNNING: frozenset(
        {
            TaskState.READY,
            TaskState.SUSPENDED,
            TaskState.BLOCKED,
            TaskState.SLEEPING,
            TaskState.TERMINATED,
        }
    ),
    # SUSPENDED -> BLOCKED: a task suspended while waiting on a resource
    # re-enters the wait queue when resumed and the resource is still held.
    TaskState.SUSPENDED: frozenset(
        {TaskState.READY, TaskState.BLOCKED, TaskState.TERMINATED}
    ),
    TaskState.BLOCKED: frozenset(
        {TaskState.READY, TaskState.SUSPENDED, TaskState.TERMINATED}
    ),
    TaskState.SLEEPING: frozenset(
        {TaskState.READY, TaskState.SUSPENDED, TaskState.TERMINATED}
    ),
    TaskState.TERMINATED: frozenset(),
}


@dataclass
class TaskControlBlock:
    """Bookkeeping for one pCore task.

    Attributes
    ----------
    tid:
        Task identifier, unique among *live* tasks.
    name:
        Human-readable name for traces (e.g. ``"qsort-3"``).
    priority:
        Scheduling priority; **higher value runs first**.  pCore forks
        each task "with a unique priority"; the kernel enforces
        uniqueness among live tasks.
    state:
        Current :class:`TaskState`.
    program:
        The task body as a generator (see :mod:`repro.pcore.programs`);
        ``None`` for pure service-target placeholder tasks.
    """

    tid: int
    name: str
    priority: int
    state: TaskState = TaskState.READY
    program: Generator | None = None
    stack_block: object | None = None  # MemoryBlock; kept loose to avoid cycle
    tcb_block: object | None = None
    created_at: int = 0
    terminated_at: int | None = None
    #: Simulation time of the last observable progress (ran a step).
    last_progress: int = 0
    #: Total scheduling steps this task has executed.
    steps_run: int = 0
    #: Resource the task is blocked on (``None`` unless BLOCKED).
    waiting_on: str | None = None
    #: Wakeup time when SLEEPING.
    wakeup_at: int | None = None
    #: Pending compute units for the current Compute syscall.
    compute_remaining: int = 0
    #: True when the task was suspended while BLOCKED: on resume it goes
    #: back to the blocked queue rather than READY.
    suspended_while_blocked: bool = False
    #: Original priority while boosted by priority inheritance
    #: (``None`` = not currently boosted).
    base_priority: int | None = None
    exit_value: object | None = None

    def transition(self, new_state: TaskState) -> None:
        """Move to ``new_state``, enforcing the legal-transition map."""
        if new_state is self.state:
            return
        if new_state not in LEGAL_TRANSITIONS[self.state]:
            raise ServiceError(
                f"task {self.tid} ({self.name}): illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def alive(self) -> bool:
        return self.state not in DEAD_STATES

    @property
    def runnable(self) -> bool:
        return self.state is TaskState.READY

    def describe(self) -> str:
        """Short status line used in bug-report dumps."""
        extra = ""
        if self.state is TaskState.BLOCKED and self.waiting_on:
            extra = f" waiting_on={self.waiting_on}"
        return (
            f"tid={self.tid} name={self.name} prio={self.priority} "
            f"state={self.state.value} steps={self.steps_run}{extra}"
        )
