"""Table I: pCore kernel services for task management.

=============  ====  =====================================
task_create    TC    Create a task
task_delete    TD    Delete a task
task_suspend   TS    Suspend a task
task_resume    TR    Resume a task
task_chanprio  TCH   Change the priority of a task
task_yield     TY    Terminate the current running task
=============  ====  =====================================

Note TY's semantics per the paper's Table I: it terminates the *current
running* task (a voluntary-exit service), not a "give up the CPU" call —
that one is the :class:`~repro.pcore.programs.YieldCpu` syscall.

Each service is requested remotely by the master through the bridge; the
kernel validates the request against the task state machine (e.g.
"the task resuming operation can be performed only when the
corresponding task is suspended") and answers with a
:class:`ServiceResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ServiceCode(enum.Enum):
    """The six Table I services, keyed by the paper's abbreviations."""

    TC = "task_create"
    TD = "task_delete"
    TS = "task_suspend"
    TR = "task_resume"
    TCH = "task_chanprio"
    TY = "task_yield"

    @classmethod
    def from_abbreviation(cls, abbreviation: str) -> "ServiceCode":
        return cls[abbreviation]


#: Abbreviation -> full service name, exactly Table I.
SERVICE_ABBREVIATIONS: dict[str, str] = {
    code.name: code.value for code in ServiceCode
}


class ServiceStatus(enum.Enum):
    """Outcome of a service invocation."""

    OK = "ok"
    #: Target task id does not exist (or is already terminated).
    NO_SUCH_TASK = "no_such_task"
    #: The task-state precondition failed (e.g. TR on a non-suspended task).
    ILLEGAL_STATE = "illegal_state"
    #: TC beyond the 16-task limit.
    TASK_LIMIT = "task_limit"
    #: TC could not allocate TCB/stack memory.
    NO_MEMORY = "no_memory"
    #: Priority already in use (pCore priorities are unique) or invalid.
    BAD_PRIORITY = "bad_priority"
    #: TY with no running task to terminate.
    NO_RUNNING_TASK = "no_running_task"
    #: The kernel has panicked; no services are possible.
    KERNEL_DOWN = "kernel_down"


@dataclass(frozen=True)
class ServiceRequest:
    """A remote service invocation as carried by the bridge.

    ``target`` is the slave-side task id for TD/TS/TR/TCH; for TC it is
    the *requested* tid (the master names tasks so the one-to-one
    master-thread/slave-task correspondence holds); TY takes no target.
    """

    service: ServiceCode
    target: int | None = None
    #: TC: priority for the new task; TCH: the new priority.
    priority: int | None = None
    #: TC: registered program name to run (see kernel program registry).
    program: str | None = None
    #: Issuing master thread (for state recording).
    issuer: int | None = None
    #: Sequence number within the merged test pattern.
    sequence: int | None = None

    def describe(self) -> str:
        parts = [self.service.name]
        if self.target is not None:
            parts.append(f"t{self.target}")
        if self.priority is not None:
            parts.append(f"prio={self.priority}")
        if self.program:
            parts.append(self.program)
        return ":".join(parts)


@dataclass(frozen=True)
class ServiceResult:
    """The kernel's reply to one :class:`ServiceRequest`."""

    request: ServiceRequest
    status: ServiceStatus
    #: TC: tid of the created task; TY: tid of the terminated task.
    value: int | None = None
    detail: str = ""
    completed_at: int = 0

    @property
    def ok(self) -> bool:
        return self.status is ServiceStatus.OK


@dataclass
class ServiceStats:
    """Per-service invocation counters kept by the kernel."""

    invoked: dict[str, int] = field(default_factory=dict)
    succeeded: dict[str, int] = field(default_factory=dict)
    failed: dict[str, int] = field(default_factory=dict)

    def note(self, result: ServiceResult) -> None:
        name = result.request.service.name
        self.invoked[name] = self.invoked.get(name, 0) + 1
        bucket = self.succeeded if result.ok else self.failed
        bucket[name] = bucket.get(name, 0) + 1

    def table(self) -> list[tuple[str, str, int, int, int]]:
        """Rows of (abbr, full name, invoked, ok, failed) — Table I plus
        live counters, used by the E1 bench."""
        rows = []
        for code in ServiceCode:
            name = code.name
            rows.append(
                (
                    name,
                    code.value,
                    self.invoked.get(name, 0),
                    self.succeeded.get(name, 0),
                    self.failed.get(name, 0),
                )
            )
        return rows
