"""The pCore memory manager and its garbage collector.

pCore runs in 160 KB of DSP-internal memory with tiny per-task stacks
(512 bytes in the paper's stress test).  The manager is a simple
first-fit free-list allocator over that region: enough fidelity to make
exhaustion a real, observable failure.

Deleted tasks do not free their blocks synchronously; the kernel places
TCB and stack blocks on a garbage list that the :class:`GarbageCollector`
reclaims periodically.  **Test case 1's fault lives here**: with
``buggy=True`` the collector fails to reclaim the blocks of tasks that
were deleted *before terminating on their own* (i.e. killed mid-flight
by a remote ``task_delete``).  Under pTest's churn — keep 16 tasks live,
continuously create and delete — the leak accumulates until allocation
fails and the kernel panics, reproducing the crash the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError

#: pCore's internal memory on the C55x, per the paper: 160 Kbytes.
PCORE_INTERNAL_MEMORY_BYTES = 160 * 1024

#: Stack size used in the paper's stress test.
DEFAULT_STACK_BYTES = 512

#: Modelled size of a task control block.
TCB_BYTES = 64


@dataclass
class MemoryBlock:
    """One allocated region: ``[offset, offset + size)``."""

    offset: int
    size: int
    tag: str = ""
    freed: bool = False


@dataclass
class KernelMemory:
    """First-fit free-list allocator over the internal memory region."""

    capacity: int = PCORE_INTERNAL_MEMORY_BYTES
    #: Free list as sorted, non-overlapping ``(offset, size)`` holes.
    _free: list[tuple[int, int]] = field(default_factory=list, repr=False)
    allocated_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    failures: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise KernelError(f"capacity must be >= 1, got {self.capacity}")
        self._free = [(0, self.capacity)]

    def allocate(self, size: int, tag: str = "") -> MemoryBlock | None:
        """First-fit allocation; returns ``None`` on exhaustion."""
        if size < 1:
            raise KernelError(f"allocation size must be >= 1, got {size}")
        for index, (offset, hole) in enumerate(self._free):
            if hole >= size:
                if hole == size:
                    del self._free[index]
                else:
                    self._free[index] = (offset + size, hole - size)
                self.allocated_bytes += size
                self.allocations += 1
                return MemoryBlock(offset=offset, size=size, tag=tag)
        self.failures += 1
        return None

    def free(self, block: MemoryBlock) -> None:
        """Return a block to the free list, coalescing neighbours."""
        if block.freed:
            raise KernelError(
                f"double free of block at {block.offset:#x} ({block.tag})"
            )
        block.freed = True
        self.allocated_bytes -= block.size
        self.frees += 1
        self._free.append((block.offset, block.size))
        self._free.sort()
        coalesced: list[tuple[int, int]] = []
        for offset, size in self._free:
            if coalesced and coalesced[-1][0] + coalesced[-1][1] == offset:
                previous_offset, previous_size = coalesced[-1]
                coalesced[-1] = (previous_offset, previous_size + size)
            else:
                coalesced.append((offset, size))
        self._free = coalesced

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated_bytes

    def largest_hole(self) -> int:
        return max((size for _offset, size in self._free), default=0)


@dataclass
class GarbageItem:
    """A dead task's blocks awaiting collection."""

    tid: int
    blocks: list[MemoryBlock]
    #: True when the task was deleted remotely before finishing its own
    #: work — the condition the buggy collector mishandles.
    killed_midflight: bool


@dataclass
class GarbageCollector:
    """Deferred reclamation of dead-task memory.

    Parameters
    ----------
    memory:
        The allocator to return blocks to.
    buggy:
        When ``True``, items whose task was killed mid-flight are
        *dropped without being freed* — the modelled pCore GC fault of
        the paper's first test case.  Their bytes are counted in
        :attr:`leaked_bytes`.
    """

    memory: KernelMemory
    buggy: bool = False
    pending: list[GarbageItem] = field(default_factory=list)
    collected: int = 0
    leaked_items: int = 0
    leaked_bytes: int = 0

    def defer(self, item: GarbageItem) -> None:
        """Queue a dead task's blocks for the next collection cycle."""
        self.pending.append(item)

    def collect(self) -> int:
        """Run one collection cycle; returns bytes reclaimed."""
        reclaimed = 0
        remaining: list[GarbageItem] = []
        for item in self.pending:
            if self.buggy and item.killed_midflight:
                # The fault: the collector loses track of these blocks.
                self.leaked_items += 1
                self.leaked_bytes += sum(block.size for block in item.blocks)
                continue
            for block in item.blocks:
                reclaimed += block.size
                self.memory.free(block)
            self.collected += 1
        self.pending = remaining
        return reclaimed

    @property
    def pending_bytes(self) -> int:
        return sum(
            block.size for item in self.pending for block in item.blocks
        )
