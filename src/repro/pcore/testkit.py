"""Synchronous kernel-service helpers for tests and examples.

These used to live in ``tests/conftest.py``, but plain ``from conftest
import ...`` statements resolve against whichever ``conftest`` module
pytest happened to import first (``benchmarks/conftest.py`` collides
with ``tests/conftest.py`` under rootdir sys.path insertion).  Living
in the package proper makes them importable from anywhere — tests,
benches, notebooks — without that ambiguity.
"""

from __future__ import annotations

from repro.pcore.kernel import PCoreKernel
from repro.pcore.services import ServiceCode, ServiceRequest, ServiceResult


def create_task(
    kernel: PCoreKernel,
    priority: int,
    program: str = "idle",
    target: int | None = None,
) -> ServiceResult:
    """Run a TC service directly and return its result."""
    return kernel.execute_service(
        ServiceRequest(
            service=ServiceCode.TC,
            target=target,
            priority=priority,
            program=program,
        )
    )


def run_service(
    kernel: PCoreKernel, service: ServiceCode, **kwargs
) -> ServiceResult:
    """Execute any service synchronously."""
    return kernel.execute_service(ServiceRequest(service=service, **kwargs))
