"""Test campaigns: sweeps of adaptive-test runs with aggregation.

A campaign runs scenario variants across seeds, aggregates every run's
outcome *incrementally* as results stream off the executor, and
produces summary rows — the machinery behind the comparison benches,
exposed as a public API so downstream users can script their own
studies.

Variants are either raw builders (``builder(seed) -> AdaptiveTest``)
or, preferably, :class:`~repro.workloads.registry.ScenarioRef` values
added via :meth:`Campaign.add_scenario` /
:meth:`Campaign.add_grid` — refs are picklable by construction, so a
ref-only campaign always qualifies for process-pool dispatch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.ptest.chaos import ChaosSpec
from repro.ptest.detector import AnomalyKind
from repro.ptest.executor import (
    CellExecutor,
    QuarantineReport,
    ResultSink,
    ScenarioBuilder,
    WorkCell,
)
from repro.ptest.harness import AdaptiveTest, TestRunResult
from repro.ptest.pool import WorkerPool
from repro.workloads.registry import ScenarioRef, scenario_ref


def grid_variants(
    name: str,
    scenario: str,
    param_grid: Mapping[str, Sequence[Any]],
    **fixed: Any,
) -> dict[str, ScenarioRef]:
    """Expand a parameter grid into named :class:`ScenarioRef` variants.

    ``param_grid`` maps parameter names to the values to sweep; the
    cartesian product (in the mapping's key order) becomes variants
    named ``{name}[k1=v1,k2=v2,...]``, each mapped to a validated ref
    with ``fixed`` parameters applied.  This is the shared expansion
    behind :meth:`Campaign.add_grid` and the adaptive campaign's
    round-refinement policies (``GridZoom`` re-invokes it every round
    on a narrowed grid), so variant naming stays identical wherever a
    grid is built.
    """
    overlap = sorted(set(param_grid) & set(fixed))
    if overlap:
        raise ConfigError(
            f"parameters {overlap} appear both fixed and in the grid"
        )
    keys = list(param_grid)
    variants: dict[str, ScenarioRef] = {}
    for combo in itertools.product(*(param_grid[key] for key in keys)):
        point = dict(zip(keys, combo))
        label = ",".join(f"{key}={point[key]}" for key in keys)
        variant = f"{name}[{label}]" if label else name
        if variant in variants:
            raise ValueError(f"variant {variant!r} already registered")
        variants[variant] = scenario_ref(scenario, **fixed, **point)
    return variants


@dataclass(frozen=True)
class DetectionSample:
    """One detecting run's reproduction-relevant fields, as captured by
    :class:`DetectionCapture` — everything a refinement policy needs to
    steer the next round (or mint a replay cell) without retaining the
    full :class:`~repro.ptest.harness.TestRunResult`."""

    variant: str
    seed: int
    kind: str
    merged_op: str
    #: The interleaving at detection, rendered (``TC[p0#1] ...``) — the
    #: picklable currency of :mod:`repro.ptest.replay`.
    merged_description: str


@dataclass
class DetectionCapture:
    """Streaming sink retaining a bounded sample of detections.

    Feeds round-aware consumers (the adaptive campaign hands one to
    every round's :meth:`Campaign.run`): per variant, the first
    ``limit_per_variant`` detecting cells — submission order, so the
    sample is identical at any ``(workers, batch_size, warm/cold)`` —
    are kept as compact :class:`DetectionSample` values.  Compatible
    with ``keep_results=False`` campaigns: only strings and counters
    survive the stream.
    """

    limit_per_variant: int = 4
    samples: dict[str, list[DetectionSample]] = field(default_factory=dict)

    def accept(self, cell: WorkCell, result: TestRunResult) -> None:
        if not result.found_bug:
            return
        kept = self.samples.setdefault(cell.variant, [])
        if len(kept) >= self.limit_per_variant:
            return
        report = result.report
        kept.append(
            DetectionSample(
                variant=cell.variant,
                seed=cell.seed,
                kind=report.primary.kind.value,
                merged_op=report.merged_op,
                merged_description=report.merged_description,
            )
        )

    def for_variant(self, variant: str) -> tuple[DetectionSample, ...]:
        return tuple(self.samples.get(variant, ()))


@dataclass(frozen=True)
class CampaignRow:
    """Summary of one variant across its seeds."""

    variant: str
    runs: int
    detections: int
    kinds: tuple[str, ...]
    mean_ticks_to_detection: float
    mean_commands: float

    @property
    def rate(self) -> float:
        return self.detections / self.runs if self.runs else 0.0


@dataclass
class _RowAccumulator:
    """Streams one variant's results into a :class:`CampaignRow`.

    Keeps only counters and sums, never the results themselves, so a
    ``keep_results=False`` campaign aggregates arbitrarily many cells
    in O(variants) memory.
    """

    variant: str
    runs: int = 0
    detections: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)
    ticks_sum: int = 0
    commands_sum: int = 0

    def add(self, result: TestRunResult) -> None:
        self.runs += 1
        self.commands_sum += result.commands_issued
        if result.found_bug:
            self.detections += 1
            kind = result.report.primary.kind.value
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
            self.ticks_sum += result.report.primary.detected_at

    def row(self) -> CampaignRow:
        return CampaignRow(
            variant=self.variant,
            runs=self.runs,
            detections=self.detections,
            kinds=tuple(sorted(self.kind_counts)),
            mean_ticks_to_detection=(
                self.ticks_sum / self.detections if self.detections else 0.0
            ),
            mean_commands=(
                self.commands_sum / self.runs if self.runs else 0.0
            ),
        )


@dataclass
class _CampaignSink:
    """Executor sink feeding the per-variant accumulators (and,
    optionally, the campaign's retained per-run results)."""

    accumulators: dict[str, _RowAccumulator]
    retained: dict[str, list[TestRunResult]] | None = None

    def accept(self, cell: WorkCell, result: TestRunResult) -> None:
        self.accumulators[cell.variant].add(result)
        if self.retained is not None:
            self.retained.setdefault(cell.variant, []).append(result)


@dataclass
class Campaign:
    """A named set of scenario variants, each swept over seeds.

    ``workers`` sets the default parallelism of :meth:`run`: ``None``
    (the default) derives it from ``pool`` when one is given and
    otherwise runs serially, ``1`` forces every (variant, seed) cell
    serially in this process even when a pool is configured, ``n > 1``
    fans the cells out over a persistent worker pool in batches of
    ``batch_size`` cells per submission (see
    :class:`~repro.ptest.executor.CellExecutor`).  By default that is
    the process-wide shared :class:`~repro.ptest.pool.WorkerPool` for
    ``workers``, so consecutive :meth:`run` calls reuse warm worker
    processes (and their per-variant scenario caches); pass ``pool=``
    for explicit lifetime control.  Cells are independent — each run
    derives all its randomness from its own seed — and results are
    aggregated in submission order, so the summary rows are identical
    at any ``(workers, batch_size)``, warm or cold.

    Prefer :meth:`add_scenario` / :meth:`add_grid` (registry-backed
    :class:`~repro.workloads.registry.ScenarioRef` variants, always
    parallelisable) over :meth:`add_variant` with a raw callable —
    callables that cannot be pickled force the serial path with a
    :class:`RuntimeWarning`.

    ``keep_results=False`` drops per-run :class:`TestRunResult` objects
    after they are folded into the row accumulators, so huge sweeps run
    in constant memory (``results`` then stays empty).
    """

    seeds: Iterable[int] = (0, 1, 2, 3, 4)
    variants: dict[str, ScenarioBuilder] = field(default_factory=dict)
    results: dict[str, list[TestRunResult]] = field(default_factory=dict)
    workers: int | None = None
    batch_size: int | None = None
    pool: "WorkerPool | None" = None
    #: Vectorized pattern sampling inside worker batches — forwarded to
    #: :class:`~repro.ptest.executor.CellExecutor`; rows are identical
    #: at every setting.
    batch_sampling: bool | None = None
    #: Worker-side batched merging for same-variant cell groups —
    #: forwarded to :class:`~repro.ptest.executor.CellExecutor`; rows
    #: are identical at every setting.
    merge_batch: bool | None = None
    keep_results: bool = True
    #: Per-cell watchdog deadline in seconds — forwarded to
    #: :class:`~repro.ptest.executor.CellExecutor`; hung pool batches
    #: are killed and retried instead of wedging the campaign.
    cell_timeout: float | None = None
    #: Bisect repeatedly-failing batches down to the poison cells and
    #: finish with partial results (see :meth:`run` /
    #: :attr:`last_quarantine`) instead of raising.
    quarantine: bool = False
    #: Seeded fault injection at the pool boundary (tests/benches only);
    #: see :class:`~repro.ptest.chaos.ChaosSpec`.
    chaos: "ChaosSpec | None" = None
    #: ``WorkerPool.pool_id`` the last :meth:`run` dispatched through
    #: (``None`` after a serial run) — equal ids across runs certify
    #: warm-pool reuse.
    last_pool_id: int | None = field(default=None, init=False)
    #: :class:`~repro.ptest.executor.QuarantineReport` of the last
    #: :meth:`run` when ``quarantine`` was on (``None`` otherwise).
    last_quarantine: "QuarantineReport | None" = field(
        default=None, init=False
    )
    #: Per-variant streaming aggregates of the last :meth:`run` — what
    #: :meth:`detection_rate` / :meth:`kind_counts` consult, so those
    #: accessors stay correct with ``keep_results=False``.
    _accumulators: dict[str, _RowAccumulator] = field(
        default_factory=dict, repr=False, init=False
    )

    def add_variant(self, name: str, builder: ScenarioBuilder) -> None:
        """Register a variant under ``name`` (builder or ScenarioRef)."""
        if name in self.variants:
            raise ValueError(f"variant {name!r} already registered")
        self.variants[name] = builder

    def add_scenario(self, name: str, scenario: str, **params: Any) -> None:
        """Register registry scenario ``scenario`` (with fixed
        ``params``) as variant ``name``."""
        self.add_variant(name, scenario_ref(scenario, **params))

    def add_grid(
        self,
        name: str,
        scenario: str,
        param_grid: Mapping[str, Sequence[Any]],
        **fixed: Any,
    ) -> list[str]:
        """Register one variant per point of ``param_grid``.

        ``param_grid`` maps parameter names to the values to sweep; the
        cartesian product (in the mapping's key order) becomes variants
        named ``{name}[k1=v1,k2=v2,...]`` (see :func:`grid_variants`).
        ``fixed`` parameters are applied to every point.  Returns the
        variant names, in registration order.
        """
        expanded = grid_variants(name, scenario, param_grid, **fixed)
        for variant, ref in expanded.items():
            self.add_variant(variant, ref)
        return list(expanded)

    def run(
        self,
        workers: int | None = None,
        batch_size: int | None = None,
        sink: ResultSink | None = None,
    ) -> list[CampaignRow]:
        """Execute every variant over every seed; returns summary rows.

        ``workers`` / ``batch_size`` override the campaign defaults for
        this call.  Rows are aggregated incrementally as results stream
        back; ``sink`` (if given) additionally receives every
        ``(cell, result)`` pair in submission order.
        """
        effective = self.workers if workers is None else workers
        cells = [
            WorkCell(variant=name, seed=seed)
            for name in self.variants
            for seed in self.seeds
        ]
        accumulators = {
            name: _RowAccumulator(variant=name) for name in self.variants
        }
        retained: dict[str, list[TestRunResult]] | None = None
        if self.keep_results:
            retained = {name: [] for name in self.variants}
        campaign_sink = _CampaignSink(
            accumulators=accumulators, retained=retained
        )
        fan_out: ResultSink = campaign_sink
        if sink is not None:
            fan_out = TeeSink((campaign_sink, sink))
        executor = CellExecutor(
            workers=effective,
            batch_size=(
                self.batch_size if batch_size is None else batch_size
            ),
            pool=self.pool,
            batch_sampling=self.batch_sampling,
            merge_batch=self.merge_batch,
            cell_timeout=self.cell_timeout,
            quarantine=self.quarantine,
            chaos=self.chaos,
        )
        executor.run_cells(self.variants, cells, sink=fan_out)
        self.last_pool_id = executor.last_pool_id
        self.last_quarantine = executor.last_quarantine
        if retained is not None:
            self.results.update(retained)
        self._accumulators.update(accumulators)
        return [accumulators[name].row() for name in self.variants]

    def detection_rate(self, variant: str) -> float:
        accumulator = self._accumulators.get(variant)
        if accumulator is None or not accumulator.runs:
            return 0.0
        return accumulator.detections / accumulator.runs

    def kind_counts(self, variant: str) -> dict[str, int]:
        accumulator = self._accumulators.get(variant)
        if accumulator is None:
            return {}
        return dict(accumulator.kind_counts)


@dataclass
class TeeSink:
    """Fans each accepted result out to several sinks, in order."""

    sinks: tuple[ResultSink, ...]

    def accept(self, cell: WorkCell, result: TestRunResult) -> None:
        for sink in self.sinks:
            sink.accept(cell, result)


def _op_variant_builder(
    builder_for_op: Callable[[str, int], AdaptiveTest], op: str, seed: int
) -> AdaptiveTest:
    """Module-level adapter binding ``op`` for legacy ``compare_ops``
    callables — picklable whenever ``builder_for_op`` is."""
    return builder_for_op(op, seed)


def compare_ops(
    scenario: str | Callable[[str, int], AdaptiveTest],
    ops: Iterable[str],
    seeds: Iterable[int],
    expected: AnomalyKind,
    *,
    workers: int | None = None,
    batch_size: int | None = None,
    pool: WorkerPool | None = None,
    params: Mapping[str, Any] | None = None,
) -> list[CampaignRow]:
    """Convenience: one campaign variant per merge op, detections scored
    against the expected anomaly class.

    ``scenario`` is preferably a registry name whose builder takes an
    ``op`` parameter (e.g. ``"philosophers"``) — the sweep then runs on
    :class:`~repro.workloads.registry.ScenarioRef` grid variants and
    parallelises cleanly at any ``workers``/``batch_size``.  A legacy
    ``builder_for_op(op, seed)`` callable is also accepted (it must be
    picklable itself to leave the serial path).
    """
    campaign = Campaign(
        seeds=tuple(seeds), workers=workers, batch_size=batch_size, pool=pool
    )
    if isinstance(scenario, str):
        for op in ops:
            campaign.add_scenario(op, scenario, op=op, **(params or {}))
    else:
        if params:
            raise ValueError(
                "params are only supported with registry scenario names"
            )
        from functools import partial

        for op in ops:
            campaign.add_variant(
                op, partial(_op_variant_builder, scenario, op)
            )
    rows = campaign.run()
    # Re-score detections against the expected anomaly class.
    rescored = []
    for row in rows:
        hits = sum(
            1
            for run in campaign.results[row.variant]
            if run.found_bug and run.report.primary.kind is expected
        )
        rescored.append(
            CampaignRow(
                variant=row.variant,
                runs=row.runs,
                detections=hits,
                kinds=row.kinds,
                mean_ticks_to_detection=row.mean_ticks_to_detection,
                mean_commands=row.mean_commands,
            )
        )
    return rescored
