"""Test campaigns: sweeps of adaptive-test runs with aggregation.

A campaign runs a scenario builder across seeds (and optionally across
parameter variants), collects every run's outcome and produces summary
rows — the machinery behind the comparison benches, exposed as a public
API so downstream users can script their own studies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ptest.detector import AnomalyKind
from repro.ptest.executor import CellExecutor, ScenarioBuilder, WorkCell
from repro.ptest.harness import AdaptiveTest, TestRunResult


@dataclass(frozen=True)
class CampaignRow:
    """Summary of one variant across its seeds."""

    variant: str
    runs: int
    detections: int
    kinds: tuple[str, ...]
    mean_ticks_to_detection: float
    mean_commands: float

    @property
    def rate(self) -> float:
        return self.detections / self.runs if self.runs else 0.0


@dataclass
class Campaign:
    """A named set of scenario variants, each swept over seeds.

    ``workers`` sets the default parallelism of :meth:`run`: ``1`` runs
    every (variant, seed) cell serially in this process, ``n > 1`` fans
    the cells out over a process pool (see
    :class:`~repro.ptest.executor.CellExecutor`).  Cells are
    independent — each run derives all its randomness from its own
    seed — and results are aggregated in submission order, so the
    summary rows are identical at any worker count.  Builders that
    cannot be pickled (lambdas, closures) fall back to the serial path
    with a :class:`RuntimeWarning`.
    """

    seeds: Iterable[int] = (0, 1, 2, 3, 4)
    variants: dict[str, ScenarioBuilder] = field(default_factory=dict)
    results: dict[str, list[TestRunResult]] = field(default_factory=dict)
    workers: int = 1

    def add_variant(self, name: str, builder: ScenarioBuilder) -> None:
        if name in self.variants:
            raise ValueError(f"variant {name!r} already registered")
        self.variants[name] = builder

    def run(self, workers: int | None = None) -> list[CampaignRow]:
        """Execute every variant over every seed; returns summary rows.

        ``workers`` overrides the campaign default for this call.
        """
        effective = self.workers if workers is None else workers
        cells = [
            WorkCell(variant=name, seed=seed)
            for name in self.variants
            for seed in self.seeds
        ]
        outcomes = CellExecutor(workers=effective).run_cells(
            self.variants, cells
        )
        rows = []
        for name in self.variants:
            runs = [
                outcome
                for cell, outcome in zip(cells, outcomes)
                if cell.variant == name
            ]
            self.results[name] = runs
            rows.append(self._summarise(name, runs))
        return rows

    @staticmethod
    def _summarise(name: str, runs: list[TestRunResult]) -> CampaignRow:
        detections = [run for run in runs if run.found_bug]
        kinds = tuple(
            sorted({run.report.primary.kind.value for run in detections})
        )
        ticks = [run.report.primary.detected_at for run in detections]
        commands = [run.commands_issued for run in runs]
        return CampaignRow(
            variant=name,
            runs=len(runs),
            detections=len(detections),
            kinds=kinds,
            mean_ticks_to_detection=(
                statistics.mean(ticks) if ticks else 0.0
            ),
            mean_commands=statistics.mean(commands) if commands else 0.0,
        )

    def detection_rate(self, variant: str) -> float:
        runs = self.results.get(variant, [])
        if not runs:
            return 0.0
        return sum(run.found_bug for run in runs) / len(runs)

    def kind_counts(self, variant: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for run in self.results.get(variant, []):
            if run.found_bug:
                kind = run.report.primary.kind.value
                counts[kind] = counts.get(kind, 0) + 1
        return counts


def compare_ops(
    builder_for_op: Callable[[str, int], AdaptiveTest],
    ops: Iterable[str],
    seeds: Iterable[int],
    expected: AnomalyKind,
) -> list[CampaignRow]:
    """Convenience: one campaign variant per merge op.

    ``builder_for_op(op, seed)`` must return a ready AdaptiveTest.
    """
    campaign = Campaign(seeds=tuple(seeds))
    for op in ops:
        campaign.add_variant(op, lambda seed, op=op: builder_for_op(op, seed))
    rows = campaign.run()
    # Re-score detections against the expected anomaly class.
    rescored = []
    for row in rows:
        hits = sum(
            1
            for run in campaign.results[row.variant]
            if run.found_bug and run.report.primary.kind is expected
        )
        rescored.append(
            CampaignRow(
                variant=row.variant,
                runs=row.runs,
                detections=hits,
                kinds=row.kinds,
                mean_ticks_to_detection=row.mean_ticks_to_detection,
                mean_commands=row.mean_commands,
            )
        )
    return rescored
