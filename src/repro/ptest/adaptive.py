"""Multi-round adaptive campaigns: generate → execute → detect → refine.

A :class:`~repro.ptest.campaign.Campaign` sweeps a *fixed* variant set
once.  :class:`AdaptiveCampaign` closes the loop the ROADMAP names —
"multi-round adaptive campaigns that feed detection results back into
ref parameters without leaving the warm pool": it runs a campaign in
rounds on **one** shared :class:`~repro.ptest.pool.WorkerPool`
(``pool_id`` constant across rounds — round 2+ never pays pool spawn),
and between rounds hands each round's per-variant detection rates,
bug-kind counts and sampled detecting interleavings to a pluggable
:class:`RefinePolicy` that emits the next round's variants.

Built-in policies:

:class:`GridZoom`
    Narrows a parameter grid around the highest-detection cell — each
    varying parameter keeps the best value and its immediate grid
    neighbours, so successive rounds concentrate seeds on the region
    where detections cluster.
:class:`SuccessiveHalving`
    Drops the bottom half of variants (by detection rate) each round —
    the classic budget-reallocation racer.
:class:`ReplayFocus`
    Turns detecting runs' recorded interleavings into merged-pattern
    replay cells: the detecting pattern's sources are re-merged under
    the policy's ops via :meth:`PatternMerger.merge_symbols` and
    shipped as picklable :class:`~repro.ptest.replay.ReplayRef`
    variants — riding the executor's deduped batch-table wire format
    and worker-side merged-pattern cache like any registry scenario.
:class:`Repeat`
    Re-emits the same variants every round — the stability/benchmark
    baseline (rounds differ only in warm-up state, never in results).

Policies compose into staged schedules (zoom for three rounds, then
replay once detections plateau) via
:class:`~repro.ptest.pipeline.PolicyPipeline` — itself a
:class:`RefinePolicy`, so composed schedules run through this engine
unchanged.  Between rounds the campaign *pre-warms* the worker pool:
the refined round's distinct refs ship to the workers the moment the
policy emits them (see :meth:`~repro.ptest.pool.WorkerPool.prewarm`),
so cross-round scenario resolution and automaton compilation overlap
round setup instead of serialising into the next round's first batches.

**Determinism contract.**  For a fixed seed set and policy, the
round-by-round variant sets and every round's rows are bit-identical at
any ``(workers, batch_size, warm/cold, prewarm on/off)`` execution
configuration:
campaign rows already are, detection samples are captured in submission
order, and every built-in policy is a pure function of its
:class:`RoundObservation` (stochastic re-merging derives its RNG seeds
from the policy seed and round/sample indices alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from pathlib import Path

from repro.errors import ConfigError
from repro.ptest.campaign import (
    Campaign,
    CampaignRow,
    DetectionCapture,
    DetectionSample,
    TeeSink,
    grid_variants,
)
from repro.ptest.chaos import ChaosSpec
from repro.ptest.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.ptest.executor import (
    QuarantinedCell,
    QuarantineReport,
    ResultSink,
    ScenarioBuilder,
)
from repro.ptest.merger import PatternMerger
from repro.ptest.pool import WorkerPool, get_pool
from repro.ptest.replay import ReplayRef, parse_merged_description, replay_ref
from repro.workloads.registry import ScenarioRef, scenario_ref


@dataclass(frozen=True)
class RoundObservation:
    """What one round produced — the policy's whole world.

    Also the per-round record kept in :class:`AdaptiveResult`, so what
    a policy saw and what the caller can audit are the same object.
    """

    index: int
    #: The variants this round ran, in row order.
    variants: dict[str, ScenarioBuilder]
    rows: tuple[CampaignRow, ...]
    #: Per-variant bounded sample of detecting cells (submission order).
    detections: dict[str, tuple[DetectionSample, ...]]
    #: ``WorkerPool.pool_id`` the round dispatched through (``None`` for
    #: serial rounds) — constant across rounds certifies warm reuse.
    pool_id: int | None
    #: Partial-result accounting of the round when the campaign ran with
    #: ``quarantine=True`` (``None`` otherwise).  Quarantined cells are
    #: configuration-independent, so this rides inside the determinism
    #: contract rather than alongside it.
    quarantine: "QuarantineReport | None" = None

    @property
    def total_detections(self) -> int:
        return sum(row.detections for row in self.rows)

    def row(self, variant: str) -> CampaignRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(f"no row for variant {variant!r}")

    def rate(self, variant: str) -> float:
        return self.row(variant).rate

    def kind_counts(self) -> dict[str, int]:
        """Bug-kind histogram over this round's sampled detections."""
        counts: dict[str, int] = {}
        for samples in self.detections.values():
            for sample in samples:
                counts[sample.kind] = counts.get(sample.kind, 0) + 1
        return counts

    def best_variant(self) -> str | None:
        """Highest-detection-rate variant (ties keep the earliest row);
        ``None`` when the round detected nothing."""
        best: str | None = None
        best_rate = 0.0
        for row in self.rows:
            if row.detections and row.rate > best_rate:
                best, best_rate = row.variant, row.rate
        return best

    def iter_samples(self) -> Iterable[DetectionSample]:
        """Detection samples in row order, then capture order."""
        for row in self.rows:
            yield from self.detections.get(row.variant, ())


@runtime_checkable
class RefinePolicy(Protocol):
    """Maps one round's observation to the next round's variants.

    Return a (non-empty) ``name -> builder`` mapping to continue, or
    ``None``/empty to stop the campaign early (converged, or nothing
    detected to steer by).  Implementations must be deterministic in
    the observation — that is what extends the campaign determinism
    contract across rounds.
    """

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        """Produce the next round's variants (``None`` = stop)."""
        ...  # pragma: no cover - protocol


def _sorted_values(values: Iterable[Any]) -> list[Any]:
    """Distinct values in a deterministic order (numeric when possible)."""
    distinct = list(dict.fromkeys(values))
    try:
        return sorted(distinct)
    except TypeError:  # mixed/unorderable types: repr order is stable
        return sorted(distinct, key=repr)


@dataclass
class GridZoom:
    """Narrow the parameter grid around the highest-detection cell.

    Every round, each varying parameter's value list shrinks to a
    window of half its size (rounded up), centred on the best cell's
    value in sorted value order and clamped to the list — so a
    five-value sweep zooms 5 → 3 → 2 → 1, and a binary parameter pins
    to the winning value immediately.  Parameters narrowed to a single
    value ride along as fixed.  Stops when nothing was detected (no
    gradient to follow) or the grid cannot narrow further.

    ``params`` restricts zooming to the named parameters (others keep
    their full value lists); ``None`` zooms every varying parameter.
    """

    params: tuple[str, ...] | None = None

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        best = observation.best_variant()
        if best is None:
            return None
        refs = self._refs(observation)
        scenario = self._scenario_name(refs)
        key_sets = {
            name: tuple(param for param, _v in ref.params)
            for name, ref in refs.items()
        }
        if len(set(key_sets.values())) > 1:
            raise ConfigError(
                "GridZoom needs every variant to carry the same "
                f"parameter set (a grid), got {sorted(set(key_sets.values()))}"
            )
        value_lists: dict[str, list[Any]] = {}
        for ref in refs.values():
            for param, value in ref.params:
                value_lists.setdefault(param, []).append(value)
        value_lists = {
            param: _sorted_values(values)
            for param, values in value_lists.items()
        }
        if self.params is not None:
            unknown = sorted(set(self.params) - set(value_lists))
            if unknown:
                raise ConfigError(
                    f"GridZoom params {unknown} are not parameters of "
                    f"the observed variants; known: {sorted(value_lists)}"
                )
        best_point = dict(refs[best].params)
        zoom = (
            set(self.params)
            if self.params is not None
            else {p for p, vs in value_lists.items() if len(vs) > 1}
        )
        grid: dict[str, list[Any]] = {}
        fixed: dict[str, Any] = {}
        for param, values in value_lists.items():
            if len(values) == 1:
                fixed[param] = values[0]
            elif param in zoom:
                window = -(-len(values) // 2)
                at = values.index(best_point[param])
                start = min(
                    max(0, at - (window - 1) // 2), len(values) - window
                )
                grid[param] = values[start : start + window]
            else:
                grid[param] = values
        if not grid:
            return None  # every parameter already pinned: converged
        refined = grid_variants(
            best.split("[", 1)[0], scenario, grid, **fixed
        )
        # Converged = same *refs* as the round just ran.  Names are not
        # comparable across rounds: round-1 labels render the user's
        # raw grid values ("ordered=false"), refined labels render the
        # coerced ref params ("ordered=False") — comparing by name
        # would rerun an identical grid once more under new spellings.
        if set(refined.values()) == set(refs.values()):
            return None  # no further narrowing possible
        return refined

    @staticmethod
    def _refs(observation: RoundObservation) -> dict[str, ScenarioRef]:
        refs: dict[str, ScenarioRef] = {}
        for name, builder in observation.variants.items():
            if not isinstance(builder, ScenarioRef):
                raise ConfigError(
                    f"GridZoom needs ScenarioRef variants to read "
                    f"parameters from; variant {name!r} is "
                    f"{type(builder).__name__}"
                )
            refs[name] = builder
        return refs

    @staticmethod
    def _scenario_name(refs: Mapping[str, ScenarioRef]) -> str:
        names = sorted({ref.name for ref in refs.values()})
        if len(names) != 1:
            raise ConfigError(
                f"GridZoom needs a single-scenario grid, got {names}"
            )
        return names[0]


@dataclass
class SuccessiveHalving:
    """Keep the top half of variants (by detection rate) each round.

    Ranking is by descending rate with ties broken by row order, and
    survivors keep their original relative order, so the emitted
    mapping — and therefore every later round — is deterministic.
    Stops when nothing was detected or ``min_variants`` is reached.
    """

    min_variants: int = 1

    def __post_init__(self) -> None:
        if self.min_variants < 1:
            raise ConfigError(
                f"min_variants must be >= 1, got {self.min_variants}"
            )

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        if observation.total_detections == 0:
            return None
        rows = observation.rows
        count = len(rows)
        keep = max(self.min_variants, -(-count // 2))
        if keep >= count:
            return None  # nothing left to drop
        ranked = sorted(
            range(count), key=lambda i: (-rows[i].rate, i)
        )
        survivors = {rows[i].variant for i in ranked[:keep]}
        return {
            name: builder
            for name, builder in observation.variants.items()
            if name in survivors
        }


@dataclass
class ReplayFocus:
    """Refine toward *replaying* what detected: each sampled detecting
    run's recorded interleaving is parsed back into its source
    patterns and re-merged under ``ops``, and the results ship as
    :class:`~repro.ptest.replay.ReplayRef` cells — merged-pattern
    replay batches on the same deduped-table wire format as registry
    scenarios, swept across the campaign's seed set.

    ``max_sources`` bounds how many detections seed the next round
    (taken in row order, then capture order); ``seed`` roots the
    deterministic per-merge RNG derivation.
    """

    ops: tuple[str, ...] = ("cyclic", "round_robin")
    max_sources: int = 2
    seed: int = 0
    chunk: int = 2

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigError("ReplayFocus needs at least one merge op")
        if len(set(self.ops)) != len(self.ops):
            # A repeated op would mint the same variant name twice and
            # silently overwrite half the intended replay cells.
            raise ConfigError(f"duplicate merge ops in {self.ops}")
        if self.max_sources < 1:
            raise ConfigError(
                f"max_sources must be >= 1, got {self.max_sources}"
            )

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        samples = list(observation.iter_samples())[: self.max_sources]
        if not samples:
            return None
        refined: dict[str, ScenarioBuilder] = {}
        for sample_index, sample in enumerate(samples):
            base = self._base_ref(observation, sample.variant)
            sources = parse_merged_description(
                sample.merged_description
            ).sources
            for op_index, op in enumerate(self.ops):
                # Seeds derive from (policy seed, round, sample, op
                # position) only — no object identities, no str hashes —
                # so re-merges are identical on every execution path.
                merger = PatternMerger(
                    op=op,
                    seed=(
                        self.seed
                        + 1_009 * (observation.index + 1)
                        + 10_007 * sample_index
                        + 100_003 * op_index
                    ),
                    chunk=self.chunk,
                )
                merged = merger.merge_symbols(
                    [pattern.symbols for pattern in sources]
                )
                name = f"replay[{sample.variant}@s{sample.seed}/{op}]"
                refined[name] = replay_ref(base, merged)
        return refined

    @staticmethod
    def _base_ref(
        observation: RoundObservation, variant: str
    ) -> ScenarioRef:
        builder = observation.variants[variant]
        if isinstance(builder, ReplayRef):
            return builder.scenario  # replaying a replay: same base
        if isinstance(builder, ScenarioRef):
            return builder
        raise ConfigError(
            f"ReplayFocus needs ScenarioRef/ReplayRef variants to "
            f"rebuild the platform from; variant {variant!r} is "
            f"{type(builder).__name__}"
        )


@dataclass
class Repeat:
    """Re-emit the same variants every round.

    The identity policy: useful as a stability baseline (rows must not
    drift round over round) and as the benchmark workload measuring
    pure round dispatch cost on a warm pool.
    """

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        return dict(observation.variants)


#: CLI/script-friendly registry of the built-in policy constructors.
POLICIES: dict[str, type] = {
    "grid_zoom": GridZoom,
    "halving": SuccessiveHalving,
    "replay": ReplayFocus,
    "repeat": Repeat,
}


@dataclass
class AdaptiveResult:
    """Everything an adaptive run produced, round by round."""

    rounds: list[RoundObservation]
    #: True when the policy ended the campaign before ``rounds`` ran.
    stopped_early: bool
    #: Distinct cache keys shipped to workers ahead of rounds 2+ (0 on
    #: serial runs, or with pre-warming disabled) — perf telemetry
    #: only, never part of the determinism fingerprint.
    prewarmed_refs: int = 0
    #: Rounds replayed from a checkpoint instead of executed (0 on a
    #: straight-through run) — telemetry, never part of the results.
    resumed_rounds: int = 0

    @property
    def final_rows(self) -> tuple[CampaignRow, ...]:
        return self.rounds[-1].rows

    @property
    def pool_ids(self) -> tuple[int | None, ...]:
        return tuple(r.pool_id for r in self.rounds)

    @property
    def pool_stable(self) -> bool:
        """Whether every round dispatched through one pool generation
        (all-``None`` counts: serial rounds have no pool to churn)."""
        return len(set(self.pool_ids)) == 1

    def variant_history(self) -> list[tuple[str, ...]]:
        return [tuple(r.variants) for r in self.rounds]

    @property
    def quarantined_cells(self) -> tuple[QuarantinedCell, ...]:
        """Every cell quarantined across the run, round order."""
        cells: list[QuarantinedCell] = []
        for observation in self.rounds:
            if observation.quarantine is not None:
                cells.extend(observation.quarantine.cells)
        return tuple(cells)

    @property
    def total_quarantined(self) -> int:
        return len(self.quarantined_cells)

    def describe(self) -> str:
        lines = []
        for observation in self.rounds:
            lines.append(
                f"round {observation.index + 1}: "
                f"{len(observation.rows)} variant(s), "
                f"{observation.total_detections} detection(s)"
            )
            for row in observation.rows:
                lines.append(
                    f"  {row.variant}: {row.detections}/{row.runs}"
                    + (f" {', '.join(row.kinds)}" if row.kinds else "")
                )
            if (
                observation.quarantine is not None
                and observation.quarantine.cells
            ):
                lines.append(f"  {observation.quarantine.describe()}")
        if self.resumed_rounds:
            lines.append(
                f"resumed: {self.resumed_rounds} round(s) replayed "
                "from checkpoint"
            )
        if self.stopped_early:
            lines.append("stopped early: policy returned no variants")
        return "\n".join(lines)


@dataclass
class AdaptiveCampaign:
    """Runs a campaign in policy-refined rounds on one warm pool.

    Seed the first round with :meth:`add_scenario` / :meth:`add_grid`
    (or :meth:`add_variant` with any
    :class:`~repro.ptest.executor.ScenarioBuilder`), pick a
    :class:`RefinePolicy`, and :meth:`run`.  Execution knobs mirror
    :class:`~repro.ptest.campaign.Campaign` — ``workers`` /
    ``batch_size`` / ``pool`` — with one addition: the pool is acquired
    **once**, before round 1, and every round's campaign dispatches
    through that same :class:`~repro.ptest.pool.WorkerPool`, so rounds
    2+ reuse warm worker processes and their scenario/PFA/merged-
    pattern caches (``AdaptiveResult.pool_stable`` certifies it).

    ``rounds`` caps the round count; the policy may stop earlier by
    returning no variants.  Results are identical at any ``(workers,
    batch_size, warm/cold)`` — see the module docstring's contract.

    **Crash safety.**  ``checkpoint=`` names a file that receives the
    campaign's round-by-round progress (atomically, after every
    executed round).  With ``resume=True`` a matching checkpoint's
    completed rounds are *replayed* from disk — each stored
    observation runs back through ``policy.refine``, rebuilding
    policy/pipeline state exactly as the original rounds did, without
    executing a single cell — and execution continues at the first
    uncovered round, bit-identical to a never-interrupted run.  The
    round budget is not part of the checkpoint identity, so raising
    ``rounds`` and resuming extends a finished study.
    """

    seeds: Iterable[int] = (0, 1, 2, 3, 4)
    rounds: int = 3
    policy: RefinePolicy | None = None
    variants: dict[str, ScenarioBuilder] = field(default_factory=dict)
    workers: int | None = None
    batch_size: int | None = None
    pool: "WorkerPool | None" = None
    #: Detecting cells sampled per variant per round (what policies see).
    capture_per_variant: int = 4
    #: Per-cell watchdog deadline, forwarded to every round's campaign.
    cell_timeout: float | None = None
    #: Bisect repeatedly-failing batches instead of raising; each
    #: round's :class:`~repro.ptest.executor.QuarantineReport` lands on
    #: its :class:`RoundObservation`.
    quarantine: bool = False
    #: Seeded fault injection at the pool boundary (tests/benches only).
    chaos: "ChaosSpec | None" = None
    #: File persisting round-by-round progress (``None`` = no
    #: checkpointing).  A fresh run overwrites any existing file.
    checkpoint: "str | Path | None" = None
    #: Replay completed rounds from ``checkpoint`` before executing.
    #: A missing checkpoint file starts fresh; a mismatched one raises
    #: :class:`~repro.errors.CheckpointError`.
    resume: bool = False
    #: Ship each refined round's distinct refs to the workers (via
    #: :meth:`~repro.ptest.pool.WorkerPool.prewarm`) as soon as the
    #: policy emits them, so round N+1's scenario resolution and PFA
    #: compilation happen while the parent is still setting the round
    #: up.  Results are bit-identical on or off (the worker cache is
    #: equality-checked before reuse); disable to measure cold
    #: round-start cost, or when rounds rarely introduce new refs.
    prewarm: bool = True
    #: Incremental round delivery: called with each
    #: :class:`RoundObservation` the moment it lands — executed *and*
    #: checkpoint-replayed rounds alike, before the policy refines it —
    #: so streaming consumers (``repro serve``) ship rounds as they
    #: complete instead of waiting for the whole schedule.  Purely
    #: observational; results cannot change.
    on_round: "Callable[[RoundObservation], None] | None" = None

    def add_variant(self, name: str, builder: ScenarioBuilder) -> None:
        """Register a round-1 variant under ``name``."""
        if name in self.variants:
            raise ValueError(f"variant {name!r} already registered")
        self.variants[name] = builder

    def add_scenario(self, name: str, scenario: str, **params: Any) -> None:
        """Register registry scenario ``scenario`` (with fixed
        ``params``) as round-1 variant ``name``."""
        self.add_variant(name, scenario_ref(scenario, **params))

    def add_grid(
        self,
        name: str,
        scenario: str,
        param_grid: Mapping[str, Sequence[Any]],
        **fixed: Any,
    ) -> list[str]:
        """Seed round 1 with a parameter grid (see
        :func:`~repro.ptest.campaign.grid_variants`); returns the
        variant names in registration order."""
        expanded = grid_variants(name, scenario, param_grid, **fixed)
        for variant, ref in expanded.items():
            self.add_variant(variant, ref)
        return list(expanded)

    def run(self, sink: ResultSink | None = None) -> AdaptiveResult:
        """Execute up to ``rounds`` policy-refined campaign rounds.

        ``sink`` (if given) additionally receives every round's
        ``(cell, result)`` stream, in submission order.
        """
        if not self.variants:
            raise ConfigError("adaptive campaign has no variants")
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")
        policy = self.policy
        if policy is None:
            raise ConfigError(
                f"adaptive campaign needs a refine policy "
                f"(built-ins: {sorted(POLICIES)})"
            )
        pool = self.pool
        if pool is None and self.workers is not None and self.workers > 1:
            # One shared pool for every round — acquired here, not per
            # round, so refinement never leaves the warm workers.
            pool = get_pool(self.workers)
        # Normalised once: a generator-valued ``seeds`` would otherwise
        # be exhausted by round 1 and leave rounds 2+ with zero cells.
        seeds = tuple(self.seeds)
        if self.resume and self.checkpoint is None:
            raise ConfigError("resume=True needs a checkpoint path")
        store: CampaignCheckpoint | None = None
        fingerprint = ""
        if self.checkpoint is not None:
            store = CampaignCheckpoint(self.checkpoint)
            fingerprint = campaign_fingerprint(
                seeds, self.variants, policy, self.capture_per_variant
            )
        current: dict[str, ScenarioBuilder] = dict(self.variants)
        observations: list[RoundObservation] = []
        stopped_early = False
        prewarmed_refs = 0
        resumed_rounds = 0
        if self.resume and store is not None and store.exists():
            # Replay completed rounds from disk: every stored
            # observation goes back through ``policy.refine`` exactly
            # as the live rounds did, so policy/pipeline state and the
            # next round's variants are rebuilt without executing a
            # cell.  Policies are pure functions of their observations
            # (the determinism contract), which is why no policy state
            # needs persisting.
            payload = store.load(fingerprint)
            prewarmed_refs = payload["prewarmed_refs"]
            for observation in payload["observations"]:
                if len(observations) >= self.rounds:
                    break  # budget shrank below the stored progress
                observations.append(observation)
                resumed_rounds += 1
                if self.on_round is not None:
                    self.on_round(observation)
                if len(observations) == self.rounds:
                    break
                refined = policy.refine(observation)
                if not refined:
                    stopped_early = True
                    break
                current = dict(refined)
            if (
                not stopped_early
                and len(observations) < self.rounds
                and observations
                and self.prewarm
                and pool is not None
            ):
                # The upcoming round's refs would already be warm in an
                # uninterrupted run; re-ship them without re-counting.
                pool.prewarm(current.values())
        for index in range(len(observations), self.rounds):
            if stopped_early:
                break
            campaign = Campaign(
                seeds=seeds,
                workers=self.workers,
                batch_size=self.batch_size,
                pool=pool,
                keep_results=False,
                cell_timeout=self.cell_timeout,
                quarantine=self.quarantine,
                chaos=self.chaos,
            )
            campaign.variants = dict(current)
            capture = DetectionCapture(
                limit_per_variant=self.capture_per_variant
            )
            round_sink: ResultSink = capture
            if sink is not None:
                round_sink = TeeSink((capture, sink))
            rows = campaign.run(sink=round_sink)
            observation = RoundObservation(
                index=index,
                variants=dict(current),
                rows=tuple(rows),
                detections={
                    name: capture.for_variant(name) for name in current
                    if capture.for_variant(name)
                },
                pool_id=campaign.last_pool_id,
                quarantine=campaign.last_quarantine,
            )
            observations.append(observation)
            if self.on_round is not None:
                self.on_round(observation)
            final = index + 1 == self.rounds
            if store is not None:
                # Atomic per-round persistence: a crash after this
                # point replays the round from disk instead of
                # re-executing it.
                store.save(
                    fingerprint=fingerprint,
                    observations=observations,
                    prewarmed_refs=prewarmed_refs,
                    stopped_early=False,
                    finished=final,
                )
            if final:
                break
            refined = policy.refine(observation)
            if not refined:
                stopped_early = True
                if store is not None:
                    store.save(
                        fingerprint=fingerprint,
                        observations=observations,
                        prewarmed_refs=prewarmed_refs,
                        stopped_early=True,
                        finished=True,
                    )
                break
            current = dict(refined)
            if self.prewarm and pool is not None:
                # Cross-round pre-warming: the next round's variants
                # are known the moment the policy returns, so their
                # distinct refs go to the workers now — resolution and
                # PFA compilation overlap the parent-side round setup
                # below instead of serialising into the round's first
                # batches.  Fire-and-forget; results cannot change.
                prewarmed_refs += pool.prewarm(current.values())
        return AdaptiveResult(
            rounds=observations,
            stopped_early=stopped_early,
            prewarmed_refs=prewarmed_refs,
            resumed_rounds=resumed_rounds,
        )
