"""State recording of concurrent processes (Definition 2).

A record is the five-tuple ``(qm, qs, TP, SN, delta_S)``:

1. ``qm`` — the state of the master process (the committer's virtual
   thread for the pair) when it last issued a remote command,
2. ``qs`` — the current state of the slave task,
3. ``TP`` — the test pattern assigned to the slave task,
4. ``SN`` — the 1-based sequence number of the pattern state currently
   being executed,
5. ``delta_S`` — the remaining subsequence of the pattern.

The recorder keeps one live record per master-thread/slave-task pair
(the paper assumes a one-to-one correspondence) and snapshots them for
bug reports — exactly the Fig. 4 presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DetectorError
from repro.pcore.tcb import TaskState
from repro.ptest.patterns import TestPattern


@dataclass(frozen=True)
class StateRecord:
    """One CP record (Fig. 4)."""

    pair_id: int
    master_state: str
    slave_state: str
    pattern: tuple[str, ...]
    sequence_number: int
    remaining: tuple[str, ...]

    def describe(self) -> str:
        """Render in the paper's notation, e.g.
        ``CP1 = (m2, s1, p1->p2->p3, 2, p3)``."""
        pattern_text = "->".join(self.pattern) if self.pattern else "(empty)"
        remaining_text = "->".join(self.remaining) if self.remaining else "(done)"
        return (
            f"CP{self.pair_id} = ({self.master_state}, {self.slave_state}, "
            f"{pattern_text}, {self.sequence_number}, {remaining_text})"
        )


@dataclass
class _PairTracking:
    pattern: TestPattern
    issued: int = 0
    master_state: str = "m:init"
    slave_state: str = "s:absent"
    slave_tid: int | None = None


@dataclass
class ProcessStateRecorder:
    """Tracks Definition 2 records for every pair in a run."""

    _pairs: dict[int, _PairTracking] = field(default_factory=dict)

    def register_pair(self, pattern: TestPattern) -> None:
        """Start tracking a master-thread/slave-task pair."""
        if pattern.pattern_id in self._pairs:
            raise DetectorError(
                f"pair {pattern.pattern_id} already registered"
            )
        self._pairs[pattern.pattern_id] = _PairTracking(pattern=pattern)

    def pairs(self) -> list[int]:
        return sorted(self._pairs)

    def note_issue(self, pair_id: int, master_state: str) -> None:
        """A remote command for ``pair_id`` was issued; advance SN.

        ``master_state`` is the master-side state label at issue time —
        "the last state of a master process before it enters a state that
        issues remote commands".
        """
        tracking = self._tracking(pair_id)
        tracking.issued += 1
        tracking.master_state = master_state

    def note_slave_state(
        self, pair_id: int, state: TaskState | str, tid: int | None = None
    ) -> None:
        """Update the observed slave-task state for the pair."""
        tracking = self._tracking(pair_id)
        tracking.slave_state = (
            state.value if isinstance(state, TaskState) else str(state)
        )
        if tid is not None:
            tracking.slave_tid = tid

    def slave_tid(self, pair_id: int) -> int | None:
        return self._tracking(pair_id).slave_tid

    def record(self, pair_id: int) -> StateRecord:
        """Snapshot the pair's current five-tuple."""
        tracking = self._tracking(pair_id)
        issued = tracking.issued
        return StateRecord(
            pair_id=pair_id,
            master_state=tracking.master_state,
            slave_state=tracking.slave_state,
            pattern=tracking.pattern.symbols,
            sequence_number=issued,
            remaining=tracking.pattern.subsequence_after(issued),
        )

    def snapshot(self) -> list[StateRecord]:
        """Records for every pair, ordered by pair id (the bug-report
        dump)."""
        return [self.record(pair_id) for pair_id in self.pairs()]

    def _tracking(self, pair_id: int) -> _PairTracking:
        try:
            return self._pairs[pair_id]
        except KeyError:
            raise DetectorError(f"unknown pair {pair_id}") from None
