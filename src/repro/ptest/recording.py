"""State recording of concurrent processes (Definition 2).

A record is the five-tuple ``(qm, qs, TP, SN, delta_S)``:

1. ``qm`` — the state of the master process (the committer's virtual
   thread for the pair) when it last issued a remote command,
2. ``qs`` — the current state of the slave task,
3. ``TP`` — the test pattern assigned to the slave task,
4. ``SN`` — the 1-based sequence number of the pattern state currently
   being executed,
5. ``delta_S`` — the remaining subsequence of the pattern.

The recorder keeps one live record per master-thread/slave-task pair
(the paper assumes a one-to-one correspondence) and snapshots them for
bug reports — exactly the Fig. 4 presentation.

Column-backed records
---------------------

On the array plane a pair's :class:`~repro.ptest.patterns.TestPattern`
is a lazy view over interned id arrays, and a :class:`StateRecord` is
column-backed to match: :meth:`StateRecord.from_pattern` (what
:meth:`ProcessStateRecorder.record` builds) stores only the source
pattern and SN — TP is the pattern's id row and delta-S is the offset
``SN`` into it — and materialises the ``pattern``/``remaining`` symbol
tuples lazily, on first read.  Snapshotting therefore costs O(pairs)
regardless of pattern size and never forces a lazy pattern's tuples;
only rendering a :class:`~repro.ptest.report.BugReport` (``describe``,
``to_dict``, pickling across the pool boundary) materialises them.
Eagerly-constructed records (the classic keyword form) are unchanged
and compare equal to lazy ones over the same values.

:meth:`ProcessStateRecorder.snapshot_columns` exposes the same data as
parallel columns (pair ids, SNs, remaining counts) for batched
screening — :func:`repro.ptest.batchdetect.screen_pending_pairs`
consumes it directly, no records or tuples in between.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError, dataclass, field
from typing import Any

from repro.errors import DetectorError
from repro.pcore.tcb import TaskState
from repro.ptest.patterns import TestPattern


class StateRecord:
    """One CP record (Fig. 4).

    A hand-rolled frozen ``__slots__`` type (same surface as the former
    frozen dataclass: keyword/positional construction, ``eq``/``hash``/
    ``repr``, :class:`dataclasses.FrozenInstanceError` on assignment)
    so the :meth:`from_pattern` form can defer the ``pattern`` and
    ``remaining`` tuples behind the public fields.
    """

    __slots__ = (
        "pair_id",
        "master_state",
        "slave_state",
        "sequence_number",
        "_pattern",
        "_remaining",
        "_source",
    )

    def __init__(
        self,
        pair_id: int,
        master_state: str,
        slave_state: str,
        pattern: tuple[str, ...],
        sequence_number: int,
        remaining: tuple[str, ...],
    ) -> None:
        fill = object.__setattr__
        fill(self, "pair_id", pair_id)
        fill(self, "master_state", master_state)
        fill(self, "slave_state", slave_state)
        fill(self, "sequence_number", sequence_number)
        fill(self, "_pattern", pattern)
        fill(self, "_remaining", remaining)
        fill(self, "_source", None)

    @classmethod
    def from_pattern(
        cls,
        pair_id: int,
        master_state: str,
        slave_state: str,
        source: TestPattern,
        sequence_number: int,
    ) -> "StateRecord":
        """Column-backed construction: TP/delta-S are ``source``'s id
        row and the offset ``sequence_number`` into it; the symbol
        tuples materialise only when read (a bug report rendering)."""
        record = object.__new__(cls)
        fill = object.__setattr__
        fill(record, "pair_id", pair_id)
        fill(record, "master_state", master_state)
        fill(record, "slave_state", slave_state)
        fill(record, "sequence_number", sequence_number)
        fill(record, "_pattern", None)
        fill(record, "_remaining", None)
        fill(record, "_source", source)
        return record

    @property
    def pattern(self) -> tuple[str, ...]:
        value = self._pattern
        if value is None:
            value = self._source.symbols
            object.__setattr__(self, "_pattern", value)
        return value

    @property
    def remaining(self) -> tuple[str, ...]:
        value = self._remaining
        if value is None:
            value = self._source.subsequence_after(self.sequence_number)
            object.__setattr__(self, "_remaining", value)
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise FrozenInstanceError(f"cannot delete field {name!r}")

    def _astuple(self) -> tuple:
        return (
            self.pair_id,
            self.master_state,
            self.slave_state,
            self.pattern,
            self.sequence_number,
            self.remaining,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not StateRecord:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"StateRecord(pair_id={self.pair_id!r}, "
            f"master_state={self.master_state!r}, "
            f"slave_state={self.slave_state!r}, "
            f"pattern={self.pattern!r}, "
            f"sequence_number={self.sequence_number!r}, "
            f"remaining={self.remaining!r})"
        )

    def __getstate__(self) -> tuple:
        # Records cross the pool boundary inside bug reports:
        # materialise so the wire format stays numpy-free and identical
        # to the historical eager dataclass pickles.
        return (
            self.pair_id,
            self.master_state,
            self.slave_state,
            self.pattern,
            self.sequence_number,
            self.remaining,
        )

    def __setstate__(self, state: tuple) -> None:
        self.__init__(*state)

    def describe(self) -> str:
        """Render in the paper's notation, e.g.
        ``CP1 = (m2, s1, p1->p2->p3, 2, p3)``."""
        pattern_text = "->".join(self.pattern) if self.pattern else "(empty)"
        remaining_text = "->".join(self.remaining) if self.remaining else "(done)"
        return (
            f"CP{self.pair_id} = ({self.master_state}, {self.slave_state}, "
            f"{pattern_text}, {self.sequence_number}, {remaining_text})"
        )


@dataclass
class _PairTracking:
    pattern: TestPattern
    issued: int = 0
    master_state: str = "m:init"
    slave_state: str = "s:absent"
    slave_tid: int | None = None


@dataclass
class ProcessStateRecorder:
    """Tracks Definition 2 records for every pair in a run."""

    _pairs: dict[int, _PairTracking] = field(default_factory=dict)

    def register_pair(self, pattern: TestPattern) -> None:
        """Start tracking a master-thread/slave-task pair."""
        if pattern.pattern_id in self._pairs:
            raise DetectorError(
                f"pair {pattern.pattern_id} already registered"
            )
        self._pairs[pattern.pattern_id] = _PairTracking(pattern=pattern)

    def pairs(self) -> list[int]:
        return sorted(self._pairs)

    def note_issue(self, pair_id: int, master_state: str) -> None:
        """A remote command for ``pair_id`` was issued; advance SN.

        ``master_state`` is the master-side state label at issue time —
        "the last state of a master process before it enters a state that
        issues remote commands".
        """
        tracking = self._tracking(pair_id)
        tracking.issued += 1
        tracking.master_state = master_state

    def note_slave_state(
        self, pair_id: int, state: TaskState | str, tid: int | None = None
    ) -> None:
        """Update the observed slave-task state for the pair."""
        tracking = self._tracking(pair_id)
        tracking.slave_state = (
            state.value if isinstance(state, TaskState) else str(state)
        )
        if tid is not None:
            tracking.slave_tid = tid

    def slave_tid(self, pair_id: int) -> int | None:
        return self._tracking(pair_id).slave_tid

    def record(self, pair_id: int) -> StateRecord:
        """Snapshot the pair's current five-tuple — column-backed: the
        record keeps the pattern and SN, not materialised tuples, so
        snapshotting never forces a lazy pattern's symbols."""
        tracking = self._tracking(pair_id)
        return StateRecord.from_pattern(
            pair_id=pair_id,
            master_state=tracking.master_state,
            slave_state=tracking.slave_state,
            source=tracking.pattern,
            sequence_number=tracking.issued,
        )

    def snapshot(self) -> list[StateRecord]:
        """Records for every pair, ordered by pair id (the bug-report
        dump)."""
        return [self.record(pair_id) for pair_id in self.pairs()]

    def snapshot_columns(
        self,
    ) -> tuple[list[int], list[int], list[int]]:
        """The snapshot as parallel ``(pair_ids, sequence_numbers,
        remaining_counts)`` columns, ordered by pair id.

        O(pairs) with no record objects and no symbol tuples — the
        remaining count is ``len(pattern) - SN`` straight off the
        pattern's O(1) length.  This is what the batched screen of
        :func:`repro.ptest.batchdetect.screen_pending_pairs` consumes.
        """
        pair_ids: list[int] = []
        sequence_numbers: list[int] = []
        remaining_counts: list[int] = []
        for pair_id in self.pairs():
            tracking = self._pairs[pair_id]
            issued = tracking.issued
            pair_ids.append(pair_id)
            sequence_numbers.append(issued)
            remaining_counts.append(max(0, len(tracking.pattern) - issued))
        return pair_ids, sequence_numbers, remaining_counts

    def _tracking(self, pair_id: int) -> _PairTracking:
        try:
            return self._pairs[pair_id]
        except KeyError:
            raise DetectorError(f"unknown pair {pair_id}") from None
