"""The committer: replays the merged pattern as remote commands.

"According to the test pattern, the committer issues the corresponding
commands to enable the remote testing for a slave system."  The
committer is the master core of a pTest run: each step it pumps bridge
replies, then tries to issue the next command of the merged pattern.

Issue-order semantics: the merged pattern *is* the schedule the merger
chose, so commands are issued strictly in merged order.  In ``lockstep``
mode (the default, modelling blocking remote calls from the per-pair
master threads) a command whose pair still has an unanswered command
stalls the sequence until the reply arrives; in fire-and-forget mode
only mailbox backpressure throttles issue.

The column walk
---------------

An array-built :class:`~repro.ptest.patterns.MergedPattern` carries the
interleaving as parallel ``pattern_ids``/``symbol_ids`` columns over a
shared interned alphabet.  The committer walks those columns directly
by cursor — one bulk ``tolist()`` conversion at construction (native
Python ints, so traces stay bit-identical), then plain list indexing
per step, with the symbol→:class:`~repro.pcore.services.ServiceCode`
binding resolved **once per alphabet** (a process-wide memo shared by
every committer over the same automaton) instead of once per command.
No per-symbol :class:`~repro.ptest.patterns.PatternCommand` object is
ever created on this path; ``merged.commands`` stays unmaterialised
for the whole run, stall/retry and ``done`` included.

Eager merged patterns (scalar merges — the only kind produced under
``REPRO_NO_NUMPY`` — and parsed replay descriptions) take the classic
:class:`PatternCommand` walk, which is the bit-identical reference:
same issue order, same requests, same traces, same errors at the same
steps.

Symbol -> request binding per pair:

* ``TC`` creates the pair's task with a fresh priority from the pair's
  private priority band and the configured program;
* ``TD``/``TS``/``TR``/``TCH`` target the pair's task id (learned from
  the TC reply);
* ``TY`` targets the pair's task id (see the kernel's TY semantics);
* ``TCH`` rotates through the pair's priority band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bridge.bridge import BridgeMaster
from repro.errors import ConfigError
from repro.pcore.services import (
    ServiceCode,
    ServiceRequest,
    ServiceResult,
    ServiceStatus,
)
from repro.ptest.patterns import MergedPattern, _as_list
from repro.ptest.recording import ProcessStateRecorder
from repro.sim.trace import CATEGORY_COMMAND, Tracer

#: Width of each pair's private priority band (TCH rotates inside it).
PRIORITY_BAND = 32

#: Per-alphabet symbol→service binding tables, resolved lazily (an
#: unknown symbol raises at the step that reaches it, exactly like the
#: per-command lookup) and shared process-wide: every committer walking
#: merges over one interned alphabet resolves each service once, total.
_SERVICE_BINDINGS: dict[tuple[str, ...], list[ServiceCode | None]] = {}


def _service_binding(
    alphabet: tuple[str, ...],
) -> list[ServiceCode | None]:
    table = _SERVICE_BINDINGS.get(alphabet)
    if table is None:
        table = [None] * len(alphabet)
        _SERVICE_BINDINGS[alphabet] = table
    return table


@dataclass
class PairBinding:
    """Committer-side state of one master-thread/slave-task pair."""

    pair_id: int
    program: str
    tid: int | None = None
    priority_cursor: int = 0
    outstanding_seq: int | None = None
    issued: int = 0
    completed: int = 0
    errors: int = 0

    def base_priority(self) -> int:
        return 1 + self.pair_id * PRIORITY_BAND

    def next_priority(self) -> int:
        """A fresh priority inside the pair's band (wraps eventually)."""
        priority = self.base_priority() + (self.priority_cursor % PRIORITY_BAND)
        self.priority_cursor += 1
        return priority

    def master_state(self) -> str:
        """The qm label: which issue-state the pair's master thread is
        in (m<pair>.<#issued>, per the Fig. 4 ``m1/m2/m3`` idea)."""
        return f"m{self.pair_id}.{self.issued}"


@dataclass
class Committer:
    """Master core replaying a merged pattern (Core protocol)."""

    bridge: BridgeMaster
    merged: MergedPattern
    recorder: ProcessStateRecorder | None = None
    tracer: Tracer | None = None
    lockstep: bool = True
    program: str = "idle"
    #: Per-pair program names (index = pair id); missing entries fall
    #: back to ``program``.
    pair_programs: tuple[str, ...] | None = None
    #: ConTest-style schedule noise: before each issue, wait a seeded
    #: uniform 0..noise_ticks delay.  0 disables.
    noise_ticks: int = 0
    noise_seed: int = 0
    name: str = "committer"
    cursor: int = 0
    now: int = 0
    steps: int = 0
    issued: int = 0
    #: Issue attempts rejected by a full command mailbox (backpressure).
    stall_events: int = 0
    results: list[ServiceResult] = field(default_factory=list)
    error_results: list[ServiceResult] = field(default_factory=list)
    bindings: dict[int, PairBinding] = field(default_factory=dict)
    _seq_to_pair: dict[int, int] = field(default_factory=dict)
    _stalled_request: ServiceRequest | None = None
    #: ``(pattern_id, symbol, position)`` of the stalled step — plain
    #: cursor state, never a materialised ``PatternCommand``.
    _stalled_step: tuple[int, str, int] | None = None
    _noise_remaining: int = 0
    _noise_rng: "random.Random" = field(init=False, repr=False)
    #: Column walk state (``None`` triggers the PatternCommand walk):
    #: the merge's id columns as native-int lists plus the shared
    #: lazily-resolved symbol→service table.
    _col_pattern_ids: list[int] | None = field(init=False, repr=False)
    _col_symbol_ids: list[int] | None = field(init=False, repr=False)
    _col_alphabet: tuple[str, ...] | None = field(init=False, repr=False)
    _col_services: list[ServiceCode | None] | None = field(
        init=False, repr=False
    )

    def __post_init__(self) -> None:
        self._noise_rng = random.Random(self.noise_seed)
        pattern_ids = self.merged.pattern_ids
        if pattern_ids is not None:
            # Array-built merge: one bulk conversion to Python ints
            # (tolist is vectorized and yields native ints, keeping
            # traces bit-identical), then every step is list indexing.
            self._col_pattern_ids = _as_list(pattern_ids)
            self._col_symbol_ids = _as_list(self.merged.symbol_ids)
            self._col_alphabet = self.merged.alphabet
            self._col_services = _service_binding(self._col_alphabet)
        else:
            self._col_pattern_ids = None
            self._col_symbol_ids = None
            self._col_alphabet = None
            self._col_services = None
        for pattern in self.merged.sources:
            pair_id = pattern.pattern_id
            program = self.program
            if self.pair_programs is not None and pair_id < len(
                self.pair_programs
            ):
                program = self.pair_programs[pair_id]
            self.bindings[pair_id] = PairBinding(
                pair_id=pair_id, program=program
            )
            if self.recorder is not None:
                self.recorder.register_pair(pattern)

    # -- Core protocol ------------------------------------------------------

    def is_halted(self) -> bool:
        # Keep stepping (pumping replies) until the bridge has drained;
        # in fire-and-forget mode `done` precedes the last replies.
        return self.done and not self.bridge.outstanding

    @property
    def done(self) -> bool:
        """All commands issued and (in lockstep mode) all replies seen."""
        if self.cursor < len(self.merged) or self._stalled_request:
            return False
        if self.lockstep:
            return all(
                binding.outstanding_seq is None
                for binding in self.bindings.values()
            )
        return True

    def step(self, now: int) -> bool:
        self.now = now
        self.steps += 1
        self.bridge.now = now
        worked = self._pump()
        worked |= self._try_issue()
        return worked

    # -- internals ---------------------------------------------------------------

    def _pump(self) -> bool:
        arrived = self.bridge.pump()
        for result in arrived:
            self.results.append(result)
            sequence = result.request.sequence
            pair_id = self._seq_to_pair.get(sequence if sequence is not None else -1)
            if pair_id is None:
                continue
            binding = self.bindings[pair_id]
            if binding.outstanding_seq == sequence:
                binding.outstanding_seq = None
            binding.completed += 1
            if not result.ok:
                binding.errors += 1
                self.error_results.append(result)
            if (
                result.request.service is ServiceCode.TC
                and result.ok
                and result.value is not None
            ):
                binding.tid = result.value
            if result.ok and result.request.service in (
                ServiceCode.TD,
                ServiceCode.TY,
            ):
                binding.tid = None  # pair's task is gone
        return bool(arrived)

    def _try_issue(self) -> bool:
        if self._noise_remaining > 0:
            self._noise_remaining -= 1
            return False
        step, request = self._next_request()
        if request is None or step is None:
            return False
        pattern_id, symbol, position = step
        sequence = self.bridge.issue(request)
        if sequence is None:  # mailbox full: keep the request for retry
            self.stall_events += 1
            self._stalled_request = request
            self._stalled_step = step
            return False
        self._stalled_request = None
        self._stalled_step = None
        if self.noise_ticks > 0:
            self._noise_remaining = self._noise_rng.randint(0, self.noise_ticks)
        binding = self.bindings[pattern_id]
        binding.outstanding_seq = sequence
        binding.issued += 1
        self.issued += 1
        self._seq_to_pair[sequence] = pattern_id
        if self.recorder is not None:
            self.recorder.note_issue(pattern_id, binding.master_state())
        if self.tracer is not None:
            self.tracer.record(
                self.now,
                self.name,
                CATEGORY_COMMAND,
                event="commit",
                symbol=symbol,
                pair=pattern_id,
                seq=sequence,
                position=position,
            )
        return True

    def _next_request(
        self,
    ) -> tuple[tuple[int, str, int] | None, ServiceRequest | None]:
        """The cursor's ``((pattern_id, symbol, position), request)``,
        advancing the cursor — or ``(None, None)`` when nothing can
        issue this step (exhausted, lockstep wait, tid wait)."""
        if self._stalled_request is not None and self._stalled_step is not None:
            return self._stalled_step, self._stalled_request
        position = self.cursor
        if position >= len(self.merged):
            return None, None
        if self._col_pattern_ids is not None:
            pattern_id = self._col_pattern_ids[position]
            symbol = self._col_alphabet[self._col_symbol_ids[position]]
        else:
            command = self.merged.commands[position]
            pattern_id = command.pattern_id
            symbol = command.symbol
        binding = self.bindings[pattern_id]
        if self.lockstep and binding.outstanding_seq is not None:
            return None, None  # wait for the pair's previous reply
        request = self._build_request(position, symbol, binding)
        if request is None:
            return None, None  # target tid not known yet
        self.cursor += 1
        return (pattern_id, symbol, position), request

    def _resolve_service(self, position: int, symbol: str) -> ServiceCode:
        """Symbol→service for the step at ``position``; memoized per
        alphabet entry on the column walk, so a merge over *k* distinct
        services costs *k* enum lookups no matter how long it is.  The
        unknown-symbol :class:`ConfigError` fires at the step that
        reaches the symbol, exactly like the per-command lookup."""
        services = self._col_services
        if services is not None:
            symbol_id = self._col_symbol_ids[position]
            service = services[symbol_id]
            if service is not None:
                return service
        try:
            service = ServiceCode.from_abbreviation(symbol)
        except KeyError:
            raise ConfigError(f"pattern symbol {symbol!r} is not a service")
        if services is not None:
            services[symbol_id] = service
        return service

    def _build_request(
        self, position: int, symbol: str, binding: PairBinding
    ) -> ServiceRequest | None:
        service = self._resolve_service(position, symbol)
        if service is ServiceCode.TC:
            return ServiceRequest(
                service=service,
                priority=binding.next_priority(),
                program=binding.program,
                issuer=binding.pair_id,
            )
        if binding.tid is None:
            # Target not known yet: the pair's TC reply has not arrived
            # (only possible in fire-and-forget mode) or the task is
            # already gone.  Issue against an invalid tid so the kernel
            # answers NO_SUCH_TASK — the stress test must exercise error
            # paths rather than silently skip them — unless we are just
            # early, in which case stall.
            if binding.outstanding_seq is not None:
                return None  # TC in flight: wait for its tid
        target = binding.tid if binding.tid is not None else 0
        if service is ServiceCode.TCH:
            return ServiceRequest(
                service=service,
                target=target,
                priority=binding.next_priority(),
                issuer=binding.pair_id,
            )
        return ServiceRequest(
            service=service, target=target, issuer=binding.pair_id
        )
