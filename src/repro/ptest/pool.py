"""Persistent worker pools and the ScenarioRef-table batch format.

Before this subsystem existed every :meth:`CellExecutor.run_cells` call
constructed (and tore down) its own ``ProcessPoolExecutor`` and shipped
each cell as a fresh ``(builder, seed)`` pickle, and every worker
re-resolved its scenario and recompiled its sampling automaton from
scratch on every cell.  For campaign cells in the low-millisecond range
that overhead dominates the actual work.  Three amortisation layers fix
it:

* **Warm pools.**  :class:`WorkerPool` wraps a lazily-created
  ``ProcessPoolExecutor`` that survives across ``run_cells`` /
  ``Campaign.run`` / ``compare_ops`` calls.  :func:`get_pool` hands out
  one shared pool per worker count; pools are health-checked on use
  (a dead worker breaks a process pool — the wrapper discards the
  broken executor and respawns a fresh one) and are explicitly
  closable, via context manager for deterministic test shutdown or the
  module-level :func:`shutdown_pools` which also runs at interpreter
  exit.

* **ScenarioRef batch tables.**  A batch crosses the process boundary
  as ``(builders, jobs)`` where ``builders`` lists each *distinct*
  builder once and ``jobs`` is a compact ``(builder_index, seed)``
  table — N seeds of one variant pickle its
  :class:`~repro.workloads.registry.ScenarioRef` once, not N times.
  :func:`run_table_batch` is the worker-side entry point.

* **Worker-side caches.**  Inside each worker process,
  :func:`run_table_batch` memoizes per
  :attr:`~repro.workloads.registry.ScenarioRef.cache_key` — i.e. per
  ``(scenario_name, sorted_params)`` — the resolved registry builder
  with its validated parameters, and the
  :class:`~repro.automata.compiled.CompiledPFA` of the scenario's
  pattern automaton.  N seeds of the same variant therefore pay
  registry resolution, parameter validation and PFA compilation once
  per worker instead of N times.  The cache never changes results: the
  compiled automaton is only substituted after an equality check
  against the PFA the fresh test actually built (a builder whose PFA
  varied — by seed, say — would simply recompile), and compiled
  sampling is bit-identical to the uncompiled walk by construction.

  Merged-pattern replay cells (:class:`~repro.ptest.replay.ReplayRef`,
  what the adaptive campaign's ``ReplayFocus`` policy emits) ride the
  same path: the ref's base :class:`ScenarioRef` resolves through the
  identical machinery and the parsed
  :class:`~repro.ptest.patterns.MergedPattern` is memoized per
  ``ReplayRef.cache_key``, so N replay seeds of one recorded
  interleaving parse its description once per worker.  The parsed
  pattern is read-only to the harness (the committer keeps its own
  cursor), so sharing one instance across runs cannot change results.

Every layer preserves the executor's correctness bar: campaign output
is row-for-row identical at any ``(workers, batch_size, warm/cold)``
configuration.
"""

from __future__ import annotations

import atexit
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.automata.compiled import CompiledPFA
from repro.errors import ConfigError
from repro.ptest.harness import AdaptiveTest

if TYPE_CHECKING:
    from repro.ptest.executor import ScenarioBuilder
    from repro.ptest.harness import TestRunResult
    from repro.workloads.registry import ScenarioRef

#: Monotonic id source for pool spawns (process-local); lets callers
#: observe "same warm pool" vs "respawned" without poking internals.
_POOL_SEQ = 0
_POOL_SEQ_LOCK = threading.Lock()


def _next_pool_id() -> int:
    global _POOL_SEQ
    with _POOL_SEQ_LOCK:
        _POOL_SEQ += 1
        return _POOL_SEQ


class WorkerPool:
    """A persistent, health-checked process pool.

    Parameters
    ----------
    workers:
        Worker-process count of the underlying pool.

    The wrapped ``ProcessPoolExecutor`` is created lazily on first
    :meth:`submit` and reused by every later submission — including
    across separate ``run_cells`` / ``Campaign.run`` calls — until
    :meth:`close`.  A pool whose worker died (``BrokenProcessPool``) is
    discarded and respawned transparently on the next submission;
    callers draining in-flight futures report the break via
    :meth:`notify_broken` and resubmit.

    Observability: :attr:`pool_id` identifies the live executor (stable
    across reuse, changes on respawn), :attr:`spawns` counts executor
    creations.  Use as a context manager for deterministic shutdown::

        with WorkerPool(workers=4) as pool:
            CellExecutor(workers=4, pool=pool).run_cells(...)
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._pool_id: int | None = None
        self._spawns = 0
        self._prewarmed_refs = 0
        self._closed = False
        self._lock = threading.Lock()
        self._registry_version: int | None = None

    @property
    def pool_id(self) -> int | None:
        """Id of the live executor (``None`` before first use)."""
        return self._pool_id

    @property
    def spawns(self) -> int:
        """How many executors this pool has created (respawns included)."""
        return self._spawns

    @property
    def prewarmed_refs(self) -> int:
        """Distinct cache keys shipped by :meth:`prewarm` so far."""
        return self._prewarmed_refs

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        # Workers snapshot the scenario registry when they are spawned;
        # a registration made after that would be unresolvable inside
        # warm workers, so a version bump transparently retires them
        # (the freshly-spawned replacements see the new scenario).
        # Note this — like dynamic (non-module-level) registrations
        # resolving in workers at all, on every pool this repo has ever
        # used — relies on the ``fork`` start method copying the parent
        # registry; under ``spawn``/``forkserver`` only module-level
        # ``@scenario`` registrations reach workers, fresh or not.
        from repro.workloads.registry import REGISTRY

        if (
            self._executor is not None
            and self._registry_version != REGISTRY.version
        ):
            self._discard()
        if self._executor is None:
            # Load the built-in scenarios *before* forking: workers
            # inherit the populated registry, and the version recorded
            # here already includes the load's registrations.
            REGISTRY.names()
            self._registry_version = REGISTRY.version
            # clear_worker_cache as initializer: forked workers would
            # otherwise inherit whatever cache the *parent* built by
            # calling run_table_batch in-process, which the registry
            # version bump cannot invalidate.  Workers always start
            # cold and build their own entries.
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=clear_worker_cache
            )
            self._pool_id = _next_pool_id()
            self._spawns += 1
        return self._executor

    def _discard(self) -> None:
        if self._executor is not None:
            # Broken (worker died) or retired (stale registry): don't
            # wait either way.  Queued futures get cancelled; dispatch
            # loops treat that CancelledError like a break and resubmit
            # the affected batches on the replacement executor.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        """Submit work, respawning the pool first if it is broken."""
        return self.submit_tagged(fn, *args)[0]

    def submit_tagged(
        self, fn: Callable[..., Any], /, *args: Any
    ) -> tuple[Future, int | None]:
        """:meth:`submit` plus the id of the executor that took the work.

        Future and id are read under one lock acquisition, so the tag
        is exact even when another thread respawns the pool around this
        call — the executor's break-retry logic feeds it back to
        :meth:`notify_broken` to avoid tearing down a fresh pool on a
        stale report.
        """
        with self._lock:
            try:
                future = self._ensure().submit(fn, *args)
            except BrokenProcessPool:
                self._discard()
                future = self._ensure().submit(fn, *args)
            return future, self._pool_id

    def notify_broken(self, pool_id: int | None = None) -> None:
        """Tell the pool a drained future raised ``BrokenProcessPool``.

        Discards the dead executor so the next :meth:`submit` respawns;
        the caller owns resubmission of any work it had in flight.
        ``pool_id`` (when given) names the executor the caller actually
        observed breaking — a stale notification about an executor that
        was already replaced is then a no-op, so one thread's respawn
        is never torn down by another thread reporting the same death.
        """
        with self._lock:
            if pool_id is not None and pool_id != self._pool_id:
                return  # that executor is already gone
            self._discard()

    def terminate(self, pool_id: int | None = None) -> int:
        """Kill the live executor's worker processes and discard it.

        The watchdog's hammer: a *hung* worker never exits on
        ``shutdown(wait=False)`` — the process sits in its stuck
        syscall/loop holding a core and (under ``fork``) whatever
        memory it mapped, so respawning around it is not enough; it
        must be killed.  ``SIGTERM`` is sent to every worker of the
        current executor (the parent cannot tell which one holds the
        stuck batch, and sibling workers' in-flight batches are
        resubmitted by the caller anyway, exactly like after a real
        worker death).  ``pool_id`` scopes the kill the same way
        :meth:`notify_broken` scopes a break report: a stale request
        naming an executor that was already replaced is a no-op.

        Returns how many worker processes were signalled.  The next
        :meth:`submit` respawns a fresh executor; results of re-run
        cells are bit-identical by the determinism contract.
        """
        with self._lock:
            if pool_id is not None and pool_id != self._pool_id:
                return 0  # that executor is already gone
            executor = self._executor
            if executor is None:
                return 0
            # _processes is internal to ProcessPoolExecutor but stable
            # across supported CPythons; an empty mapping (workers not
            # yet forked) just means nothing needs killing.
            processes = list(getattr(executor, "_processes", {}).values())
            for process in processes:
                try:
                    process.terminate()
                except Exception:
                    pass  # already dead: exactly the state we want
            self._discard()
            return len(processes)

    def ping(self) -> bool:
        """Round-trip a no-op through a worker (health probe).

        Respawns a broken pool as a side effect; returns ``True`` once
        a worker answered.
        """
        return self.submit(_pong).result() is True

    def prewarm(
        self, builders: Iterable[Any], wait: bool = False
    ) -> int:
        """Ship upcoming builders' cache keys to the workers, ahead of
        the batches that will need them.

        The cross-round warming lever: an adaptive campaign knows the
        *next* round's variants as soon as its policy refines, so it
        ships the distinct portable refs here (one deduped table, the
        batch wire format minus the seeds) and every worker resolves,
        validates and compiles them — via :func:`prewarm_table`, into
        the same per-process cache real batches read — while the parent
        is still building the next round's campaign.  Round N+1's first
        cells then start against hot caches instead of paying
        resolution/compilation inside the round.

        Strictly best-effort and advisory: entries without a
        ``cache_key``, refs bound to a custom registry, and unpicklable
        payloads are skipped (the real dispatch raises its usual
        explicit errors for those), worker-side resolution failures are
        swallowed (ditto), and nothing here can change any cell's
        result — the worker cache is equality-checked before reuse.
        One prewarm task is submitted per worker process, but the
        executor's shared call queue does not pin tasks to processes,
        so coverage is best-effort too: an eager worker may drain
        several tasks while a slow-forking sibling gets none, and a
        worker left cold simply pays resolution inside its first real
        batch, exactly as it would have without pre-warming.  With
        ``wait=False`` (the default) the tasks run concurrently with
        whatever the caller does next.  Returns how many distinct cache
        keys were shipped (0 = nothing warmable, nothing submitted).
        """
        table: list[Any] = []
        seen: set[tuple] = set()
        for builder in builders:
            key = getattr(builder, "cache_key", None)
            if key is None or key in seen:
                continue
            try:
                pickle.dumps(builder)
            except Exception:
                continue  # real dispatch raises the explicit ConfigError
            seen.add(key)
            table.append(builder)
        if not table:
            return 0
        futures = [
            self.submit(prewarm_table, tuple(table))
            for _ in range(self.workers)
        ]
        self._prewarmed_refs += len(table)
        for future in futures:
            if wait:
                try:
                    future.result()
                except Exception:
                    pass  # advisory: the round's own dispatch reports
            else:
                future.add_done_callback(_consume_prewarm_outcome)
        return len(table)

    def close(self, wait: bool = True) -> None:
        """Shut the pool down; further submissions raise.

        Idempotent by contract: pools are closed from several owners
        with different lifetimes — an explicit ``close()``, a context
        manager ``__exit__``, :func:`close_pool` /
        :func:`shutdown_pools`, and the interpreter-exit hook — and any
        of them may fire after another already won.  A second close is
        a strict no-op (it must not re-enter executor shutdown, whose
        behaviour during interpreter teardown is exactly the fragility
        this guard exists to remove).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=wait, cancel_futures=True)
            except Exception:
                # Interpreter teardown can have reaped the executor's
                # queues/threads already; the pool is closed either way.
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            f"id={self._pool_id}" if self._executor else "cold"
        )
        return f"WorkerPool(workers={self.workers}, {state})"


def _pong() -> bool:
    """Worker-side no-op for :meth:`WorkerPool.ping`."""
    return True


def _consume_prewarm_outcome(future: Future) -> None:
    """Drain a fire-and-forget prewarm future's outcome.

    Prewarming is advisory, so its failures (a worker death, a stale
    registry) are not errors here — the round's real submissions hit
    the same condition and report it through the executor's existing
    respawn/resubmit machinery.  Consuming the exception just keeps the
    interpreter from logging "exception was never retrieved" noise.
    """
    try:
        future.result()
    except Exception:
        pass


# -- shared pools --------------------------------------------------------------

_SHARED: dict[int, WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def get_pool(workers: int) -> WorkerPool:
    """The process-wide shared pool for ``workers`` worker processes.

    Executors and campaigns that were not handed an explicit pool
    acquire theirs here, which is what makes back-to-back
    ``Campaign.run`` calls reuse one warm pool.  A shared pool that was
    closed (directly or via :func:`shutdown_pools`) is replaced with a
    fresh one on the next acquisition.
    """
    with _SHARED_LOCK:
        pool = _SHARED.get(workers)
        if pool is None or pool.closed:
            pool = WorkerPool(workers)
            _SHARED[workers] = pool
        return pool


def active_pools() -> list[WorkerPool]:
    """Snapshot of the currently-registered shared pools (open or not) —
    lets callers (CLI teardown, tests) observe what :func:`get_pool`
    has handed out without creating anything."""
    with _SHARED_LOCK:
        return list(_SHARED.values())


def pool_telemetry() -> list[dict[str, Any]]:
    """Observability snapshot of every registered shared pool.

    One JSON-safe mapping per pool — worker width, live ``pool_id``
    (``None`` while cold), ``spawns`` count and prewarmed-ref total —
    for status endpoints (``repro serve``) and dashboards.  ``spawns``
    staying at 1 per width is how a server process certifies the
    one-pool-per-worker-count invariant.
    """
    with _SHARED_LOCK:
        pools = sorted(_SHARED.items())
    return [
        {
            "workers": workers,
            "pool_id": pool.pool_id,
            "spawns": pool.spawns,
            "prewarmed_refs": pool.prewarmed_refs,
            "closed": pool.closed,
        }
        for workers, pool in pools
    ]


def close_pool(workers: int, wait: bool = True) -> None:
    """Close and deregister the shared pool for ``workers``, if any.

    The targeted form of :func:`shutdown_pools` — a caller that only
    used one width (the CLI, say) tears its own pool down without
    destroying warm pools other parts of the process still hold.
    """
    with _SHARED_LOCK:
        pool = _SHARED.pop(workers, None)
    if pool is not None:
        pool.close(wait=wait)


def shutdown_pools(wait: bool = True) -> None:
    """Close every shared pool (idempotent; also runs at exit).

    Long-lived embedders (test suites, services) can call this between
    phases for deterministic worker teardown; the next :func:`get_pool`
    starts cold again.
    """
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.close(wait=wait)


atexit.register(shutdown_pools)


# -- the ScenarioRef-table batch format ---------------------------------------


def make_batch_table(
    builders: Sequence["ScenarioBuilder"], seeds: Sequence[int]
) -> tuple[tuple["ScenarioBuilder", ...], tuple[tuple[int, int], ...]]:
    """Pack parallel ``builders``/``seeds`` into a deduped batch table.

    Returns ``(table, jobs)`` where ``table`` holds each distinct
    builder once (value-deduped when hashable — equal ``ScenarioRef``\\ s
    collapse — with an identity fallback for unhashable callables) and
    ``jobs`` is the ``(table_index, seed)`` row per cell, in cell order.

    Refs compare equal by ``(name, sorted(params))`` alone, but a ref
    *bound* to a custom registry resolves through that registry, not
    the default one — so the dedupe key also carries the bound
    registry's identity, and a bound ref never collapses into an
    equal-looking ref that would build a different scenario.

    Table entries that present a ``cache_key`` (scenario refs, replay
    refs) are probed for picklability as they enter the table: a ref
    carrying an unpicklable payload — a hashable-but-unpicklable
    parameter value, say — raises :class:`~repro.errors.ConfigError`
    naming the offender here, instead of an opaque pickle crash deep
    inside the pool submission machinery.  (Raw callables keep their
    existing contract: the executor's up-front portability probe routes
    unpicklable ones to the serial path before any table is built.)
    """
    if len(builders) != len(seeds):
        raise ValueError(
            f"builders and seeds must align cell-for-cell: "
            f"got {len(builders)} builders, {len(seeds)} seeds"
        )
    table: list["ScenarioBuilder"] = []
    index: dict[Any, int] = {}
    jobs: list[tuple[int, int]] = []
    for builder, seed in zip(builders, seeds):
        bound = getattr(builder, "registry", None)
        key = builder if bound is None else (id(bound), builder)
        try:
            position = index.get(key)
        except TypeError:  # unhashable builder: ship it undeduped
            position = None
        if position is None:
            position = len(table)
            if hasattr(builder, "cache_key"):
                _check_ref_payload(builder)
            table.append(builder)
            try:
                index[key] = position
            except TypeError:
                pass
        jobs.append((position, seed))
    return tuple(table), tuple(jobs)


def _check_ref_payload(builder: Any) -> None:
    """Reject a ref-like table entry whose payload cannot be pickled.

    Ref construction validates hashability only — a value can be
    hashable yet unpicklable (a closure-held object, a binding to a
    registry of lambdas).  The executor's up-front portability probe
    shields its own dispatch path by degrading to serial, but anyone
    driving :func:`make_batch_table`/:func:`run_table_batch` directly
    (benches, embedders, future dispatchers) used to get a raw
    ``PicklingError`` from inside ``ProcessPoolExecutor.submit``; the
    table is the one place every batch passes through, so the explicit
    error lives here.  Probed once per *distinct* table entry — deduped
    refs are tiny, so the probe is noise next to the submission pickle
    it predicts.
    """
    try:
        pickle.dumps(builder)
    except Exception as error:
        describe = getattr(builder, "describe", None)
        label = describe() if callable(describe) else repr(builder)
        raise ConfigError(
            f"batch-table entry {label} cannot be pickled to worker "
            f"processes ({type(error).__name__}: {error}); ScenarioRef/"
            "ReplayRef payloads must be picklable to ride the batch "
            "wire format — run with workers=1 to keep it in-process"
        ) from error


def run_table_batch(
    table: Sequence["ScenarioBuilder"],
    jobs: Sequence[tuple[int, int]],
    batch_sampling: bool | None = None,
    merge_batch: bool | None = None,
) -> list["TestRunResult"]:
    """Worker-side entry point: run one batch table's jobs, in order.

    Module-level so it pickles to workers.  Builders that are portable
    (default-registry) ``ScenarioRef``\\ s run through the worker cache —
    resolution, parameter validation and PFA compilation are memoized
    per :attr:`~repro.workloads.registry.ScenarioRef.cache_key` for the
    life of the worker process.  Portable
    :class:`~repro.ptest.replay.ReplayRef` replay cells likewise: their
    base scenario resolves through the same cache and the parsed merged
    pattern is memoized per replay key.  Everything else (raw
    callables, refs bound to a custom registry) runs uncached exactly
    as before.

    ``batch_sampling`` selects the vectorized pattern-sampling fast
    path for same-variant job groups (see :func:`_plan_batch_sampling`):
    ``None`` auto-detects numpy, ``True`` demands it
    (:class:`~repro.errors.ConfigError` when unavailable — the
    parent-side executor raises the same error earlier), ``False``
    forces the scalar path.  ``merge_batch`` extends a planned group
    one stage further: the group's rounds are merged as one
    :meth:`~repro.ptest.merger.PatternMerger.merge_batch` call, each
    cell under its own derived merger seed (same three-state knob;
    merge batching rides on a sampling plan, so ``batch_sampling=False``
    disables it too).  Results are bit-identical at every setting.
    """
    from repro.ptest.replay import ReplayRef
    from repro.workloads.registry import ScenarioRef

    plans = _plan_batch_sampling(table, jobs, batch_sampling, merge_batch)
    results = []
    for job_index, (position, seed) in enumerate(jobs):
        builder = table[position]
        if isinstance(builder, ScenarioRef) and builder.registry is None:
            results.append(
                _run_cached_ref(builder, seed, plans.get(job_index))
            )
        elif isinstance(builder, ReplayRef) and builder.portable:
            results.append(_run_cached_replay(builder, seed))
        else:
            results.append(builder(seed).run())
    return results


@dataclass
class _BatchPlan:
    """One same-variant job group's shared vectorized sampling state."""

    entry: "_CacheEntry"
    shared: Any  # SharedPatternBatch
    first_test: Any  # the AdaptiveTest already built for the first job
    #: The group's :class:`~repro.ptest.generator.SharedMergeBatch`
    #: when worker-side merge batching is on (``None``: cells merge
    #: their own rounds, the plan only shares sampling).
    merges: Any = None


def _plan_batch_sampling(
    table: Sequence["ScenarioBuilder"],
    jobs: Sequence[tuple[int, int]],
    batch_sampling: bool | None,
    merge_batch: bool | None = None,
) -> dict[int, tuple[_BatchPlan, int]]:
    """Group a batch's jobs for vectorized pattern sampling.

    Jobs sharing one portable ``ScenarioRef`` table position form a
    group; every group of two or more cells gets a
    :class:`~repro.ptest.generator.SharedPatternBatch` walking the
    variant's cached compiled automaton with one lockstep column per
    cell, seeded with the exact generator seed each cell's harness
    will derive.  With ``merge_batch`` on (or auto with numpy), the
    plan also carries a :class:`~repro.ptest.generator.SharedMergeBatch`
    so the group's rounds are merged in one batched call, each cell
    under the merger seed its harness derives.  Returns
    ``{job_index: (plan, cell_column)}`` for the planned jobs;
    everything unplanned runs the scalar path.

    Strictly advisory: any group that cannot be planned — regex-pipeline
    scenarios with no explicit PFA, subclassed harnesses, overridden
    generators, planner errors — simply falls back to scalar sampling,
    which is bit-identical by the sampler's contract.
    """
    if batch_sampling is False:
        return {}
    from repro.automata.batch import numpy_or_none, require_numpy

    if merge_batch is True:
        # Worker-side backstops; CellExecutor raises these same
        # ConfigErrors parent-side before any batch is submitted.
        # The merge check runs before the auto-sampling early-out: an
        # *explicit* merge_batch=True must fail loudly without numpy,
        # never silently degrade with the auto-detected sampling path.
        require_numpy("run_table_batch(merge_batch=True)")
    if batch_sampling is True:
        require_numpy("run_table_batch(batch_sampling=True)")
    elif numpy_or_none() is None:
        return {}
    from repro.workloads.registry import ScenarioRef

    groups: dict[int, list[int]] = {}
    for job_index, (position, _seed) in enumerate(jobs):
        builder = table[position]
        if isinstance(builder, ScenarioRef) and builder.registry is None:
            groups.setdefault(position, []).append(job_index)
    plans: dict[int, tuple[_BatchPlan, int]] = {}
    for position, members in groups.items():
        if len(members) < 2:
            continue
        try:
            plan = _build_batch_plan(
                table[position],
                [jobs[index][1] for index in members],
                merge_batch,
            )
        except Exception:
            continue  # scalar fallback; results identical either way
        if plan is None:
            continue
        for cell, job_index in enumerate(members):
            plans[job_index] = (plan, cell)
    return plans


def _build_batch_plan(
    ref: "ScenarioRef",
    seeds: Sequence[int],
    merge_batch: bool | None = None,
) -> _BatchPlan | None:
    """Build one group's shared sampler, or ``None`` if not batchable.

    Batchable means: the ref builds a plain :class:`AdaptiveTest` (not
    a subclass — an override could change how patterns are consumed)
    with no merged/generator override, whose pattern automaton resolves
    to an explicit (cache-compiled) PFA.  The shared sampler is seeded
    with each cell's derived generator seed — the same
    ``RngStreams(master_seed=seed).fresh_seed("generator")`` the
    harness draws — and primed with the first round's pattern count.
    Unless ``merge_batch`` is ``False``, the plan is extended with a
    :class:`~repro.ptest.generator.SharedMergeBatch` seeded with each
    cell's derived *merger* seed (``fresh_seed("merger")`` — seeds are
    pure hashes, so deriving them here matches the harness's own
    draws), and one round is pre-merged instead of pre-sampled.
    """
    from repro.automata.batch import packed_rows
    from repro.ptest.generator import SharedMergeBatch, SharedPatternBatch
    from repro.sim.rng import RngStreams

    entry = _cache_entry(ref.cache_key, lambda: _resolved_entry(ref))
    # The other group members skip their per-job cache fetch (the plan
    # carries the entry), so account their hits here — cache telemetry
    # stays identical to the unbatched path.
    entry.hits += len(seeds) - 1
    first_test = entry.builder(seeds[0], **entry.params)
    if type(first_test) is not AdaptiveTest:
        return None
    if (
        first_test.merged_override is not None
        or first_test.generator_override is not None
        or first_test.merge_override is not None
    ):
        return None
    _prime_compiled_pfa(first_test, entry)
    compiled = first_test.pattern_pfa()
    if not isinstance(compiled, CompiledPFA):
        return None
    config = first_test.config
    generator_seeds = [
        RngStreams(master_seed=seed).fresh_seed("generator")
        for seed in seeds
    ]
    shared = SharedPatternBatch(
        pfa=compiled,
        seeds=generator_seeds,
        size=config.pattern_size,
    )
    if shared.sampler.used_numpy:
        entry.packed = packed_rows(compiled)
    merges = None
    if merge_batch is not False:
        merger_seeds = [
            RngStreams(master_seed=seed).fresh_seed("merger")
            for seed in seeds
        ]
        merges = SharedMergeBatch(
            shared=shared,
            merger_seeds=merger_seeds,
            op=config.op,
            chunk=config.chunk,
            pattern_count=config.pattern_count,
        )
        merges.prime(1)
    else:
        shared.prime(config.pattern_count)
    return _BatchPlan(
        entry=entry, shared=shared, first_test=first_test, merges=merges
    )


#: Seed used to build the throwaway test instance a prewarm compiles
#: its PFA from.  Any value works: the cached compilation is reused
#: only after a source-PFA equality check, so a seed-dependent
#: automaton simply recompiles on first real use.
PREWARM_SEED = 0


def prewarm_table(table: Sequence["ScenarioBuilder"]) -> int:
    """Worker-side entry point: populate this process's cache for a
    table of upcoming builders, running nothing.

    The cache-building half of :func:`run_table_batch` on its own: for
    each portable :class:`~repro.workloads.registry.ScenarioRef` /
    :class:`~repro.ptest.replay.ReplayRef` in ``table``, resolve the
    registry builder, validate its parameters, parse any merged
    pattern, and compile the scenario's pattern automaton — so the
    first real batch that needs the entry finds it hot.  Advisory by
    design: unresolvable entries are skipped (real dispatch raises the
    informative error), and nothing here can change a later result —
    the entries built are exactly the ones :func:`run_table_batch`
    would have built on first contact.  Returns how many entries are
    warm (pre-existing ones included).
    """
    from repro.ptest.replay import ReplayRef
    from repro.workloads.registry import ScenarioRef

    warmed = 0
    for builder in table:
        try:
            if isinstance(builder, ScenarioRef) and builder.registry is None:
                entry = _cache_entry(
                    builder.cache_key,
                    lambda ref=builder: _resolved_entry(ref),
                )
            elif isinstance(builder, ReplayRef) and builder.portable:
                entry = _cache_entry(
                    builder.cache_key,
                    lambda ref=builder: _resolved_entry(
                        ref.scenario, merged=ref.merged()
                    ),
                )
            else:
                continue
            _prime_compiled_pfa(
                entry.builder(PREWARM_SEED, **entry.params), entry
            )
            if entry.compiled is not None and entry.packed is None:
                # Pre-pack the batch sampler's padded arrays too (when
                # numpy is on), so the first real batch re-packs nothing.
                from repro.automata.batch import numpy_available, packed_rows

                if numpy_available():
                    entry.packed = packed_rows(entry.compiled)
            warmed += 1
        except Exception:
            continue  # the round's own dispatch surfaces the error
    return warmed


@dataclass
class _CacheEntry:
    """One worker-cache slot: the resolved builder and its artifacts."""

    builder: Callable[..., Any]
    params: dict[str, Any]
    compiled: CompiledPFA | None = None
    #: Parsed merged pattern of a replay cell (``None`` for plain
    #: scenario entries) — read-only to the harness, safely shared.
    merged: Any = None
    #: The compiled PFA's padded numpy packing
    #: (:class:`~repro.automata.batch.PackedPFA`), pinned here once the
    #: batch-sampling planner builds it so warm workers re-pack nothing
    #: (it is also cached on the compiled instance itself).
    packed: Any = None
    hits: int = 0
    compilations: int = 0


#: Per-process memoization of resolved scenarios, keyed by
#: ``ScenarioRef.cache_key``.  Its lifetime is the process's; pool
#: workers run :func:`clear_worker_cache` as their initializer, so
#: they always start cold even when forked from a parent that called
#: :func:`run_table_batch` in-process.
_WORKER_CACHE: dict[tuple, _CacheEntry] = {}

#: Entry cap: warm workers live for the embedding process's lifetime,
#: so an unbounded cache would grow with every distinct grid point ever
#: dispatched.  Eviction is oldest-inserted (batches access their
#: variants locally, so FIFO loses almost nothing over LRU here).
MAX_WORKER_CACHE_ENTRIES = 512


def _cache_entry(cache_key: tuple, factory: Callable[[], _CacheEntry]) -> _CacheEntry:
    """Fetch-or-build one worker-cache slot (FIFO-capped)."""
    entry = _WORKER_CACHE.get(cache_key)
    if entry is None:
        entry = factory()
        while len(_WORKER_CACHE) >= MAX_WORKER_CACHE_ENTRIES:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[cache_key] = entry
    else:
        entry.hits += 1
    return entry


def _resolved_entry(ref: "ScenarioRef", merged: Any = None) -> _CacheEntry:
    from repro.workloads.registry import REGISTRY

    spec = REGISTRY.get(ref.name)
    return _CacheEntry(
        builder=spec.builder,
        params=spec.validate(dict(ref.params)),
        merged=merged,
    )


def _run_cached_ref(
    ref: "ScenarioRef",
    seed: int,
    plan_cell: tuple[_BatchPlan, int] | None = None,
) -> "TestRunResult":
    if plan_cell is None:
        entry = _cache_entry(ref.cache_key, lambda: _resolved_entry(ref))
        test = entry.builder(seed, **entry.params)
        _prime_compiled_pfa(test, entry)
        return test.run()
    plan, cell = plan_cell
    entry = plan.entry
    if cell == 0:
        # The planner already built (and primed) the group's first test.
        test = plan.first_test
    else:
        test = entry.builder(seed, **entry.params)
        _prime_compiled_pfa(test, entry)
    # Exactly one override per cell: the merge stream consumes the
    # shared sampler itself, so also attaching a generator stream would
    # double-consume the cell's column.
    if plan.merges is not None:
        test.merge_override = plan.merges.stream(cell)
    else:
        test.generator_override = plan.shared.stream(cell)
    return test.run()


def _run_cached_replay(ref: Any, seed: int) -> "TestRunResult":
    """Run one replay cell through the worker cache.

    The cache slot holds the base scenario's resolved builder/params
    *and* the parsed merged pattern, keyed by the replay ref's own
    ``cache_key`` — distinct from (and coexisting with) the plain
    scenario entry for the same base ref.
    """
    entry = _cache_entry(
        ref.cache_key,
        lambda: _resolved_entry(ref.scenario, merged=ref.merged()),
    )
    test = entry.builder(seed, **entry.params)
    if not isinstance(test, AdaptiveTest):
        raise ConfigError(
            f"replay cell {ref.describe()} built "
            f"{type(test).__name__}, not an AdaptiveTest"
        )
    _prime_compiled_pfa(test, entry)
    test.merged_override = entry.merged
    return test.run()


def _prime_compiled_pfa(test: Any, entry: _CacheEntry) -> None:
    """Substitute the cached :class:`CompiledPFA` into a fresh test.

    Only applies to :class:`AdaptiveTest` instances whose pattern
    automaton is an explicit (or default Fig. 5) PFA.  The cached
    compilation is reused only when its source PFA *equals* the one
    this test just built — a builder producing seed-dependent automata
    falls back to a fresh compilation, trading the speedup for
    unconditional correctness.
    """
    if not isinstance(test, AdaptiveTest):
        return
    source = test.pattern_pfa()
    if source is None or isinstance(source, CompiledPFA):
        return
    compiled = entry.compiled
    if compiled is None or compiled.source != source:
        compiled = CompiledPFA.from_pfa(source)
        entry.compiled = compiled
        entry.compilations += 1
    test.pfa = compiled


def worker_cache_info() -> dict[str, Any]:
    """Introspection snapshot of *this process's* worker cache.

    Submit through a pool (``pool.submit(worker_cache_info)``) to
    observe a worker's cache; used by the lifecycle tests to verify
    per-variant keying and fork-safety.
    """
    return {
        "entries": len(_WORKER_CACHE),
        "keys": sorted(_WORKER_CACHE, key=repr),
        "hits": {key: entry.hits for key, entry in _WORKER_CACHE.items()},
        "compilations": {
            key: entry.compilations
            for key, entry in _WORKER_CACHE.items()
        },
    }


def clear_worker_cache() -> int:
    """Drop every worker-cache entry (returns how many were held)."""
    count = len(_WORKER_CACHE)
    _WORKER_CACHE.clear()
    return count
