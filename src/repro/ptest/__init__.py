"""pTest: the adaptive testing tool (the paper's contribution).

The three key components of Fig. 2, plus the harness that ties them to
the simulated OMAP platform:

* :mod:`repro.ptest.generator` — the **pattern generator** (Algorithm 2):
  regular expression + probability distribution -> PFA -> test patterns.
* :mod:`repro.ptest.merger` — the **pattern merger** (the ``op``
  parameter of Algorithm 1): systematically interleaves *n* patterns
  into one merged pattern, "similar to a process scheduler".
* :mod:`repro.ptest.detector` — the **bug detector**: watches task
  states, the wait-for graph and bridge reply latencies; classifies
  crashes, deadlocks, starvation and hangs; dumps reproduction info.
* :mod:`repro.ptest.committer` — the committer issuing the merged
  pattern's remote commands through the bridge.
* :mod:`repro.ptest.recording` — Definition 2 state records.
* :mod:`repro.ptest.harness` — ``AdaptiveTest`` (Algorithm 1), end to
  end on the simulated SoC.
* :mod:`repro.ptest.pcore_model` — the pCore PFA of Fig. 5 with the
  paper's probabilities, and RE (2).
* :mod:`repro.ptest.pool` — persistent, health-checked worker pools,
  the deduped ScenarioRef-table batch wire format, and the worker-side
  scenario/PFA/merged-pattern caches behind parallel campaign dispatch.
* :mod:`repro.ptest.adaptive` — multi-round adaptive campaigns on one
  warm pool: pluggable ``RefinePolicy`` (grid zoom, successive halving,
  merged-pattern replay focus) feeding detection results back into the
  next round's scenario refs.
* :mod:`repro.ptest.pipeline` — composable refinement schedules:
  ``PolicyPipeline`` stages existing policies (zoom for N rounds, then
  replay once detections plateau) and is itself a ``RefinePolicy``,
  with cross-round pre-warming keeping the pool's caches hot between
  stages.
* :mod:`repro.ptest.spec` — the frozen, JSON-serializable
  ``CampaignSpec`` request schema and ``execute_spec``, the single
  execution entry point shared by the CLI subcommands, ``repro serve``
  and :mod:`repro.client`.
"""

from repro.ptest.config import PTestConfig
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern
from repro.ptest.generator import PatternGenerator
from repro.ptest.merger import MERGE_OPS, PatternMerger, register_merge_op
from repro.ptest.recording import ProcessStateRecorder, StateRecord
from repro.ptest.detector import (
    Anomaly,
    AnomalyKind,
    BugDetector,
    DetectorConfig,
)
from repro.ptest.committer import Committer, PairBinding
from repro.ptest.report import BugReport
from repro.ptest.harness import AdaptiveTest, TestRunResult, run_adaptive_test
from repro.ptest.shrink import PatternShrinker, ShrinkResult, truncate_merged
from repro.ptest.campaign import (
    Campaign,
    CampaignRow,
    DetectionCapture,
    DetectionSample,
    TeeSink,
    compare_ops,
    grid_variants,
)
from repro.ptest.adaptive import (
    AdaptiveCampaign,
    AdaptiveResult,
    GridZoom,
    POLICIES,
    RefinePolicy,
    Repeat,
    ReplayFocus,
    RoundObservation,
    SuccessiveHalving,
)
from repro.ptest.pipeline import (
    PipelineStage,
    Plateau,
    PolicyPipeline,
    StageCondition,
    Until,
    parse_pipeline,
)
from repro.ptest.executor import (
    CellExecutor,
    CollectSink,
    ResultSink,
    WorkCell,
    run_cell,
    run_cell_batch,
)
from repro.ptest.pool import (
    WorkerPool,
    close_pool,
    get_pool,
    make_batch_table,
    prewarm_table,
    run_table_batch,
    shutdown_pools,
)
from repro.ptest.waitgraph import IncrementalWaitForGraph, find_cycle_edges
from repro.ptest.replay import (
    ReplayRef,
    parse_merged_description,
    replay_ref,
    replay_report_dict,
)
from repro.ptest.spec import (
    CampaignSpec,
    RoundResult,
    SpecOutcome,
    execute_spec,
)
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_distribution,
    pcore_pfa,
)

__all__ = [
    "PTestConfig",
    "MergedPattern",
    "PatternCommand",
    "TestPattern",
    "PatternGenerator",
    "MERGE_OPS",
    "PatternMerger",
    "register_merge_op",
    "ProcessStateRecorder",
    "StateRecord",
    "Anomaly",
    "AnomalyKind",
    "BugDetector",
    "DetectorConfig",
    "Committer",
    "PairBinding",
    "BugReport",
    "AdaptiveTest",
    "TestRunResult",
    "run_adaptive_test",
    "PatternShrinker",
    "ShrinkResult",
    "truncate_merged",
    "Campaign",
    "CampaignRow",
    "DetectionCapture",
    "DetectionSample",
    "TeeSink",
    "compare_ops",
    "grid_variants",
    "AdaptiveCampaign",
    "AdaptiveResult",
    "GridZoom",
    "POLICIES",
    "RefinePolicy",
    "Repeat",
    "ReplayFocus",
    "RoundObservation",
    "SuccessiveHalving",
    "PipelineStage",
    "Plateau",
    "PolicyPipeline",
    "StageCondition",
    "Until",
    "parse_pipeline",
    "CellExecutor",
    "CollectSink",
    "ResultSink",
    "WorkCell",
    "run_cell",
    "run_cell_batch",
    "WorkerPool",
    "close_pool",
    "get_pool",
    "make_batch_table",
    "prewarm_table",
    "run_table_batch",
    "shutdown_pools",
    "IncrementalWaitForGraph",
    "find_cycle_edges",
    "CampaignSpec",
    "RoundResult",
    "SpecOutcome",
    "execute_spec",
    "ReplayRef",
    "parse_merged_description",
    "replay_ref",
    "replay_report_dict",
    "PCORE_REGULAR_EXPRESSION",
    "PCORE_SERVICES",
    "pcore_distribution",
    "pcore_pfa",
]
