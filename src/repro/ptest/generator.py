"""The pattern generator (Algorithm 2).

``PatternGenerator(RE, PD, s)`` in the paper: interpret the regular
expression, convert to an NFA, attach the probability distribution to
get a PFA, then walk it emitting one test pattern of size ``s``.  This
class performs the construction once and samples any number of patterns
from the same PFA (Algorithm 1 calls the procedure *n* times).

Distributions can be given three ways:

* a ready :class:`~repro.automata.distributions.TransitionDistribution`
  keyed by DFA state ids,
* a *label-keyed* mapping ``{(state_label, symbol): weight}`` resolved
  against the PFA's state labels (how :mod:`repro.ptest.pcore_model`
  specifies Fig. 5's numbers), or
* ``None`` — uniform over each state's outgoing arcs (the default when
  the user has no profiling knowledge).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.automata.batch import BatchSampler, PatternBatch
from repro.automata.compiled import CompiledPFA
from repro.automata.dfa import DFA, minimize_dfa, nfa_to_dfa
from repro.automata.distributions import TransitionDistribution
from repro.automata.nfa import regex_to_nfa
from repro.automata.pfa import PFA, build_pfa
from repro.automata.regex_parser import parse_regex
from repro.automata.sampling import OnFinal, PatternSampler, SampledPattern
from repro.errors import ConfigError, DistributionError
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import MergedPattern, TestPattern


def resolve_label_distribution(
    pfa_or_dfa_labels: Mapping[int, str],
    weights: Mapping[tuple[str, str], float],
) -> TransitionDistribution:
    """Convert ``{(state_label, symbol): weight}`` into state-id keys."""
    by_label: dict[str, int] = {}
    for state, label in pfa_or_dfa_labels.items():
        if label in by_label:
            raise DistributionError(f"duplicate state label {label!r}")
        by_label[label] = state
    dist = TransitionDistribution()
    for (label, symbol), weight in weights.items():
        if label not in by_label:
            raise DistributionError(f"unknown state label {label!r}")
        dist.set(by_label[label], symbol, weight)
    return dist


@dataclass
class PatternGenerator:
    """Builds a PFA from a regular expression and samples test patterns.

    Parameters
    ----------
    regex:
        The service regular expression (e.g. RE (2) of the paper).
    distribution:
        Transition weights (see module docstring); ``None`` = uniform.
    alphabet:
        Known service symbols, enabling the paper's juxtaposed notation
        (``TSTR``) to tokenize correctly.
    seed:
        RNG seed for ``MakeChoice``.
    on_final:
        What a walk does at an absorbing final state before reaching
        size ``s`` (``"stop"`` or ``"restart"``; see the sampler).
    minimize:
        Minimise the DFA before attaching probabilities.  Keep ``False``
        when the distribution distinguishes states the minimal DFA would
        merge (Fig. 5 gives TC and TCH different outgoing rows even
        though they are Myhill-Nerode equivalent).
    """

    regex: str
    distribution: TransitionDistribution | None = None
    alphabet: tuple[str, ...] | None = None
    seed: int | None = None
    on_final: OnFinal = "stop"
    minimize: bool = False
    pfa: PFA = field(init=False)
    dfa: DFA = field(init=False)
    _sampler: PatternSampler = field(init=False, repr=False)
    generated: int = 0

    def __post_init__(self) -> None:
        ast = parse_regex(self.regex, alphabet=self.alphabet)
        dfa = nfa_to_dfa(regex_to_nfa(ast))
        if self.minimize:
            dfa = minimize_dfa(dfa)
        self.dfa = dfa
        self.pfa = build_pfa(dfa, self.distribution)
        self._sampler = PatternSampler(
            self.pfa, seed=self.seed, on_final=self.on_final
        )

    @classmethod
    def from_pfa(
        cls,
        pfa: PFA | CompiledPFA,
        seed: int | None = None,
        on_final: OnFinal = "stop",
    ) -> "PatternGenerator":
        """Bypass the RE pipeline and sample a hand-built PFA (used for
        the exact Fig. 5 automaton).

        Accepts a prebuilt :class:`CompiledPFA` too, so callers that
        cache one compilation across many generators (the worker-side
        caches of :mod:`repro.ptest.pool`) skip the per-run
        recompilation; seeded output is identical either way.
        """
        generator = cls.__new__(cls)
        generator.regex = ""
        generator.distribution = None
        generator.alphabet = None
        generator.seed = seed
        generator.on_final = on_final
        generator.minimize = False
        generator.pfa = pfa.source if isinstance(pfa, CompiledPFA) else pfa
        generator.dfa = None  # type: ignore[assignment]
        generator._sampler = PatternSampler(pfa, seed=seed, on_final=on_final)
        generator.generated = 0
        return generator

    def generate(self, size: int, pattern_id: int = 0) -> TestPattern:
        """Algorithm 2: one pattern of (at most) ``size`` services."""
        if size < 1:
            raise ConfigError(f"pattern size must be >= 1, got {size}")
        sampled = self._sampler.sample(size)
        self.generated += 1
        return TestPattern(
            pattern_id=pattern_id,
            symbols=sampled.symbols,
            states=sampled.states,
            log_probability=sampled.log_probability,
        )

    def generate_batch(self, count: int, size: int) -> list[TestPattern]:
        """Algorithm 1 lines 1-3: ``T[i] <- PatternGenerator(RE, PD, s)``."""
        if count < 1:
            raise ConfigError(f"pattern count must be >= 1, got {count}")
        return [self.generate(size, pattern_id=i) for i in range(count)]

    def accepts(self, symbols: tuple[str, ...] | list[str]) -> bool:
        """Whether a symbol sequence is a *prefix walk* of the PFA — used
        by tests to re-validate every generated pattern against the RE."""
        return self.pfa.walk_probability(tuple(symbols)) > 0.0


@dataclass
class SharedPatternBatch:
    """One vectorized sampler feeding many harness cells' generators.

    The worker-side batching bridge: a batch of same-variant campaign
    cells shares one :class:`~repro.automata.batch.BatchSampler` over
    the variant's compiled automaton, with one lockstep *column* per
    cell (seeded with that cell's own generator seed).  Cells run
    sequentially inside the worker, so each cell's patterns are staged
    in a per-cell FIFO: whenever any cell needs a pattern none of its
    rounds have produced yet, one lockstep ``sample(size)`` advances
    *every* cell by one pattern and queues the results.  Per-cell draw
    order is exactly the scalar order (the sampler's lockstep-front
    contract), so the queue any single cell drains is bit-identical to
    what its own ``PatternSampler(seed)`` would have produced — no
    matter how the other cells interleave their consumption.

    ``size`` is fixed per batch (it is fixed per scenario config);
    :meth:`next_pattern` rejects a mismatching request rather than
    silently desynchronising the lockstep draws.

    Queues hold whole :class:`~repro.automata.batch.PatternBatch`
    objects (one per lockstep round), not materialised patterns:
    :meth:`next_batch` hands a cell its round's batch so the stream
    can build an array-backed ``TestPattern`` straight from the cell's
    id row — the sample→merge path stays on arrays end to end.
    :meth:`next_pattern` keeps the materialised-object surface for
    callers that want one.
    """

    pfa: PFA | CompiledPFA
    seeds: Sequence[int | None]
    size: int
    on_final: OnFinal = "stop"
    use_numpy: bool | None = None
    sampler: BatchSampler = field(init=False, repr=False)
    _queues: list[deque] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigError(
                f"pattern size must be >= 1, got {self.size}"
            )
        self.sampler = BatchSampler(
            self.pfa,
            self.seeds,
            on_final=self.on_final,
            use_numpy=self.use_numpy,
        )
        self._queues = [deque() for _ in self.seeds]

    @property
    def cells(self) -> int:
        return self.sampler.cells

    def prime(self, rounds: int) -> None:
        """Pre-draw ``rounds`` patterns per cell (one vectorized pass
        per round) — typically the first harness round's full
        ``pattern_count``, drawn before any cell starts running."""
        for _ in range(rounds):
            self._advance()

    def _advance(self) -> None:
        batch = self.sampler.sample_batch(self.size)
        for queue in self._queues:
            queue.append(batch)

    def next_batch(self, cell: int, size: int) -> PatternBatch:
        """Cell ``cell``'s next round, as the round's whole
        :class:`PatternBatch` (the cell reads only its own row)."""
        if size != self.size:
            raise ConfigError(
                f"shared pattern batch was built for size {self.size}, "
                f"cell requested {size}"
            )
        queue = self._queues[cell]
        if not queue:
            self._advance()
        return queue.popleft()

    def next_pattern(self, cell: int, size: int) -> SampledPattern:
        return self.next_batch(cell, size).pattern(cell)

    def stream(self, cell: int) -> "BatchPatternStream":
        """Cell ``cell``'s generator-shaped view of this batch."""
        return BatchPatternStream(shared=self, cell=cell)


@dataclass
class BatchPatternStream:
    """One cell's :class:`PatternGenerator`-shaped view of a
    :class:`SharedPatternBatch`.

    Presents the exact generator surface the harness consumes
    (:meth:`generate` / :meth:`generate_batch` with the same validation
    errors, the ``generated`` counter, :meth:`accepts`) while drawing
    its patterns from the shared vectorized sampler.
    :meth:`matches` is the harness-side guard: the stream is only ever
    substituted for a scalar generator walking the *same compiled
    automaton* with the *same seed*, so substitution can never change a
    run's output.
    """

    shared: SharedPatternBatch
    cell: int
    generated: int = 0

    @property
    def seed(self) -> int | None:
        return self.shared.seeds[self.cell]

    @property
    def pfa(self) -> PFA:
        return self.shared.sampler.compiled.source

    def matches(
        self, pfa: PFA | CompiledPFA | None, seed: int | None
    ) -> bool:
        """Whether this stream reproduces ``PatternGenerator.from_pfa(
        pfa, seed=seed)`` bit for bit: identical compiled automaton
        (object identity — the worker cache substitutes the very
        instance the batch walks) and identical generator seed."""
        return pfa is self.shared.sampler.compiled and seed == self.seed

    def generate(self, size: int, pattern_id: int = 0) -> TestPattern:
        if size < 1:
            raise ConfigError(f"pattern size must be >= 1, got {size}")
        batch = self.shared.next_batch(self.cell, size)
        self.generated += 1
        row = batch.row(self.cell)
        if row is None:
            # Scalar fallback: the batch holds materialised patterns.
            sampled = batch.pattern(self.cell)
            return TestPattern(
                pattern_id=pattern_id,
                symbols=sampled.symbols,
                states=sampled.states,
                log_probability=sampled.log_probability,
            )
        # Array plane: the TestPattern wraps the cell's id row directly
        # (zero-copy views into the batch) and materialises its tuple
        # surface only if something reads it — the merger won't.
        return TestPattern.from_ids(
            pattern_id=pattern_id,
            symbol_ids=row.symbol_ids,
            alphabet=row.alphabet,
            state_ids=row.state_ids,
            log_probability=row.log_probability,
        )

    def generate_batch(self, count: int, size: int) -> list[TestPattern]:
        if count < 1:
            raise ConfigError(f"pattern count must be >= 1, got {count}")
        return [self.generate(size, pattern_id=i) for i in range(count)]

    def accepts(self, symbols: tuple[str, ...] | list[str]) -> bool:
        return self.pfa.walk_probability(tuple(symbols)) > 0.0


@dataclass
class SharedMergeBatch:
    """Cross-cell merge dispatch layered on a :class:`SharedPatternBatch`.

    One batch of same-variant campaign cells already shares a lockstep
    sampler; this extends the sharing one stage further down the array
    plane: each *round*, every cell's ``pattern_count`` patterns are
    drawn from the shared sampler (through the cells' own
    :class:`BatchPatternStream` views, preserving per-cell draw order)
    and all cells' groups are merged in **one**
    :meth:`~repro.ptest.merger.PatternMerger.merge_batch` call, each
    group under the merger seed that cell's harness derives from its
    own master seed.  Merges are pure functions of
    ``(op, seed, chunk, patterns)`` — every merge starts a fresh
    ``random.Random(seed)`` — so the queued results are bit-identical
    to the per-cell ``PatternMerger.merge`` calls they replace, no
    matter how the cells interleave their consumption.

    Like the sampler underneath, cells run sequentially inside the
    worker, so per-cell results are staged in FIFOs: whenever any cell
    needs a round no advance has produced yet, one batched round is
    drawn and merged for *every* cell.
    """

    shared: SharedPatternBatch
    #: Per-cell merger seeds (the ``fresh_seed("merger")`` each cell's
    #: harness derives); aligned with the sampler's cells.
    merger_seeds: Sequence[int | None]
    op: str
    chunk: int
    pattern_count: int
    merger: PatternMerger = field(init=False, repr=False)
    _streams: list["BatchPatternStream"] = field(init=False, repr=False)
    _queues: list[deque] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.pattern_count < 1:
            raise ConfigError(
                f"pattern count must be >= 1, got {self.pattern_count}"
            )
        if len(self.merger_seeds) != self.shared.cells:
            raise ConfigError(
                f"shared sampler has {self.shared.cells} cells but "
                f"{len(self.merger_seeds)} merger seeds were given"
            )
        # The seed is overridden per group at merge time.
        self.merger = PatternMerger(op=self.op, chunk=self.chunk)
        self._streams = [
            self.shared.stream(cell) for cell in range(self.shared.cells)
        ]
        self._queues = [deque() for _ in self.merger_seeds]

    @property
    def cells(self) -> int:
        return self.shared.cells

    def prime(self, rounds: int) -> None:
        """Pre-draw and pre-merge ``rounds`` rounds per cell before any
        cell starts running (the batch planner primes one)."""
        for _ in range(rounds):
            self._advance()

    def _advance(self) -> None:
        groups = [
            stream.generate_batch(self.pattern_count, self.shared.size)
            for stream in self._streams
        ]
        merges = self.merger.merge_batch(groups, seeds=self.merger_seeds)
        for queue, merged in zip(self._queues, merges):
            queue.append(merged)

    def next_merged(self, cell: int) -> MergedPattern:
        """Cell ``cell``'s next round's merged pattern (sources
        included, exactly as the cell's own generate+merge would)."""
        queue = self._queues[cell]
        if not queue:
            self._advance()
        return queue.popleft()

    def stream(self, cell: int) -> "BatchMergeStream":
        """Cell ``cell``'s harness-facing view of this batch."""
        return BatchMergeStream(shared=self, cell=cell)


@dataclass
class BatchMergeStream:
    """One cell's view of a :class:`SharedMergeBatch` — the
    ``merge_override`` the worker batch dispatch hands an
    :class:`~repro.ptest.harness.AdaptiveTest`.

    :meth:`matches` is the harness-side guard, the merge analogue of
    :meth:`BatchPatternStream.matches`: the stream substitutes for the
    cell's generate+merge only when it provably reproduces them bit for
    bit — same compiled automaton (object identity), same generator
    seed, same merger seed/op/chunk, same round shape.
    """

    shared: SharedMergeBatch
    cell: int
    #: Rounds this cell has consumed (observability, like
    #: ``BatchPatternStream.generated``).
    rounds: int = 0

    @property
    def generator_seed(self) -> int | None:
        return self.shared.shared.seeds[self.cell]

    @property
    def merger_seed(self) -> int | None:
        return self.shared.merger_seeds[self.cell]

    def matches(
        self,
        pfa: PFA | CompiledPFA | None,
        generator_seed: int | None,
        merger: PatternMerger,
        pattern_count: int,
        pattern_size: int,
    ) -> bool:
        """Whether this stream reproduces ``generator.generate_batch``
        + ``merger.merge`` for the run that would use ``pfa``,
        ``generator_seed`` and ``merger`` — every parameter that feeds
        the merge must agree before substitution is allowed."""
        return (
            pfa is self.shared.shared.sampler.compiled
            and generator_seed == self.generator_seed
            and merger.seed == self.merger_seed
            and merger.op == self.shared.op
            and merger.chunk == self.shared.chunk
            and pattern_count == self.shared.pattern_count
            and pattern_size == self.shared.shared.size
        )

    def next_merged(self) -> MergedPattern:
        self.rounds += 1
        return self.shared.next_merged(self.cell)
