"""The pattern generator (Algorithm 2).

``PatternGenerator(RE, PD, s)`` in the paper: interpret the regular
expression, convert to an NFA, attach the probability distribution to
get a PFA, then walk it emitting one test pattern of size ``s``.  This
class performs the construction once and samples any number of patterns
from the same PFA (Algorithm 1 calls the procedure *n* times).

Distributions can be given three ways:

* a ready :class:`~repro.automata.distributions.TransitionDistribution`
  keyed by DFA state ids,
* a *label-keyed* mapping ``{(state_label, symbol): weight}`` resolved
  against the PFA's state labels (how :mod:`repro.ptest.pcore_model`
  specifies Fig. 5's numbers), or
* ``None`` — uniform over each state's outgoing arcs (the default when
  the user has no profiling knowledge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.automata.compiled import CompiledPFA
from repro.automata.dfa import DFA, minimize_dfa, nfa_to_dfa
from repro.automata.distributions import TransitionDistribution
from repro.automata.nfa import regex_to_nfa
from repro.automata.pfa import PFA, build_pfa
from repro.automata.regex_parser import parse_regex
from repro.automata.sampling import OnFinal, PatternSampler
from repro.errors import ConfigError, DistributionError
from repro.ptest.patterns import TestPattern


def resolve_label_distribution(
    pfa_or_dfa_labels: Mapping[int, str],
    weights: Mapping[tuple[str, str], float],
) -> TransitionDistribution:
    """Convert ``{(state_label, symbol): weight}`` into state-id keys."""
    by_label: dict[str, int] = {}
    for state, label in pfa_or_dfa_labels.items():
        if label in by_label:
            raise DistributionError(f"duplicate state label {label!r}")
        by_label[label] = state
    dist = TransitionDistribution()
    for (label, symbol), weight in weights.items():
        if label not in by_label:
            raise DistributionError(f"unknown state label {label!r}")
        dist.set(by_label[label], symbol, weight)
    return dist


@dataclass
class PatternGenerator:
    """Builds a PFA from a regular expression and samples test patterns.

    Parameters
    ----------
    regex:
        The service regular expression (e.g. RE (2) of the paper).
    distribution:
        Transition weights (see module docstring); ``None`` = uniform.
    alphabet:
        Known service symbols, enabling the paper's juxtaposed notation
        (``TSTR``) to tokenize correctly.
    seed:
        RNG seed for ``MakeChoice``.
    on_final:
        What a walk does at an absorbing final state before reaching
        size ``s`` (``"stop"`` or ``"restart"``; see the sampler).
    minimize:
        Minimise the DFA before attaching probabilities.  Keep ``False``
        when the distribution distinguishes states the minimal DFA would
        merge (Fig. 5 gives TC and TCH different outgoing rows even
        though they are Myhill-Nerode equivalent).
    """

    regex: str
    distribution: TransitionDistribution | None = None
    alphabet: tuple[str, ...] | None = None
    seed: int | None = None
    on_final: OnFinal = "stop"
    minimize: bool = False
    pfa: PFA = field(init=False)
    dfa: DFA = field(init=False)
    _sampler: PatternSampler = field(init=False, repr=False)
    generated: int = 0

    def __post_init__(self) -> None:
        ast = parse_regex(self.regex, alphabet=self.alphabet)
        dfa = nfa_to_dfa(regex_to_nfa(ast))
        if self.minimize:
            dfa = minimize_dfa(dfa)
        self.dfa = dfa
        self.pfa = build_pfa(dfa, self.distribution)
        self._sampler = PatternSampler(
            self.pfa, seed=self.seed, on_final=self.on_final
        )

    @classmethod
    def from_pfa(
        cls,
        pfa: PFA | CompiledPFA,
        seed: int | None = None,
        on_final: OnFinal = "stop",
    ) -> "PatternGenerator":
        """Bypass the RE pipeline and sample a hand-built PFA (used for
        the exact Fig. 5 automaton).

        Accepts a prebuilt :class:`CompiledPFA` too, so callers that
        cache one compilation across many generators (the worker-side
        caches of :mod:`repro.ptest.pool`) skip the per-run
        recompilation; seeded output is identical either way.
        """
        generator = cls.__new__(cls)
        generator.regex = ""
        generator.distribution = None
        generator.alphabet = None
        generator.seed = seed
        generator.on_final = on_final
        generator.minimize = False
        generator.pfa = pfa.source if isinstance(pfa, CompiledPFA) else pfa
        generator.dfa = None  # type: ignore[assignment]
        generator._sampler = PatternSampler(pfa, seed=seed, on_final=on_final)
        generator.generated = 0
        return generator

    def generate(self, size: int, pattern_id: int = 0) -> TestPattern:
        """Algorithm 2: one pattern of (at most) ``size`` services."""
        if size < 1:
            raise ConfigError(f"pattern size must be >= 1, got {size}")
        sampled = self._sampler.sample(size)
        self.generated += 1
        return TestPattern(
            pattern_id=pattern_id,
            symbols=sampled.symbols,
            states=sampled.states,
            log_probability=sampled.log_probability,
        )

    def generate_batch(self, count: int, size: int) -> list[TestPattern]:
        """Algorithm 1 lines 1-3: ``T[i] <- PatternGenerator(RE, PD, s)``."""
        if count < 1:
            raise ConfigError(f"pattern count must be >= 1, got {count}")
        return [self.generate(size, pattern_id=i) for i in range(count)]

    def accepts(self, symbols: tuple[str, ...] | list[str]) -> bool:
        """Whether a symbol sequence is a *prefix walk* of the PFA — used
        by tests to re-validate every generated pattern against the RE."""
        return self.pfa.walk_probability(tuple(symbols)) > 0.0
