"""``AdaptiveTest`` (Algorithm 1), end to end.

The procedure: generate *n* patterns of size *s* (pattern generator),
merge them under *op* (pattern merger), fork the bug detector, and let
the committer drive the slave.  Here the "fork" is a component swept at
a fixed interval alongside the simulated cores; everything else follows
the paper's structure directly::

    for i = 1 to n:  T[i] <- PatternGenerator(RE, PD, s)
    M <- PatternMerger(T, n, op)
    ... BugDetector(op) || Committer(M)

:func:`run_adaptive_test` builds the whole simulated OMAP platform from
a :class:`~repro.ptest.config.PTestConfig`, runs it, and returns a
:class:`TestRunResult` with any :class:`~repro.ptest.report.BugReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.automata.compiled import CompiledPFA
from repro.automata.pfa import PFA
from repro.bridge.bridge import build_bridge
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.pcore.tcb import TaskState
from repro.ptest.committer import Committer
from repro.ptest.config import PTestConfig
from repro.ptest.detector import Anomaly, BugDetector, DetectorConfig
from repro.ptest.generator import (
    BatchMergeStream,
    BatchPatternStream,
    PatternGenerator,
)
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import MergedPattern
from repro.ptest.pcore_model import PCORE_REGULAR_EXPRESSION, pcore_pfa
from repro.ptest.recording import ProcessStateRecorder
from repro.ptest.report import BugReport
from repro.sim.rng import RngStreams
from repro.sim.soc import DualCoreSoC, SoCConfig
from repro.sim.trace import Tracer


@dataclass
class TestRunResult:
    """Outcome of one ``AdaptiveTest`` run."""

    config: PTestConfig
    anomalies: list[Anomaly]
    report: BugReport | None
    ticks: int
    rounds: int
    commands_issued: int
    commands_completed: int
    commands_failed: int
    #: Issue attempts rejected by a full command mailbox.
    command_stalls: int
    service_counts: dict[str, int]
    patterns: list[tuple[str, ...]]
    merged_length: int
    #: ``(tick, edge-set)`` wait-graph deltas, recorded only when the
    #: config sets ``record_wait_deltas`` (off by default: empty).
    wait_deltas: tuple[tuple[int, tuple[tuple[int, int], ...]], ...] = ()

    @property
    def found_bug(self) -> bool:
        return self.report is not None

    def summary(self) -> str:
        verdict = (
            self.report.primary.kind.value if self.report else "no anomaly"
        )
        return (
            f"{verdict}: {self.commands_issued} commands over {self.ticks} "
            f"ticks, {self.rounds} round(s)"
        )


@dataclass
class AdaptiveTest:
    """Builds and runs one adaptive stress test on the simulated SoC.

    Parameters
    ----------
    config:
        The run parameters (RE, n, s, op, seed, platform, detector).
    programs:
        Extra slave task programs to register, by name; the config's
        ``program`` field selects which one created tasks run.
    pfa:
        Override the generator's automaton — a hand-built PFA, or an
        already-compiled :class:`CompiledPFA` (cached pool workers
        substitute one here to skip per-run recompilation; sampling is
        bit-identical).  By default RE (2) with
        ``use_paper_distribution`` uses the Fig. 5 PFA, anything else
        goes through the regex pipeline with uniform rows.
    setup:
        Optional hook called with the kernel before the run starts
        (pre-creating semaphores, seeding shared memory, ...).
    """

    config: PTestConfig
    programs: Mapping[str, TaskProgram] = field(default_factory=dict)
    pfa: PFA | CompiledPFA | None = None
    setup: Callable[[PCoreKernel], None] | None = None
    tracer: Tracer = field(default_factory=Tracer)
    #: When set, skip generation/merging and replay exactly this merged
    #: pattern (single round).  Used by the systematic (CHESS-lite)
    #: baseline and by reproduction of externally crafted interleavings.
    merged_override: "MergedPattern | None" = None
    #: When set (by the worker-side batch dispatch of
    #: :mod:`repro.ptest.pool`), this cell draws its patterns from a
    #: shared vectorized sampler instead of building a scalar
    #: :class:`PatternGenerator`.  Guarded: the stream is used only if
    #: :meth:`BatchPatternStream.matches` confirms it walks the same
    #: compiled automaton with the same generator seed this run would
    #: have used, so the substitution can never change output (the
    #: sampler's lockstep walk is bit-identical to the scalar one).
    generator_override: "BatchPatternStream | None" = None
    #: When set (also by the worker-side batch dispatch), this cell's
    #: whole generate+merge step comes pre-computed from a shared
    #: :class:`~repro.ptest.generator.SharedMergeBatch` — same-variant
    #: cells' rounds are sampled *and merged* as one vectorized group.
    #: Guarded like ``generator_override``: used only if
    #: :meth:`BatchMergeStream.matches` confirms the stream reproduces
    #: this run's automaton, generator seed, merger seed/op/chunk and
    #: round shape, so substitution can never change output (merges are
    #: pure functions of those inputs).
    merge_override: "BatchMergeStream | None" = None

    def pattern_pfa(self) -> PFA | CompiledPFA | None:
        """The automaton the generator will walk, ``None`` for the regex
        pipeline.

        This is the substitution point the worker-side cache of
        :mod:`repro.ptest.pool` uses: it reads the PFA a freshly-built
        test would construct, compiles it once per ``ScenarioRef`` cache
        key, and assigns the compiled form back to ``self.pfa`` so every
        later seed of the same variant skips recompilation.
        """
        if self.pfa is not None:
            return self.pfa
        if (
            self.config.use_paper_distribution
            and self.config.regex == PCORE_REGULAR_EXPRESSION
        ):
            return pcore_pfa()
        return None

    def _build_generator(self, seed: int) -> PatternGenerator:
        pfa = self.pattern_pfa()
        if pfa is not None:
            return PatternGenerator.from_pfa(pfa, seed=seed)
        return PatternGenerator(
            regex=self.config.regex,
            alphabet=self.config.alphabet,
            seed=seed,
        )

    def run(self) -> TestRunResult:
        """Execute Algorithm 1 until a bug, budget exhaustion, or done."""
        config = self.config
        streams = RngStreams(master_seed=config.seed)
        # The generator seed is drawn unconditionally so the merger and
        # noise streams below see the same draw order whether or not a
        # batch stream substitutes for the scalar generator.
        generator_seed = streams.fresh_seed("generator")
        merger = PatternMerger(
            op=config.op,
            seed=streams.fresh_seed("merger"),
            chunk=config.chunk,
        )
        merge_stream = self.merge_override
        if merge_stream is not None and not merge_stream.matches(
            self.pattern_pfa(),
            generator_seed,
            merger,
            config.pattern_count,
            config.pattern_size,
        ):
            merge_stream = None
        generator: PatternGenerator | BatchPatternStream | None = None
        if merge_stream is None:
            override = self.generator_override
            if override is not None and override.matches(
                self.pattern_pfa(), generator_seed
            ):
                generator = override
            else:
                generator = self._build_generator(generator_seed)

        soc = DualCoreSoC(
            config=SoCConfig(
                seed=config.seed,
                mailbox_capacity=config.mailbox_capacity,
                master_steps_per_tick=config.master_steps_per_tick,
            ),
            tracer=self.tracer,
        )
        kernel = PCoreKernel(
            config=config.kernel,
            tracer=self.tracer,
            shared_memory=soc.sram,
        )
        for name, program in self.programs.items():
            kernel.register_program(name, program)
        if self.setup is not None:
            self.setup(kernel)
        bridge_master, slave_core = build_bridge(
            soc.mailboxes, kernel, tracer=self.tracer
        )
        detector = BugDetector(
            kernel=kernel,
            bridge=bridge_master,
            config=DetectorConfig(
                reply_timeout=config.reply_timeout,
                progress_window=config.progress_window,
                interval=config.detector_interval,
                record_wait_deltas=config.record_wait_deltas,
            ),
            tracer=self.tracer,
        )

        rounds = 0
        ticks = 0
        issued_total = 0
        all_patterns: list[tuple[str, ...]] = []
        committer: Committer | None = None
        recorder: ProcessStateRecorder | None = None
        merged_length = 0

        while ticks < config.max_ticks:
            # Start a (new) round: generate, merge, commit.
            if self.merged_override is not None:
                merged = self.merged_override
                patterns = list(merged.sources)
            elif merge_stream is not None:
                merged = merge_stream.next_merged()
                patterns = list(merged.sources)
            else:
                patterns = generator.generate_batch(
                    config.pattern_count, config.pattern_size
                )
                merged = merger.merge(patterns)
            all_patterns.extend(p.symbols for p in patterns)
            merged_length = len(merged)
            recorder = ProcessStateRecorder()
            committer = Committer(
                bridge=bridge_master,
                merged=merged,
                recorder=recorder,
                tracer=self.tracer,
                lockstep=config.lockstep,
                program=config.program,
                pair_programs=config.pair_programs,
                noise_ticks=config.noise_ticks,
                noise_seed=streams.fresh_seed("noise"),
            )
            soc.attach(master=committer, slave=slave_core)
            rounds += 1

            while ticks < config.max_ticks:
                soc.step()
                ticks += 1
                self._update_recorder(recorder, committer, kernel)
                if ticks % config.detector_interval == 0:
                    detector.sweep(soc.now)
                    if detector.triggered:
                        break
                if committer.done and not bridge_master.outstanding:
                    break
            issued_total += committer.issued
            if detector.triggered:
                break
            if not config.restart_patterns:
                # Let the slave drain: leftover tasks may still wedge
                # (a blocked consumer only ages past the progress window
                # well after the last command was issued).
                drain_budget = config.max_ticks - ticks
                for _ in range(drain_budget):
                    soc.step()
                    ticks += 1
                    if ticks % config.detector_interval == 0:
                        detector.sweep(soc.now)
                        if detector.triggered:
                            break
                    if kernel.is_halted():
                        detector.sweep(soc.now)
                        break
                    if not bridge_master.outstanding and all(
                        task.state is TaskState.SUSPENDED
                        for task in kernel.live_tasks()
                    ):
                        # Nothing left that can move: every surviving
                        # task is parked by a pattern that ended in TS.
                        break
                detector.sweep(soc.now)
                break

        report = None
        if detector.triggered and committer is not None:
            # "it terminates the current job and helps users reproduce
            # the bugs": stop and dump.
            report = BugReport(
                config=config,
                anomalies=list(detector.anomalies),
                found_at=soc.now,
                commands_issued=issued_total,
                merged_position=committer.cursor,
                merged_length=merged_length,
                merged_op=config.op,
                merged_description=committer.merged.describe(),
                state_records=recorder.snapshot() if recorder else [],
                task_dump=kernel.describe_tasks(),
                trace_tail=self.tracer.dump(self.tracer.tail(60)),
                kernel_panic=kernel.panic_reason,
                wait_for_dot=detector.wait_for_dot(),
            )

        completed = len(committer.results) if committer else 0
        failed = len(committer.error_results) if committer else 0
        stalls = committer.stall_events if committer else 0
        return TestRunResult(
            config=config,
            anomalies=list(detector.anomalies),
            report=report,
            ticks=ticks,
            rounds=rounds,
            commands_issued=issued_total,
            commands_completed=completed,
            commands_failed=failed,
            command_stalls=stalls,
            service_counts=dict(kernel.stats.invoked),
            patterns=all_patterns,
            merged_length=merged_length,
            wait_deltas=tuple(detector.wait_deltas),
        )

    @staticmethod
    def _update_recorder(
        recorder: ProcessStateRecorder | None,
        committer: Committer,
        kernel: PCoreKernel,
    ) -> None:
        if recorder is None:
            return
        for pair_id, binding in committer.bindings.items():
            if binding.tid is None:
                continue
            task = kernel.tasks.get(binding.tid)
            if task is not None:
                recorder.note_slave_state(pair_id, task.state, tid=binding.tid)
            else:
                recorder.note_slave_state(pair_id, "s:gone", tid=binding.tid)


def run_adaptive_test(
    config: PTestConfig,
    programs: Mapping[str, TaskProgram] | None = None,
    pfa: PFA | None = None,
    setup: Callable[[PCoreKernel], None] | None = None,
) -> TestRunResult:
    """Convenience wrapper: build :class:`AdaptiveTest` and run it."""
    return AdaptiveTest(
        config=config,
        programs=programs or {},
        pfa=pfa,
        setup=setup,
    ).run()


def reproduce(report: BugReport) -> TestRunResult:
    """Re-run a bug report's config; deterministic seeds re-find the bug.

    Note: reproduction needs the same ``programs``/``setup`` the
    original run used; for the built-in workloads use the scenario
    helpers in :mod:`repro.workloads.scenarios`.
    """
    return run_adaptive_test(report.config)
