"""Configuration of an adaptive test run (Algorithm 1's parameters).

``PTestConfig`` carries the paper's ``(RE, n, s, op)`` plus everything a
deterministic re-run needs: seeds, platform parameters, detector
thresholds and fault switches.  A config is the unit of reproduction —
the bug report embeds it, and replaying the same config re-finds the
same bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.pcore.kernel import KernelConfig
from repro.ptest.merger import MERGE_OPS
from repro.ptest.pcore_model import PCORE_REGULAR_EXPRESSION, PCORE_SERVICES


@dataclass(frozen=True)
class PTestConfig:
    """Parameters of one ``AdaptiveTest`` invocation.

    Attributes
    ----------
    regex:
        The service regular expression RE.
    pattern_count:
        The paper's ``n`` — number of patterns = number of pairs.
    pattern_size:
        The paper's ``s`` — services per pattern.
    op:
        The merge policy name.
    seed:
        Master seed; all component streams derive from it.
    use_paper_distribution:
        Attach the Fig. 5 probabilities (when the regex is RE (2));
        otherwise rows are uniform.
    program:
        Slave program registered under this name runs in created tasks.
    lockstep:
        Committer waits for each command's reply before issuing the next
        command *of the same pair* (per-thread blocking remote calls).
    restart_patterns:
        Regenerate and re-issue patterns when the merged pattern is
        exhausted, keeping the stress going until ``max_ticks``.
    max_ticks:
        Simulation budget for the run.
    reply_timeout:
        Detector: unanswered-command age that flags a hang.
    progress_window:
        Detector: no-progress age (for live, unsuspended tasks) that
        flags starvation.
    detector_interval:
        Ticks between detector sweeps ("runs as a new process", i.e.
        concurrently, but sampled).
    kernel:
        Slave kernel parameters (the GC fault switch lives here).
    chunk:
        Subsequence length for the ``cyclic`` merge op.
    """

    regex: str = PCORE_REGULAR_EXPRESSION
    pattern_count: int = 4
    pattern_size: int = 8
    op: str = "round_robin"
    seed: int = 0
    use_paper_distribution: bool = True
    program: str = "idle"
    lockstep: bool = True
    restart_patterns: bool = False
    max_ticks: int = 20_000
    reply_timeout: int = 400
    progress_window: int = 600
    detector_interval: int = 8
    kernel: KernelConfig = field(default_factory=KernelConfig)
    chunk: int = 2
    alphabet: tuple[str, ...] = PCORE_SERVICES
    #: Optional per-pair program names (index = pair id); pairs beyond
    #: the tuple fall back to ``program``.
    pair_programs: tuple[str, ...] | None = None
    #: ConTest-style issue noise: each command is preceded by a seeded
    #: uniform 0..noise_ticks delay (0 = off).
    noise_ticks: int = 0
    #: Hardware mailbox FIFO depth (the OMAP5912's is tiny); lower
    #: values increase bridge backpressure.
    mailbox_capacity: int = 4
    #: Master core speed relative to the slave (scheduling steps per
    #: tick); >1 lets the committer outrun the kernel's service rate.
    master_steps_per_tick: int = 1
    #: Record wait-for-graph deltas during detector sweeps; the
    #: snapshots land on ``TestRunResult.wait_deltas`` and feed the
    #: batched deadlock re-check (:mod:`repro.ptest.batchdetect`).
    record_wait_deltas: bool = False

    def __post_init__(self) -> None:
        if self.pattern_count < 1:
            raise ConfigError("pattern_count must be >= 1")
        if self.pattern_size < 1:
            raise ConfigError("pattern_size must be >= 1")
        if self.op not in MERGE_OPS:
            raise ConfigError(
                f"unknown merge op {self.op!r}; known: {sorted(MERGE_OPS)}"
            )
        if self.max_ticks < 1:
            raise ConfigError("max_ticks must be >= 1")
        if self.reply_timeout < 1 or self.progress_window < 1:
            raise ConfigError("detector windows must be >= 1")
        if self.detector_interval < 1:
            raise ConfigError("detector_interval must be >= 1")
        if self.noise_ticks < 0:
            raise ConfigError("noise_ticks must be >= 0")
        if self.mailbox_capacity < 1:
            raise ConfigError("mailbox_capacity must be >= 1")
        if self.master_steps_per_tick < 1:
            raise ConfigError("master_steps_per_tick must be >= 1")
        if self.pattern_count > self.kernel.max_tasks:
            raise ConfigError(
                f"pattern_count={self.pattern_count} exceeds the kernel's "
                f"max_tasks={self.kernel.max_tasks}: each pattern needs a "
                f"slave task"
            )

    def with_seed(self, seed: int) -> "PTestConfig":
        """A copy differing only in the master seed (sweep helper)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        return (
            f"n={self.pattern_count} s={self.pattern_size} op={self.op} "
            f"seed={self.seed} program={self.program} "
            f"buggy_gc={self.kernel.buggy_gc}"
        )
