"""Batched deadlock detection over recorded wait-for snapshots.

The scalar sweep checks one wait-for graph at a time: build successor
lists, sort, run the three-colour DFS of
:func:`repro.ptest.waitgraph.find_cycle_edges`.  Campaign-scale
auditing replays *many* recorded snapshots (one per wait-graph delta,
per run) — a per-snapshot Python loop again.  This module batches that
loop the same way :mod:`repro.automata.batch` batches sampling:

1. **Vectorized screen** — all snapshots' edges are flattened into one
   ``(run, waiter, owner)`` edge table, node ids are densified per
   ``(run, node)`` pair with :func:`numpy.unique`, and a Kahn in-degree
   peel removes zero-in-degree nodes across *every* snapshot at once.
   The peel iterates (vectorized per step) until no zero-in-degree node
   remains; a snapshot has surviving edges **iff** it is cyclic — the
   screen is exact, not heuristic.
2. **Scalar confirm** — only the cyclic survivors (the rare case) are
   handed to :func:`find_cycle_edges`, so the reported cycle is the
   very one the scalar sweep would have found, edge order included.

:func:`screen_pending_pairs` applies the same discipline to Definition-2
state: it consumes the recorder's *column* snapshots
(:meth:`~repro.ptest.recording.ProcessStateRecorder.snapshot_columns`)
directly — pair ids, SNs and remaining counts, never materialised
records — and flags, across many runs at once, the pairs that ended
mid-pattern.

Without numpy (or under ``REPRO_NO_NUMPY``) the whole thing falls back
to the per-snapshot scalar loop, bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.automata.batch import numpy_or_none, require_numpy
from repro.ptest.detector import AnomalyKind
from repro.ptest.waitgraph import find_cycle_edges

EdgeSet = Sequence[tuple[int, int]]


def _resolve_numpy(use_numpy: bool | None, context: str):
    """The shared three-state guard: ``True`` demands numpy
    (:class:`~repro.errors.ConfigError` if missing), ``False`` forces
    the scalar loop, ``None`` auto-detects."""
    if use_numpy is False:
        return None
    if use_numpy is True:
        return require_numpy(context)
    return numpy_or_none()


def find_cycles_batch(
    edge_sets: Sequence[EdgeSet],
    *,
    use_numpy: bool | None = None,
) -> list[list[tuple[int, int]] | None]:
    """Per-snapshot first cycle (or ``None``), for many snapshots at
    once.

    Returns exactly ``[find_cycle_edges(edges) for edges in
    edge_sets]`` — the numpy path only changes *how fast* the acyclic
    majority is ruled out, never the answer.
    """
    np = _resolve_numpy(use_numpy, "find_cycles_batch(use_numpy=True)")
    if np is None:
        return [find_cycle_edges(edges) for edges in edge_sets]

    counts = np.fromiter(
        (len(edges) for edges in edge_sets),
        dtype=np.int64,
        count=len(edge_sets),
    )
    total = int(counts.sum())
    if total == 0:
        return [None] * len(edge_sets)
    flat = np.array(
        [edge for edges in edge_sets for edge in edges], dtype=np.int64
    ).reshape(total, 2)
    run_of_edge = np.repeat(np.arange(len(edge_sets), dtype=np.int64), counts)

    # Densify (run, node) pairs into contiguous ids so one peel covers
    # every snapshot: nodes of different runs never alias.
    low = int(flat.min())
    stride = int(flat.max()) - low + 1
    src_keys = run_of_edge * stride + (flat[:, 0] - low)
    dst_keys = run_of_edge * stride + (flat[:, 1] - low)
    keys, inverse = np.unique(
        np.concatenate((src_keys, dst_keys)), return_inverse=True
    )
    src_ids = inverse[:total]
    dst_ids = inverse[total:]
    node_count = len(keys)

    # Kahn peel, all runs in lockstep: repeatedly drop zero-in-degree
    # nodes and their outgoing edges.  Iteration count is the longest
    # acyclic chain, with every step vectorized over the whole table.
    indegree = np.bincount(dst_ids, minlength=node_count)
    removed = np.zeros(node_count, dtype=bool)
    edge_alive = np.ones(total, dtype=bool)
    frontier = indegree == 0
    while frontier.any():
        removed |= frontier
        dying = edge_alive & frontier.take(src_ids)
        if dying.any():
            edge_alive &= ~dying
            indegree -= np.bincount(dst_ids[dying], minlength=node_count)
        frontier = (indegree == 0) & ~removed

    cyclic = np.zeros(len(edge_sets), dtype=bool)
    cyclic[run_of_edge[edge_alive]] = True
    return [
        find_cycle_edges(edge_sets[index]) if flag else None
        for index, flag in enumerate(cyclic.tolist())
    ]


def cycle_tids_batch(
    edge_sets: Sequence[EdgeSet],
    *,
    use_numpy: bool | None = None,
) -> list[tuple[int, ...] | None]:
    """Sorted waiter tids of each snapshot's first cycle — the same
    reduction :class:`~repro.ptest.detector.BugDetector` applies before
    debouncing and reporting."""
    return [
        tuple(sorted({edge[0] for edge in cycle})) if cycle else None
        for cycle in find_cycles_batch(edge_sets, use_numpy=use_numpy)
    ]


#: One run's recorder snapshot as parallel columns: ``(pair_ids,
#: sequence_numbers, remaining_counts)`` — the exact shape
#: :meth:`repro.ptest.recording.ProcessStateRecorder.snapshot_columns`
#: returns.
ColumnSnapshot = tuple[Sequence[int], Sequence[int], Sequence[int]]


def screen_pending_pairs(
    column_sets: Sequence[ColumnSnapshot],
    *,
    use_numpy: bool | None = None,
) -> list[tuple[int, ...]]:
    """Per-run pair ids whose pattern has symbols left — for many runs'
    recorded columns at once.

    The Definition-2 analogue of the deadlock screen's "who can still
    be stuck" question: a pair whose ``remaining_count`` is non-zero
    ended the run mid-pattern, so when a campaign-scale audit asks
    which runs wedged and *where*, this flattens every run's recorder
    columns (no :class:`~repro.ptest.recording.StateRecord` objects, no
    symbol tuples) into one table and answers vectorized.  The scalar
    loop is the reference; the numpy path only changes speed, never the
    answer.
    """
    np = _resolve_numpy(use_numpy, "screen_pending_pairs(use_numpy=True)")
    if np is None:
        return [
            tuple(
                pair_id
                for pair_id, count in zip(pair_ids, remaining)
                if count > 0
            )
            for pair_ids, _sns, remaining in column_sets
        ]
    counts = np.fromiter(
        (len(columns[0]) for columns in column_sets),
        dtype=np.int64,
        count=len(column_sets),
    )
    total = int(counts.sum())
    if total == 0:
        return [() for _ in column_sets]
    flat_pairs = np.concatenate(
        [np.asarray(columns[0], dtype=np.int64) for columns in column_sets]
    )
    flat_remaining = np.concatenate(
        [np.asarray(columns[2], dtype=np.int64) for columns in column_sets]
    )
    run_of_pair = np.repeat(
        np.arange(len(column_sets), dtype=np.int64), counts
    )
    pending = flat_remaining > 0
    out: list[list[int]] = [[] for _ in column_sets]
    for run, pair_id in zip(
        run_of_pair[pending].tolist(), flat_pairs[pending].tolist()
    ):
        out[run].append(pair_id)
    return [tuple(pairs) for pairs in out]


@dataclass
class DeadlockAudit:
    """Outcome of re-checking recorded wait-graph deltas in batch.

    ``confirmed`` counts runs whose reported deadlock's task set was
    re-found as a cycle in at least one recorded snapshot;
    ``unsupported`` lists ``(run_index, tids)`` for reported deadlocks
    no recorded snapshot supports (an inconsistency worth failing on).
    ``cyclic_without_report`` counts runs where some snapshot held a
    cycle but no deadlock was reported — legitimate under the
    detector's confirmation debounce, so informational only.
    """

    runs: int = 0
    snapshots: int = 0
    confirmed: int = 0
    cyclic_without_report: int = 0
    unsupported: list[tuple[int, tuple[int, ...]]] = field(
        default_factory=list
    )

    @property
    def consistent(self) -> bool:
        return not self.unsupported


def audit_deadlocks(
    results: Iterable,
    *,
    use_numpy: bool | None = None,
) -> DeadlockAudit:
    """Cross-check many runs' reported deadlocks against their recorded
    wait-graph deltas in one batched pass.

    Each result must carry ``wait_deltas`` (runs executed with
    ``record_wait_deltas=True``) and ``anomalies``.  All runs'
    snapshots are screened in a single :func:`find_cycles_batch` call —
    this is the "per-run Python loop" the batched sweep replaces.
    """
    results = list(results)
    snapshots: list[EdgeSet] = []
    spans: list[tuple[int, int]] = []
    for result in results:
        deltas = getattr(result, "wait_deltas", ())
        begin = len(snapshots)
        snapshots.extend(edges for _tick, edges in deltas)
        spans.append((begin, len(snapshots)))
    cycles = cycle_tids_batch(snapshots, use_numpy=use_numpy)

    audit = DeadlockAudit(runs=len(results), snapshots=len(snapshots))
    for index, (result, (begin, end)) in enumerate(zip(results, spans)):
        found = {cycle for cycle in cycles[begin:end] if cycle is not None}
        reported = {
            anomaly.tids
            for anomaly in result.anomalies
            if anomaly.kind is AnomalyKind.DEADLOCK
        }
        if reported and reported <= found:
            audit.confirmed += 1
        elif found and not reported:
            audit.cyclic_without_report += 1
        for tids in sorted(reported - found):
            audit.unsupported.append((index, tids))
    return audit
