"""Work-queue execution of campaign cells.

A campaign is a grid of independent *(variant, seed)* cells, each of
which builds and runs one :class:`~repro.ptest.harness.AdaptiveTest`.
Cells share no state — every run seeds its own RNG streams from the
cell's seed — so they parallelise embarrassingly.

:class:`CellExecutor` dispatches cells either in-process (``workers=1``,
the deterministic serial fallback) or across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Results are returned
keyed by cell in *submission order*, never completion order, so
aggregation downstream is identical whichever path ran.  Builders that
cannot cross a process boundary (lambdas, closures) are detected up
front with a pickle probe and the executor degrades to the serial path
instead of failing mid-campaign.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # circular at runtime: harness -> detector -> ...
    from repro.ptest.harness import AdaptiveTest, TestRunResult

ScenarioBuilder = Callable[[int], "AdaptiveTest"]


@dataclass(frozen=True)
class WorkCell:
    """One (variant, seed) grid point of a campaign."""

    variant: str
    seed: int


def run_cell(builder: ScenarioBuilder, seed: int) -> "TestRunResult":
    """Build and run one cell (module-level so it pickles to workers)."""
    return builder(seed).run()


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


@dataclass
class CellExecutor:
    """Runs campaign cells, serially or across worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``1`` (the default) runs every cell in
        this process; ``n > 1`` fans cells out over up to ``n``
        processes.  Whatever the value, results are aggregated in
        submission order, so output is deterministic given the seeds.

    After :meth:`run_cells` returns, ``ran_parallel`` records which
    path executed — ``False`` plus a :class:`RuntimeWarning` when
    parallelism was requested but a builder could not be pickled.
    """

    workers: int = 1
    #: Which path the last :meth:`run_cells` took (None before any run).
    ran_parallel: bool | None = None

    def run_cells(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
    ) -> list["TestRunResult"]:
        """Execute ``cells``; results align with ``cells`` by position."""
        for cell in cells:
            if cell.variant not in builders:
                raise KeyError(f"no builder for variant {cell.variant!r}")
        if self.workers > 1 and len(cells) > 1:
            if self._portable(builders):
                self.ran_parallel = True
                return self._run_parallel(builders, cells)
            warnings.warn(
                f"workers={self.workers} requested but a scenario builder "
                "cannot be pickled (lambda/closure?); running cells "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self.ran_parallel = False
        return [
            run_cell(builders[cell.variant], cell.seed) for cell in cells
        ]

    def _portable(self, builders: Mapping[str, ScenarioBuilder]) -> bool:
        """Whether every builder can be shipped to a worker process."""
        return all(_picklable(builder) for builder in builders.values())

    def _run_parallel(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
    ) -> list["TestRunResult"]:
        max_workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(run_cell, builders[cell.variant], cell.seed)
                for cell in cells
            ]
            return [future.result() for future in futures]
