"""Batched, streaming work-queue execution of campaign cells.

A campaign is a grid of independent *(variant, seed)* cells, each of
which builds and runs one :class:`~repro.ptest.harness.AdaptiveTest`.
Cells share no state — every run seeds its own RNG streams from the
cell's seed — so they parallelise embarrassingly.

:class:`CellExecutor` dispatches cells either in-process (``workers=1``,
the deterministic serial fallback) or across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Three properties
define the execution model:

* **Portable variants.**  The preferred variant payload is a
  :class:`~repro.workloads.registry.ScenarioRef` — a picklable
  ``(name, params)`` value that resolves its builder through the
  scenario registry *inside the worker process*, so any scenario
  (lambda-built, closure-built, whatever) parallelises.  Raw callables
  are still accepted; ones that cannot be pickled degrade to the
  serial path with a :class:`RuntimeWarning` (detected up front with a
  pickle probe, never mid-campaign).
* **Batching.**  Cells are grouped into per-worker batches
  (``batch_size``; ``None`` picks a heuristic from the cell count and
  worker count), amortising pickle/submission overhead that dominates
  sub-10ms cells.  Batching never changes results — only how cells are
  packed into pool submissions.
* **Streaming sinks.**  Pass a :class:`ResultSink` and each
  ``(cell, result)`` pair is delivered as soon as it is available — in
  *submission order*, never completion order, so downstream
  aggregation is identical whichever path (or batch packing) ran, and
  nothing requires materialising every
  :class:`~repro.ptest.harness.TestRunResult` at once.
"""

from __future__ import annotations

import pickle
import warnings
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # circular at runtime: harness -> detector -> ...
    from repro.ptest.harness import AdaptiveTest, TestRunResult

#: Anything callable as ``builder(seed)`` yielding an object with a
#: ``.run() -> TestRunResult`` method.  ScenarioRef satisfies this.
ScenarioBuilder = Callable[[int], "AdaptiveTest"]

#: Upper bound the batch-size heuristic will pick on its own; explicit
#: ``batch_size`` values may exceed it.
MAX_AUTO_BATCH = 32


@dataclass(frozen=True)
class WorkCell:
    """One (variant, seed) grid point of a campaign."""

    variant: str
    seed: int


@runtime_checkable
class ResultSink(Protocol):
    """Receives each cell's result as soon as it is available.

    Delivery order is the cells' submission order regardless of worker
    count or batch packing, so an accumulating sink produces identical
    aggregates on every execution path.
    """

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        """Consume one completed cell."""


@dataclass
class CollectSink:
    """The trivial sink: keeps every result, aligned with its cell."""

    cells: list[WorkCell] = field(default_factory=list)
    results: list["TestRunResult"] = field(default_factory=list)

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        self.cells.append(cell)
        self.results.append(result)


def run_cell(builder: ScenarioBuilder, seed: int) -> "TestRunResult":
    """Build and run one cell (module-level so it pickles to workers)."""
    return builder(seed).run()


def run_cell_batch(
    jobs: Sequence[tuple[ScenarioBuilder, int]],
) -> list["TestRunResult"]:
    """Run a batch of (builder, seed) jobs; one pool submission's work.

    Module-level so it pickles to workers.  When a job's builder is a
    :class:`~repro.workloads.registry.ScenarioRef` only its
    ``(name, params)`` crossed the process boundary — calling it here
    resolves the actual scenario builder from the registry inside the
    worker.
    """
    return [builder(seed).run() for builder, seed in jobs]


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


@dataclass
class CellExecutor:
    """Runs campaign cells, serially or across worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``1`` (the default) runs every cell in
        this process; ``n > 1`` fans batches of cells out over up to
        ``n`` processes.  Whatever the value, results are delivered in
        submission order, so output is deterministic given the seeds.
    batch_size:
        Cells per pool submission.  ``None`` (the default) picks
        ``ceil(len(cells) / (4 * workers))`` capped at
        :data:`MAX_AUTO_BATCH` — roughly four waves per worker, enough
        to amortise pickle/startup cost for sub-10ms cells while still
        load-balancing.  Ignored on the serial path.

    After :meth:`run_cells` returns, ``ran_parallel`` records which
    path executed — ``False`` plus a :class:`RuntimeWarning` when
    parallelism was requested but a builder could not be pickled — and
    ``last_batch_size`` / ``batches_submitted`` record how the cells
    were packed.
    """

    workers: int = 1
    batch_size: int | None = None
    #: Which path the last :meth:`run_cells` took (None before any run).
    ran_parallel: bool | None = None
    #: Effective batch size of the last parallel run (None = serial).
    last_batch_size: int | None = None
    #: Pool submissions made by the last parallel run.
    batches_submitted: int = 0

    def run_cells(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        batch_size: int | None = None,
        sink: ResultSink | None = None,
    ) -> list["TestRunResult"] | None:
        """Execute ``cells``; results align with ``cells`` by position.

        With ``sink`` given, every ``(cell, result)`` pair is instead
        *streamed* to it in submission order as execution proceeds and
        the method returns ``None`` — no result list is materialised,
        so an aggregating sink runs arbitrarily large campaigns in
        memory bounded by the in-flight batches, not the cell count.
        """
        for cell in cells:
            if cell.variant not in builders:
                raise KeyError(f"no builder for variant {cell.variant!r}")
        requested = batch_size if batch_size is not None else self.batch_size
        if requested is not None and requested < 1:
            # Reject on every path, not just when the pool would run.
            raise ValueError(f"batch_size must be >= 1, got {requested}")
        self.last_batch_size = None
        self.batches_submitted = 0
        if self.workers > 1 and len(cells) > 1:
            if self._portable(builders):
                self.ran_parallel = True
                return self._run_parallel(
                    builders, cells, batch_size=batch_size, sink=sink
                )
            warnings.warn(
                f"workers={self.workers} requested but a scenario builder "
                "cannot be pickled (lambda/closure?); register it and pass "
                "a ScenarioRef to parallelise — running cells serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self.ran_parallel = False
        results = None if sink is not None else []
        for cell in cells:
            result = run_cell(builders[cell.variant], cell.seed)
            if sink is not None:
                sink.accept(cell, result)
            else:
                results.append(result)
        return results

    def _portable(self, builders: Mapping[str, ScenarioBuilder]) -> bool:
        """Whether every builder can be shipped to a worker process."""
        return all(_picklable(builder) for builder in builders.values())

    def _resolve_batch_size(
        self, cell_count: int, batch_size: int | None
    ) -> int:
        effective = (
            batch_size if batch_size is not None else self.batch_size
        )
        if effective is None:
            # ~4 waves per worker: amortisation vs. load balance.
            effective = -(-cell_count // (4 * self.workers))
            effective = min(effective, MAX_AUTO_BATCH)
        # run_cells already rejected explicit values < 1.
        return max(1, min(effective, cell_count))

    def _run_parallel(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        batch_size: int | None,
        sink: ResultSink | None,
    ) -> list["TestRunResult"] | None:
        size = self._resolve_batch_size(len(cells), batch_size)
        self.last_batch_size = size
        batches = [
            list(cells[start : start + size])
            for start in range(0, len(cells), size)
        ]
        self.batches_submitted = len(batches)
        max_workers = min(self.workers, len(batches))
        results: list["TestRunResult"] | None = (
            None if sink is not None else []
        )
        # Keep at most ~2 batches per worker in flight: enough queued
        # work that no worker idles between batches, while undrained
        # result payloads stay bounded by the window, not the campaign
        # size (the constant-memory contract of sink streaming).
        window = 2 * max_workers
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            pending: deque[tuple[list[WorkCell], "Future"]] = deque()
            cursor = 0

            def top_up() -> None:
                nonlocal cursor
                while cursor < len(batches) and len(pending) < window:
                    batch = batches[cursor]
                    cursor += 1
                    pending.append(
                        (
                            batch,
                            pool.submit(
                                run_cell_batch,
                                [
                                    (builders[cell.variant], cell.seed)
                                    for cell in batch
                                ],
                            ),
                        )
                    )

            # Drain in submission order: later batches may finish first,
            # but delivery (and therefore aggregation) never reorders.
            top_up()
            while pending:
                batch, future = pending.popleft()
                for cell, result in zip(batch, future.result()):
                    if sink is not None:
                        sink.accept(cell, result)
                    else:
                        results.append(result)
                top_up()
        return results
