"""Batched, streaming work-queue execution of campaign cells.

A campaign is a grid of independent *(variant, seed)* cells, each of
which builds and runs one :class:`~repro.ptest.harness.AdaptiveTest`.
Cells share no state — every run seeds its own RNG streams from the
cell's seed — so they parallelise embarrassingly.

:class:`CellExecutor` dispatches cells either in-process (``workers=1``,
the deterministic serial fallback) or across a persistent
:class:`~repro.ptest.pool.WorkerPool`.  Four properties define the
execution model:

* **Portable variants.**  The preferred variant payload is a
  :class:`~repro.workloads.registry.ScenarioRef` — a picklable
  ``(name, params)`` value that resolves its builder through the
  scenario registry *inside the worker process*, so any scenario
  (lambda-built, closure-built, whatever) parallelises.  Merged-pattern
  replay cells (:class:`~repro.ptest.replay.ReplayRef`: a base ref plus
  a rendered interleaving, what adaptive campaigns' ``ReplayFocus``
  rounds are made of) are equally portable and dispatch identically.
  Raw callables are still accepted; ones that cannot be pickled degrade
  to the serial path with a :class:`RuntimeWarning` (detected up front
  with a pickle probe, never mid-campaign).
* **Warm pools.**  Parallel runs submit to a
  :class:`~repro.ptest.pool.WorkerPool` — either one passed explicitly
  (``pool=``) or the process-wide shared pool for the requested worker
  count (:func:`~repro.ptest.pool.get_pool`) — so back-to-back
  ``run_cells`` / ``Campaign.run`` calls reuse warm worker processes
  (and their scenario caches) instead of paying pool startup every
  time.  A pool broken by a dying worker is respawned and the affected
  batches resubmitted; only a batch that keeps killing its worker
  propagates the failure.
* **Batching.**  Cells are grouped into per-worker batches
  (``batch_size``; ``None`` picks a heuristic from the cell count and
  worker count), amortising pickle/submission overhead that dominates
  sub-10ms cells.  On the wire a batch is a deduped *ScenarioRef
  table* — each distinct builder pickled once plus compact
  ``(table_index, seed)`` rows (see :mod:`repro.ptest.pool`).
  Batching never changes results — only how cells are packed into pool
  submissions.
* **Streaming sinks.**  Pass a :class:`ResultSink` and each
  ``(cell, result)`` pair is delivered as soon as it is available — in
  *submission order*, never completion order, so downstream
  aggregation is identical whichever path (or batch packing) ran, and
  nothing requires materialising every
  :class:`~repro.ptest.harness.TestRunResult` at once.
"""

from __future__ import annotations

import pickle
import warnings
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.ptest.pool import WorkerPool, get_pool, make_batch_table, run_table_batch

if TYPE_CHECKING:  # circular at runtime: harness -> detector -> ...
    from repro.ptest.harness import AdaptiveTest, TestRunResult

#: Anything callable as ``builder(seed)`` yielding an object with a
#: ``.run() -> TestRunResult`` method.  ScenarioRef satisfies this.
ScenarioBuilder = Callable[[int], "AdaptiveTest"]

#: Upper bound the batch-size heuristic will pick on its own; explicit
#: ``batch_size`` values may exceed it.
MAX_AUTO_BATCH = 32


@dataclass(frozen=True)
class WorkCell:
    """One (variant, seed) grid point of a campaign."""

    variant: str
    seed: int


@runtime_checkable
class ResultSink(Protocol):
    """Receives each cell's result as soon as it is available.

    Delivery order is the cells' submission order regardless of worker
    count or batch packing, so an accumulating sink produces identical
    aggregates on every execution path.
    """

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        """Consume one completed cell."""


@dataclass
class CollectSink:
    """The trivial sink: keeps every result, aligned with its cell."""

    cells: list[WorkCell] = field(default_factory=list)
    results: list["TestRunResult"] = field(default_factory=list)

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        self.cells.append(cell)
        self.results.append(result)


def run_cell(builder: ScenarioBuilder, seed: int) -> "TestRunResult":
    """Build and run one cell (module-level so it pickles to workers)."""
    return builder(seed).run()


def run_cell_batch(
    jobs: Sequence[tuple[ScenarioBuilder, int]],
) -> list["TestRunResult"]:
    """Run a batch of (builder, seed) jobs; one pool submission's work.

    The *legacy, uncached* batch form, kept for external callers: the
    executor itself now ships batches via
    :func:`~repro.ptest.pool.make_batch_table` /
    :func:`~repro.ptest.pool.run_table_batch` (deduped builders,
    worker-side scenario/PFA caches).  This plain loop stays free of
    side effects — it never touches the process-global worker cache,
    so calling it in a parent process leaves nothing to invalidate.
    """
    return [builder(seed).run() for builder, seed in jobs]


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


@dataclass
class CellExecutor:
    """Runs campaign cells, serially or across worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``None`` (the default) derives it from
        ``pool`` when one is given (handing over a multi-worker pool
        *is* the parallelism request) and otherwise runs serially;
        ``1`` forces every cell in-process even when a pool is
        configured (debuggers, monkeypatched builders); ``n > 1`` fans
        batches of cells out over up to ``n`` processes.  Whatever the
        value, results are delivered in submission order, so output is
        deterministic given the seeds.
    batch_size:
        Cells per pool submission.  ``None`` (the default) picks
        ``ceil(len(cells) / (4 * workers))`` capped at
        :data:`MAX_AUTO_BATCH` — roughly four waves per worker, enough
        to amortise pickle/startup cost for sub-10ms cells while still
        load-balancing.  Ignored on the serial path.
    pool:
        The :class:`~repro.ptest.pool.WorkerPool` to submit to.
        ``None`` (the default) acquires the process-wide shared pool
        for ``workers`` via :func:`~repro.ptest.pool.get_pool`, so
        consecutive runs reuse warm workers; pass an explicit pool for
        deterministic lifetime control (its width governs the actual
        process count).
    batch_sampling:
        Vectorized pattern sampling for same-variant cell groups inside
        each worker batch (see
        :func:`~repro.ptest.pool.run_table_batch`).  ``None`` (the
        default) auto-detects numpy; ``True`` demands the fast path,
        raising :class:`~repro.errors.ConfigError` up front when numpy
        is unavailable (or disabled via ``REPRO_NO_NUMPY``); ``False``
        forces scalar sampling.  Results are bit-identical at every
        setting — only worker-side throughput changes.  The serial
        path (``workers=1``) always samples scalar: each cell builds
        its own generator in-process, and there is no batch to share a
        sampler across.

    After :meth:`run_cells` returns, ``ran_parallel`` records which
    path executed — ``False`` plus a :class:`RuntimeWarning` when
    parallelism was requested but a builder could not be pickled — and
    ``last_batch_size`` / ``batches_submitted`` / ``last_pool_id``
    record how the cells were packed and which pool ran them.
    """

    workers: int | None = None
    batch_size: int | None = None
    pool: "WorkerPool | None" = None
    batch_sampling: bool | None = None
    #: Which path the last :meth:`run_cells` took (None before any run).
    ran_parallel: bool | None = None
    #: Effective batch size of the last parallel run (None = serial).
    last_batch_size: int | None = None
    #: Pool submissions made by the last parallel run.
    batches_submitted: int = 0
    #: ``WorkerPool.pool_id`` the last parallel run dispatched through
    #: (None = serial); equal across runs means the warm pool was
    #: reused, a change means cold start or dead-worker respawn.
    last_pool_id: int | None = None

    def run_cells(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        batch_size: int | None = None,
        sink: ResultSink | None = None,
    ) -> list["TestRunResult"] | None:
        """Execute ``cells``; results align with ``cells`` by position.

        With ``sink`` given, every ``(cell, result)`` pair is instead
        *streamed* to it in submission order as execution proceeds and
        the method returns ``None`` — no result list is materialised,
        so an aggregating sink runs arbitrarily large campaigns in
        memory bounded by the in-flight batches, not the cell count.
        """
        for cell in cells:
            if cell.variant not in builders:
                raise KeyError(f"no builder for variant {cell.variant!r}")
        requested = batch_size if batch_size is not None else self.batch_size
        if requested is not None and requested < 1:
            # Reject on every path, not just when the pool would run.
            raise ValueError(f"batch_size must be >= 1, got {requested}")
        if self.batch_sampling is True:
            # Fail the explicit request here, in the parent, with a
            # ConfigError naming the fix — not an ImportError (or the
            # worker-side backstop) deep inside a pool process.
            from repro.automata.batch import require_numpy

            require_numpy("CellExecutor(batch_sampling=True)")
        self.last_batch_size = None
        self.batches_submitted = 0
        self.last_pool_id = None
        # workers=None defers to the pool: handing over a multi-worker
        # pool is itself the parallelism request.  An explicit 1 always
        # wins — in-process execution stays reachable for debugging.
        effective_workers = self.workers
        if effective_workers is None:
            effective_workers = (
                self.pool.workers if self.pool is not None else 1
            )
        if effective_workers > 1 and len(cells) > 1:
            if self._portable(builders):
                self.ran_parallel = True
                return self._run_parallel(
                    builders,
                    cells,
                    workers=effective_workers,
                    batch_size=batch_size,
                    sink=sink,
                )
            warnings.warn(
                f"parallel dispatch over {effective_workers} workers "
                "requested but a scenario builder cannot be pickled "
                "(lambda/closure?); register it and pass a ScenarioRef "
                "to parallelise — running cells serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self.ran_parallel = False
        results = None if sink is not None else []
        for cell in cells:
            result = run_cell(builders[cell.variant], cell.seed)
            if sink is not None:
                sink.accept(cell, result)
            else:
                results.append(result)
        return results

    def prewarm(
        self,
        builders: Mapping[str, ScenarioBuilder] | Sequence[ScenarioBuilder],
        wait: bool = False,
    ) -> int:
        """Warm the worker caches for an upcoming :meth:`run_cells`.

        Resolves the same pool the next parallel run would use (the
        explicit ``pool=`` or the shared pool for ``workers``) and
        ships the distinct portable refs among ``builders`` to it via
        :meth:`~repro.ptest.pool.WorkerPool.prewarm`, so workers
        resolve scenarios and compile pattern automata *now* — while
        the caller is still assembling cells — instead of inside the
        run's first batches.  Adaptive campaigns call this between
        rounds; embedders that know their next sweep can do the same.

        Best-effort and result-neutral (see the pool method); a no-op
        returning 0 on the serial path (``workers``/pool resolve to 1),
        where no worker caches exist to warm.
        """
        effective_workers = self.workers
        if effective_workers is None:
            effective_workers = (
                self.pool.workers if self.pool is not None else 1
            )
        if effective_workers <= 1:
            return 0
        pool = (
            self.pool
            if self.pool is not None
            else get_pool(effective_workers)
        )
        values = (
            builders.values()
            if isinstance(builders, Mapping)
            else builders
        )
        return pool.prewarm(values, wait=wait)

    def _portable(self, builders: Mapping[str, ScenarioBuilder]) -> bool:
        """Whether every builder can be shipped to a worker process."""
        return all(_picklable(builder) for builder in builders.values())

    def _resolve_batch_size(
        self, cell_count: int, batch_size: int | None, workers: int | None = None
    ) -> int:
        effective = (
            batch_size if batch_size is not None else self.batch_size
        )
        if effective is None:
            # ~4 waves per worker: amortisation vs. load balance.
            width = workers if workers is not None else (self.workers or 1)
            effective = -(-cell_count // (4 * width))
            effective = min(effective, MAX_AUTO_BATCH)
        # run_cells already rejected explicit values < 1.
        return max(1, min(effective, cell_count))

    #: Pool respawns tolerated without delivering a single batch in
    #: between before the break is re-raised.  The parent cannot tell
    #: *which* in-flight batch killed a worker (the first-drained
    #: future reports every break), so the budget is per run and resets
    #: on progress: a few transient deaths are absorbed wherever they
    #: came from, while a deterministically lethal batch — which breaks
    #: every fresh pool before anything is delivered — still surfaces
    #: after this many respawns.
    MAX_POOL_RESPAWNS = 3

    def _run_parallel(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        workers: int,
        batch_size: int | None,
        sink: ResultSink | None,
    ) -> list["TestRunResult"] | None:
        pool = self.pool if self.pool is not None else get_pool(workers)
        # An explicit pool's width governs the actual process count, so
        # batch packing and the in-flight window follow it, not the
        # executor's own `workers` (they agree for shared pools).
        width = pool.workers
        size = self._resolve_batch_size(len(cells), batch_size, width)
        self.last_batch_size = size
        batches = [
            list(cells[start : start + size])
            for start in range(0, len(cells), size)
        ]
        self.batches_submitted = len(batches)
        results: list["TestRunResult"] | None = (
            None if sink is not None else []
        )

        def submit(
            batch: list[WorkCell],
        ) -> tuple["Future", int | None]:
            # The wire format: each distinct builder once, then compact
            # (table_index, seed) rows — N same-variant cells pickle
            # their ScenarioRef a single time.  The pool id tagged at
            # submission names the future's executor generation, so a
            # later break notification cannot tear down a fresh pool.
            table, jobs = make_batch_table(
                [builders[cell.variant] for cell in batch],
                [cell.seed for cell in batch],
            )
            future, pool_id = pool.submit_tagged(
                run_table_batch, table, jobs, self.batch_sampling
            )
            # Refresh on every submission: submit_tagged respawns a
            # broken pool silently, and telemetry must name the pool
            # that actually took the work.
            self.last_pool_id = pool_id
            return future, pool_id

        # Keep at most ~2 batches per worker in flight: enough queued
        # work that no worker idles between batches, while undrained
        # result payloads stay bounded by the window, not the campaign
        # size (the constant-memory contract of sink streaming).
        window = 2 * min(width, len(batches))
        pending: deque[tuple[list[WorkCell], "Future", int | None]] = deque()
        cursor = 0

        def top_up() -> None:
            nonlocal cursor
            while cursor < len(batches) and len(pending) < window:
                batch = batches[cursor]
                cursor += 1
                pending.append((batch, *submit(batch)))

        # Drain in submission order: later batches may finish first,
        # but delivery (and therefore aggregation) never reorders.
        top_up()
        respawns_without_progress = 0
        try:
            while pending:
                batch, future, submitted_to = pending.popleft()
                try:
                    batch_results = future.result()
                except (BrokenProcessPool, CancelledError):
                    # A worker died, killing its pool and every future
                    # still on it — or the executor was retired under
                    # us (a mid-run registry version bump), cancelling
                    # queued futures.  Either way: respawn and resubmit
                    # all pending batches (deterministic cells re-run
                    # identically), within the
                    # MAX_POOL_RESPAWNS-without-progress budget.
                    # Pending futures that survived on a younger pool
                    # are cancelled first — their batches are
                    # resubmitted, so letting the originals run would
                    # only burn the shared workers twice.
                    if respawns_without_progress >= self.MAX_POOL_RESPAWNS:
                        raise
                    respawns_without_progress += 1
                    pool.notify_broken(submitted_to)
                    stale = [batch]
                    for other, other_future, _id in pending:
                        other_future.cancel()
                        stale.append(other)
                    pending = deque(
                        (other, *submit(other)) for other in stale
                    )
                    continue
                respawns_without_progress = 0
                for cell, result in zip(batch, batch_results):
                    if sink is not None:
                        sink.accept(cell, result)
                    else:
                        results.append(result)
                top_up()
        except BaseException:
            # Aborting (a cell raised, retries exhausted, KeyboardInt):
            # the pool outlives this run, so stop queued batches from
            # burning the shared workers on work nobody will read.
            # Already-running batches finish on their own.
            for _batch, future, _id in pending:
                future.cancel()
            raise
        return results
