"""Batched, streaming work-queue execution of campaign cells.

A campaign is a grid of independent *(variant, seed)* cells, each of
which builds and runs one :class:`~repro.ptest.harness.AdaptiveTest`.
Cells share no state — every run seeds its own RNG streams from the
cell's seed — so they parallelise embarrassingly.

:class:`CellExecutor` dispatches cells either in-process (``workers=1``,
the deterministic serial fallback) or across a persistent
:class:`~repro.ptest.pool.WorkerPool`.  Four properties define the
execution model:

* **Portable variants.**  The preferred variant payload is a
  :class:`~repro.workloads.registry.ScenarioRef` — a picklable
  ``(name, params)`` value that resolves its builder through the
  scenario registry *inside the worker process*, so any scenario
  (lambda-built, closure-built, whatever) parallelises.  Merged-pattern
  replay cells (:class:`~repro.ptest.replay.ReplayRef`: a base ref plus
  a rendered interleaving, what adaptive campaigns' ``ReplayFocus``
  rounds are made of) are equally portable and dispatch identically.
  Raw callables are still accepted; ones that cannot be pickled degrade
  to the serial path with a :class:`RuntimeWarning` (detected up front
  with a pickle probe, never mid-campaign).
* **Warm pools.**  Parallel runs submit to a
  :class:`~repro.ptest.pool.WorkerPool` — either one passed explicitly
  (``pool=``) or the process-wide shared pool for the requested worker
  count (:func:`~repro.ptest.pool.get_pool`) — so back-to-back
  ``run_cells`` / ``Campaign.run`` calls reuse warm worker processes
  (and their scenario caches) instead of paying pool startup every
  time.  A pool broken by a dying worker is respawned and the affected
  batches resubmitted; only a batch that keeps killing its worker
  propagates the failure.
* **Batching.**  Cells are grouped into per-worker batches
  (``batch_size``; ``None`` picks a heuristic from the cell count and
  worker count), amortising pickle/submission overhead that dominates
  sub-10ms cells.  On the wire a batch is a deduped *ScenarioRef
  table* — each distinct builder pickled once plus compact
  ``(table_index, seed)`` rows (see :mod:`repro.ptest.pool`).
  Batching never changes results — only how cells are packed into pool
  submissions.
* **Streaming sinks.**  Pass a :class:`ResultSink` and each
  ``(cell, result)`` pair is delivered as soon as it is available — in
  *submission order*, never completion order, so downstream
  aggregation is identical whichever path (or batch packing) ran, and
  nothing requires materialising every
  :class:`~repro.ptest.harness.TestRunResult` at once.

On top of the execution model sits the fault-tolerance layer (this is
the machinery a future multi-host tier will reuse for host loss):

* **Watchdog timeouts.**  ``cell_timeout`` arms a per-batch deadline
  (``cell_timeout × batch cells``) on every pool drain: a batch whose
  future never completes is declared hung, its executor's worker
  processes are *killed* (a hung worker never honours a graceful
  shutdown) and the batch re-enters the same respawn/resubmit path
  that worker crashes take.  Hangs stop being campaign-enders and
  become retryable faults.
* **Poison-cell quarantine.**  With ``quarantine=True`` a batch that
  keeps failing — killing its worker, blowing its deadline, or raising
  — is *bisected* in isolation down to the offending ``(variant,
  seed)`` cells.  Innocent cells from the batch are delivered normally
  (still in submission order); the guilty ones are recorded in a
  :class:`QuarantineReport` (kind ``crash`` / ``timeout`` / ``lethal``)
  and the run completes with explicit partial-result accounting
  instead of raising away every row already computed.
* **Chaos injection.**  ``chaos=`` swaps the worker entry point for
  :func:`~repro.ptest.chaos.run_chaos_batch`, which injects seeded
  worker kills, forced hangs and batch delays at the pool boundary —
  the recovery invariants above are proven by asserting chaos-on
  output equals chaos-off output bit for bit.

The serial path (``workers=1``) runs cells in-process, so there is no
worker to kill, no deadline that can pre-empt a hung cell, and no pool
boundary for chaos: ``cell_timeout`` and ``chaos`` are inert there,
while ``quarantine`` still isolates *raising* cells (kind ``lethal``)
identically to the parallel path.
"""

from __future__ import annotations

import pickle
import warnings
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.errors import WatchdogTimeout
from repro.ptest.chaos import ChaosSpec, run_chaos_batch
from repro.ptest.pool import WorkerPool, get_pool, make_batch_table, run_table_batch

if TYPE_CHECKING:  # circular at runtime: harness -> detector -> ...
    from repro.ptest.harness import AdaptiveTest, TestRunResult

#: Anything callable as ``builder(seed)`` yielding an object with a
#: ``.run() -> TestRunResult`` method.  ScenarioRef satisfies this.
ScenarioBuilder = Callable[[int], "AdaptiveTest"]

#: Upper bound the batch-size heuristic will pick on its own; explicit
#: ``batch_size`` values may exceed it.
MAX_AUTO_BATCH = 32


@dataclass(frozen=True)
class WorkCell:
    """One (variant, seed) grid point of a campaign."""

    variant: str
    seed: int


@runtime_checkable
class ResultSink(Protocol):
    """Receives each cell's result as soon as it is available.

    Delivery order is the cells' submission order regardless of worker
    count or batch packing, so an accumulating sink produces identical
    aggregates on every execution path.
    """

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        """Consume one completed cell."""


@dataclass
class CollectSink:
    """The trivial sink: keeps every result, aligned with its cell."""

    cells: list[WorkCell] = field(default_factory=list)
    results: list["TestRunResult"] = field(default_factory=list)

    def accept(self, cell: WorkCell, result: "TestRunResult") -> None:
        self.cells.append(cell)
        self.results.append(result)


def run_cell(builder: ScenarioBuilder, seed: int) -> "TestRunResult":
    """Build and run one cell (module-level so it pickles to workers)."""
    return builder(seed).run()


def run_cell_batch(
    jobs: Sequence[tuple[ScenarioBuilder, int]],
) -> list["TestRunResult"]:
    """Run a batch of (builder, seed) jobs; one pool submission's work.

    The *legacy, uncached* batch form, kept for external callers: the
    executor itself now ships batches via
    :func:`~repro.ptest.pool.make_batch_table` /
    :func:`~repro.ptest.pool.run_table_batch` (deduped builders,
    worker-side scenario/PFA caches).  This plain loop stays free of
    side effects — it never touches the process-global worker cache,
    so calling it in a parent process leaves nothing to invalidate.
    """
    return [builder(seed).run() for builder, seed in jobs]


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class QuarantinedCell:
    """One (variant, seed) cell isolated by the quarantine machinery.

    ``kind`` names the failure family — ``"crash"`` (the cell killed
    its worker process), ``"timeout"`` (the cell blew the watchdog
    deadline even when run alone), ``"lethal"`` (the cell raised; the
    exception type and message are in ``detail``).  ``detail`` strings
    are configuration-independent — no worker counts, batch sizes or
    timings — so quarantine reports compare equal across every
    ``(workers, batch_size, chaos)`` configuration that isolates the
    same cells.
    """

    variant: str
    seed: int
    kind: str
    detail: str

    def describe(self) -> str:
        return f"{self.variant} seed={self.seed}: {self.kind} ({self.detail})"


@dataclass(frozen=True)
class QuarantineReport:
    """Partial-result accounting for a quarantined run.

    ``attempted`` counts every cell the run was asked to execute,
    ``completed`` the ones that delivered a result; the difference is
    exactly ``len(cells)``.  Attached to
    :class:`CellExecutor.last_quarantine` (and surfaced up through
    ``Campaign`` / ``AdaptiveCampaign``) after every run with
    ``quarantine=True`` — including fully clean ones, where ``cells``
    is empty, so "nothing was quarantined" is an explicit statement
    rather than a missing attribute.
    """

    cells: tuple[QuarantinedCell, ...]
    attempted: int
    completed: int

    @property
    def quarantined(self) -> int:
        return len(self.cells)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.kind] = counts.get(cell.kind, 0) + 1
        return counts

    def for_variant(self, variant: str) -> tuple[QuarantinedCell, ...]:
        return tuple(c for c in self.cells if c.variant == variant)

    def describe(self) -> str:
        if not self.cells:
            return f"quarantine: 0 of {self.attempted} cells"
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind().items())
        )
        return (
            f"quarantine: {self.quarantined} of {self.attempted} cells "
            f"({kinds}); {self.completed} completed"
        )


#: Exception types that mean "the execution fabric died or hung", as
#: opposed to a configuration mistake or a found bug — the CLI maps
#: them to exit 3 and ``repro serve`` to ``kind="executor"`` error
#: frames, both via :func:`executor_diagnosis`.
EXECUTOR_FAILURES: tuple[type[BaseException], ...] = (
    WatchdogTimeout,
    BrokenProcessPool,
    CancelledError,
)


def executor_diagnosis(error: BaseException) -> str:
    """One-line, traceback-free diagnosis of a fabric failure.

    The shared spelling between the CLI's exit-3 message and the
    server's structured error frames, so scripts can match on one
    format wherever the campaign ran.
    """
    return f"executor failure: {type(error).__name__}: {error}"


#: The hint both front-ends attach when a fabric failure aborts a run
#: that had quarantine off.
QUARANTINE_HINT = (
    "hint: rerun with --quarantine to bisect out the failing "
    "cell(s) and complete with partial results"
)


@dataclass
class CellExecutor:
    """Runs campaign cells, serially or across worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``None`` (the default) derives it from
        ``pool`` when one is given (handing over a multi-worker pool
        *is* the parallelism request) and otherwise runs serially;
        ``1`` forces every cell in-process even when a pool is
        configured (debuggers, monkeypatched builders); ``n > 1`` fans
        batches of cells out over up to ``n`` processes.  Whatever the
        value, results are delivered in submission order, so output is
        deterministic given the seeds.
    batch_size:
        Cells per pool submission.  ``None`` (the default) picks
        ``ceil(len(cells) / (4 * workers))`` capped at
        :data:`MAX_AUTO_BATCH` — roughly four waves per worker, enough
        to amortise pickle/startup cost for sub-10ms cells while still
        load-balancing.  Ignored on the serial path.
    pool:
        The :class:`~repro.ptest.pool.WorkerPool` to submit to.
        ``None`` (the default) acquires the process-wide shared pool
        for ``workers`` via :func:`~repro.ptest.pool.get_pool`, so
        consecutive runs reuse warm workers; pass an explicit pool for
        deterministic lifetime control (its width governs the actual
        process count).
    batch_sampling:
        Vectorized pattern sampling for same-variant cell groups inside
        each worker batch (see
        :func:`~repro.ptest.pool.run_table_batch`).  ``None`` (the
        default) auto-detects numpy; ``True`` demands the fast path,
        raising :class:`~repro.errors.ConfigError` up front when numpy
        is unavailable (or disabled via ``REPRO_NO_NUMPY``); ``False``
        forces scalar sampling.  Results are bit-identical at every
        setting — only worker-side throughput changes.  The serial
        path (``workers=1``) always samples scalar: each cell builds
        its own generator in-process, and there is no batch to share a
        sampler across.
    merge_batch:
        Worker-side batched merging for the same same-variant groups
        (rides on a sampling plan, so ``batch_sampling=False`` disables
        it too): each group's rounds are merged in one
        :meth:`~repro.ptest.merger.PatternMerger.merge_batch` call,
        every cell under its own derived merger seed.  Same three-state
        knob and the same correctness bar: ``None`` auto-detects numpy,
        ``True`` demands it up front, ``False`` keeps per-cell merging;
        campaign rows are bit-identical at every setting.
    cell_timeout:
        Watchdog deadline in seconds *per cell*: a pool batch gets
        ``cell_timeout × len(batch)`` of wall clock before its workers
        are declared hung, killed, and the batch resubmitted (then
        bisected under ``quarantine``, or raised as
        :class:`~repro.errors.WatchdogTimeout` once the respawn budget
        is spent without it).  ``None`` (the default) waits forever —
        the pre-watchdog behaviour.  Inert on the serial path, where a
        hung cell cannot be pre-empted in-process.
    quarantine:
        When true, batches that repeatedly kill workers, blow the
        watchdog deadline, or raise are bisected down to the poison
        ``(variant, seed)`` cells; those are recorded on
        ``last_quarantine`` and the run *completes* with the innocent
        cells' results instead of raising.  When false (the default)
        such failures propagate exactly as before.
    chaos:
        A :class:`~repro.ptest.chaos.ChaosSpec` injecting seeded
        worker kills / hangs / delays at the pool boundary (testing
        and benchmarking only).  Never applied on the serial path.

    After :meth:`run_cells` returns, ``ran_parallel`` records which
    path executed — ``False`` plus a :class:`RuntimeWarning` when
    parallelism was requested but a builder could not be pickled — and
    ``last_batch_size`` / ``batches_submitted`` / ``last_pool_id``
    record how the cells were packed and which pool ran them.  With
    ``quarantine=True``, ``last_quarantine`` carries the
    :class:`QuarantineReport`; ``timeouts_detected`` counts watchdog
    expiries observed (either mode).
    """

    workers: int | None = None
    batch_size: int | None = None
    pool: "WorkerPool | None" = None
    batch_sampling: bool | None = None
    merge_batch: bool | None = None
    cell_timeout: float | None = None
    quarantine: bool = False
    chaos: "ChaosSpec | None" = None
    #: Which path the last :meth:`run_cells` took (None before any run).
    ran_parallel: bool | None = None
    #: Effective batch size of the last parallel run (None = serial).
    last_batch_size: int | None = None
    #: Pool submissions made by the last parallel run.
    batches_submitted: int = 0
    #: ``WorkerPool.pool_id`` the last parallel run dispatched through
    #: (None = serial); equal across runs means the warm pool was
    #: reused, a change means cold start or dead-worker respawn.
    last_pool_id: int | None = None
    #: :class:`QuarantineReport` of the last run when ``quarantine``
    #: was on (None before any run or with quarantine off).
    last_quarantine: QuarantineReport | None = None
    #: Watchdog deadline expiries observed across the last run.
    timeouts_detected: int = 0

    def run_cells(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        batch_size: int | None = None,
        sink: ResultSink | None = None,
    ) -> list["TestRunResult"] | None:
        """Execute ``cells``; results align with ``cells`` by position.

        With ``sink`` given, every ``(cell, result)`` pair is instead
        *streamed* to it in submission order as execution proceeds and
        the method returns ``None`` — no result list is materialised,
        so an aggregating sink runs arbitrarily large campaigns in
        memory bounded by the in-flight batches, not the cell count.

        With ``quarantine=True``, isolated cells occupy their position
        in the returned list as ``None`` (so alignment with ``cells``
        is preserved) and are never delivered to ``sink``; the full
        accounting lands on ``last_quarantine``.
        """
        for cell in cells:
            if cell.variant not in builders:
                raise KeyError(f"no builder for variant {cell.variant!r}")
        requested = batch_size if batch_size is not None else self.batch_size
        if requested is not None and requested < 1:
            # Reject on every path, not just when the pool would run.
            raise ValueError(f"batch_size must be >= 1, got {requested}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be > 0, got {self.cell_timeout}"
            )
        if self.batch_sampling is True or self.merge_batch is True:
            # Fail the explicit request here, in the parent, with a
            # ConfigError naming the fix — not an ImportError (or the
            # worker-side backstop) deep inside a pool process.
            from repro.automata.batch import require_numpy

            if self.batch_sampling is True:
                require_numpy("CellExecutor(batch_sampling=True)")
            if self.merge_batch is True:
                require_numpy("CellExecutor(merge_batch=True)")
        self.last_batch_size = None
        self.batches_submitted = 0
        self.last_pool_id = None
        self.last_quarantine = None
        self.timeouts_detected = 0
        # workers=None defers to the pool: handing over a multi-worker
        # pool is itself the parallelism request.  An explicit 1 always
        # wins — in-process execution stays reachable for debugging.
        effective_workers = self.workers
        if effective_workers is None:
            effective_workers = (
                self.pool.workers if self.pool is not None else 1
            )
        if effective_workers > 1 and len(cells) > 1:
            if self._portable(builders):
                self.ran_parallel = True
                return self._run_parallel(
                    builders,
                    cells,
                    workers=effective_workers,
                    batch_size=batch_size,
                    sink=sink,
                )
            warnings.warn(
                f"parallel dispatch over {effective_workers} workers "
                "requested but a scenario builder cannot be pickled "
                "(lambda/closure?); register it and pass a ScenarioRef "
                "to parallelise — running cells serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self.ran_parallel = False
        results = None if sink is not None else []
        quarantined: list[QuarantinedCell] = []
        for cell in cells:
            if self.quarantine:
                # The serial analogue of lethal-batch bisection: a
                # raising cell is already perfectly isolated, so record
                # it and keep going.  Hangs and worker kills have no
                # serial counterpart (nothing to pre-empt or respawn).
                try:
                    result = run_cell(builders[cell.variant], cell.seed)
                except Exception as error:
                    quarantined.append(
                        QuarantinedCell(
                            cell.variant,
                            cell.seed,
                            kind="lethal",
                            detail=f"{type(error).__name__}: {error}",
                        )
                    )
                    if results is not None:
                        results.append(None)
                    continue
            else:
                result = run_cell(builders[cell.variant], cell.seed)
            if sink is not None:
                sink.accept(cell, result)
            else:
                results.append(result)
        if self.quarantine:
            self.last_quarantine = QuarantineReport(
                cells=tuple(quarantined),
                attempted=len(cells),
                completed=len(cells) - len(quarantined),
            )
        return results

    def prewarm(
        self,
        builders: Mapping[str, ScenarioBuilder] | Sequence[ScenarioBuilder],
        wait: bool = False,
    ) -> int:
        """Warm the worker caches for an upcoming :meth:`run_cells`.

        Resolves the same pool the next parallel run would use (the
        explicit ``pool=`` or the shared pool for ``workers``) and
        ships the distinct portable refs among ``builders`` to it via
        :meth:`~repro.ptest.pool.WorkerPool.prewarm`, so workers
        resolve scenarios and compile pattern automata *now* — while
        the caller is still assembling cells — instead of inside the
        run's first batches.  Adaptive campaigns call this between
        rounds; embedders that know their next sweep can do the same.

        Best-effort and result-neutral (see the pool method); a no-op
        returning 0 on the serial path (``workers``/pool resolve to 1),
        where no worker caches exist to warm.
        """
        effective_workers = self.workers
        if effective_workers is None:
            effective_workers = (
                self.pool.workers if self.pool is not None else 1
            )
        if effective_workers <= 1:
            return 0
        pool = (
            self.pool
            if self.pool is not None
            else get_pool(effective_workers)
        )
        values = (
            builders.values()
            if isinstance(builders, Mapping)
            else builders
        )
        return pool.prewarm(values, wait=wait)

    def _portable(self, builders: Mapping[str, ScenarioBuilder]) -> bool:
        """Whether every builder can be shipped to a worker process."""
        return all(_picklable(builder) for builder in builders.values())

    def _resolve_batch_size(
        self, cell_count: int, batch_size: int | None, workers: int | None = None
    ) -> int:
        effective = (
            batch_size if batch_size is not None else self.batch_size
        )
        if effective is None:
            # ~4 waves per worker: amortisation vs. load balance.
            width = workers if workers is not None else (self.workers or 1)
            effective = -(-cell_count // (4 * width))
            effective = min(effective, MAX_AUTO_BATCH)
        # run_cells already rejected explicit values < 1.
        return max(1, min(effective, cell_count))

    #: Pool respawns tolerated without delivering a single batch in
    #: between before the break is re-raised.  The parent cannot tell
    #: *which* in-flight batch killed a worker (the first-drained
    #: future reports every break), so the budget is per run and resets
    #: on progress: a few transient deaths are absorbed wherever they
    #: came from, while a deterministically lethal batch — which breaks
    #: every fresh pool before anything is delivered — still surfaces
    #: after this many respawns.
    MAX_POOL_RESPAWNS = 3

    def _run_parallel(
        self,
        builders: Mapping[str, ScenarioBuilder],
        cells: Sequence[WorkCell],
        *,
        workers: int,
        batch_size: int | None,
        sink: ResultSink | None,
    ) -> list["TestRunResult"] | None:
        pool = self.pool if self.pool is not None else get_pool(workers)
        # An explicit pool's width governs the actual process count, so
        # batch packing and the in-flight window follow it, not the
        # executor's own `workers` (they agree for shared pools).
        width = pool.workers
        size = self._resolve_batch_size(len(cells), batch_size, width)
        self.last_batch_size = size
        batches = [
            list(cells[start : start + size])
            for start in range(0, len(cells), size)
        ]
        self.batches_submitted = len(batches)
        results: list["TestRunResult"] | None = (
            None if sink is not None else []
        )

        # With quarantine on, positional results need a slot per cell
        # even when some never complete; record each cell's index once
        # so delivery (from the main drain or from bisection screening)
        # can land results in place.
        position = {id(cell): index for index, cell in enumerate(cells)}
        if results is not None and self.quarantine:
            results.extend([None] * len(cells))
        delivered = [False] * len(cells)
        quarantined: list[QuarantinedCell] = []

        def deliver(cell: WorkCell, result: "TestRunResult") -> None:
            if sink is not None:
                sink.accept(cell, result)
            elif self.quarantine:
                results[position[id(cell)]] = result
            else:
                results.append(result)
            delivered[position[id(cell)]] = True

        def submit(
            batch: list[WorkCell], attempt: int = 0
        ) -> tuple["Future", int | None]:
            # The wire format: each distinct builder once, then compact
            # (table_index, seed) rows — N same-variant cells pickle
            # their ScenarioRef a single time.  The pool id tagged at
            # submission names the future's executor generation, so a
            # later break notification cannot tear down a fresh pool.
            table, jobs = make_batch_table(
                [builders[cell.variant] for cell in batch],
                [cell.seed for cell in batch],
            )
            if self.chaos is not None:
                # Same wire format, chaos-wrapped entry point; the
                # attempt number lets transient faults re-draw on each
                # resubmission (a kill-once, recover-on-retry shape).
                future, pool_id = pool.submit_tagged(
                    run_chaos_batch,
                    self.chaos,
                    attempt,
                    table,
                    jobs,
                    self.batch_sampling,
                    self.merge_batch,
                )
            else:
                future, pool_id = pool.submit_tagged(
                    run_table_batch,
                    table,
                    jobs,
                    self.batch_sampling,
                    self.merge_batch,
                )
            # Refresh on every submission: submit_tagged respawns a
            # broken pool silently, and telemetry must name the pool
            # that actually took the work.
            self.last_pool_id = pool_id
            return future, pool_id

        def deadline_for(batch: list[WorkCell]) -> float | None:
            if self.cell_timeout is None:
                return None
            return self.cell_timeout * max(1, len(batch))

        def screen(group: list[WorkCell]) -> None:
            """Bisect ``group`` in isolation down to its poison cells.

            Runs sub-batches *synchronously* (one in flight at a time),
            so deliveries stay in submission order relative to the
            group.  A failing single cell is retried once — transient
            chaos or a real one-off crash deserves a second chance —
            and quarantined only when it fails twice in a row.
            """

            def attempt_once(
                part: list[WorkCell], attempt: int
            ) -> tuple[str, object]:
                future, pool_id = submit(part, attempt)
                try:
                    return "ok", future.result(timeout=deadline_for(part))
                except TimeoutError as error:
                    if future.done():
                        # The *cell* raised TimeoutError; the deadline
                        # never fired.  Classify as lethal, like any
                        # other cell-raised exception.
                        return (
                            "lethal",
                            f"{type(error).__name__}: {error}",
                        )
                    self.timeouts_detected += 1
                    pool.terminate(pool_id)
                    return (
                        "timeout",
                        f"exceeded {self.cell_timeout}s/cell watchdog "
                        "deadline",
                    )
                except (BrokenProcessPool, CancelledError):
                    pool.notify_broken(pool_id)
                    return "crash", "worker process died"
                except Exception as error:
                    return "lethal", f"{type(error).__name__}: {error}"

            outcome, payload = attempt_once(group, 0)
            if outcome == "ok":
                for cell, result in zip(group, payload):
                    deliver(cell, result)
                return
            if len(group) == 1:
                outcome, payload = attempt_once(group, 1)
                if outcome == "ok":
                    for cell, result in zip(group, payload):
                        deliver(cell, result)
                    return
                quarantined.append(
                    QuarantinedCell(
                        group[0].variant,
                        group[0].seed,
                        kind=outcome,
                        detail=str(payload),
                    )
                )
                return
            mid = len(group) // 2
            screen(group[:mid])
            screen(group[mid:])

        # Keep at most ~2 batches per worker in flight: enough queued
        # work that no worker idles between batches, while undrained
        # result payloads stay bounded by the window, not the campaign
        # size (the constant-memory contract of sink streaming).
        window = 2 * min(width, len(batches))
        pending: deque[
            tuple[list[WorkCell], int, "Future", int | None]
        ] = deque()
        cursor = 0

        def top_up() -> None:
            nonlocal cursor
            while cursor < len(batches) and len(pending) < window:
                batch = batches[cursor]
                cursor += 1
                pending.append((batch, 0, *submit(batch, 0)))

        def resubmit_pending(
            first: list[WorkCell] | None, first_attempt: int
        ) -> deque:
            """Cancel every pending future and resubmit the batches.

            Called after a pool break or a terminate: the surviving
            futures are doomed (or riding a torn-down executor), so
            cancel them and put fresh submissions — each with a bumped
            attempt counter for chaos re-draws — back in order.
            """
            stale = [] if first is None else [(first, first_attempt + 1)]
            for other, other_attempt, other_future, _id in pending:
                other_future.cancel()
                stale.append((other, other_attempt + 1))
            return deque(
                (other, attempt, *submit(other, attempt))
                for other, attempt in stale
            )

        # Drain in submission order: later batches may finish first,
        # but delivery (and therefore aggregation) never reorders.
        top_up()
        respawns_without_progress = 0
        try:
            while pending:
                batch, attempt, future, submitted_to = pending.popleft()
                try:
                    batch_results = future.result(
                        timeout=deadline_for(batch)
                    )
                except TimeoutError as error:
                    if future.done():
                        # Not the watchdog: the cell itself raised
                        # TimeoutError.  Same handling as any other
                        # cell-raised exception below.
                        if not self.quarantine:
                            raise
                        screen(batch)
                        respawns_without_progress = 0
                        top_up()
                        continue
                    # Watchdog expiry: the batch is hung.  A hung
                    # worker never honours a graceful shutdown, so
                    # kill the executor's processes outright, then
                    # either bisect the batch (quarantine) or resubmit
                    # it within the respawn budget.
                    self.timeouts_detected += 1
                    pool.terminate(submitted_to)
                    if self.quarantine:
                        screen(batch)
                        pending = resubmit_pending(None, 0)
                        respawns_without_progress = 0
                        top_up()
                        continue
                    if respawns_without_progress >= self.MAX_POOL_RESPAWNS:
                        raise WatchdogTimeout(
                            f"batch of {len(batch)} cells "
                            f"({batch[0].variant} seed={batch[0].seed}, "
                            f"...) still exceeded the "
                            f"{self.cell_timeout}s/cell watchdog "
                            f"deadline after "
                            f"{self.MAX_POOL_RESPAWNS} worker respawns; "
                            "pass quarantine=True to bisect out the "
                            "hung cell instead"
                        ) from error
                    respawns_without_progress += 1
                    pending = resubmit_pending(batch, attempt)
                    continue
                except (BrokenProcessPool, CancelledError):
                    # A worker died, killing its pool and every future
                    # still on it — or the executor was retired under
                    # us (a mid-run registry version bump), cancelling
                    # queued futures.  Either way: respawn and resubmit
                    # all pending batches (deterministic cells re-run
                    # identically), within the
                    # MAX_POOL_RESPAWNS-without-progress budget.
                    # Pending futures that survived on a younger pool
                    # are cancelled first — their batches are
                    # resubmitted, so letting the originals run would
                    # only burn the shared workers twice.
                    if respawns_without_progress >= self.MAX_POOL_RESPAWNS:
                        if not self.quarantine:
                            raise
                        # The head batch keeps breaking fresh pools:
                        # bisect it in isolation.  If the poison rides
                        # a *different* pending batch, this screening
                        # delivers the head cleanly (progress) and the
                        # guilty batch exhausts its own budget when it
                        # reaches the head of the queue.
                        pool.notify_broken(submitted_to)
                        screen(batch)
                        pending = resubmit_pending(None, 0)
                        respawns_without_progress = 0
                        top_up()
                        continue
                    respawns_without_progress += 1
                    pool.notify_broken(submitted_to)
                    pending = resubmit_pending(batch, attempt)
                    continue
                except Exception:
                    # A cell raised inside the batch (delivered intact
                    # over the pool): lethal, not a worker death.
                    if not self.quarantine:
                        raise
                    screen(batch)
                    respawns_without_progress = 0
                    top_up()
                    continue
                respawns_without_progress = 0
                for cell, result in zip(batch, batch_results):
                    deliver(cell, result)
                top_up()
        except BaseException:
            # Aborting (a cell raised, retries exhausted, KeyboardInt):
            # the pool outlives this run, so stop queued batches from
            # burning the shared workers on work nobody will read.
            # Already-running batches finish on their own.
            for _batch, _attempt, future, _id in pending:
                future.cancel()
            raise
        if self.quarantine:
            self.last_quarantine = QuarantineReport(
                cells=tuple(quarantined),
                attempted=len(cells),
                completed=sum(delivered),
            )
        return results
