"""Crash-safe checkpointing for adaptive campaigns.

An adaptive campaign is a sequence of expensive rounds whose inputs are
pure functions of the completed rounds' observations (see the
determinism contract in :mod:`repro.ptest.adaptive`).  That makes the
round boundary a natural checkpoint: persist each
:class:`~repro.ptest.adaptive.RoundObservation` as it completes and a
killed campaign can *resume* — completed rounds replay from disk
through the refine policy (rebuilding policy/pipeline state without
re-executing a single cell) and execution picks up at the first round
the checkpoint does not cover, producing results bit-identical to an
uninterrupted run.

Two properties do the heavy lifting:

* **Atomic saves.**  Every save writes a temporary file in the
  checkpoint's directory, flushes and fsyncs it, then renames it (via
  ``os.replace``) over the destination — so a crash mid-save leaves either the
  previous complete checkpoint or the new complete checkpoint, never a
  torn file.  (A stray ``*.tmp`` neighbour after a crash is dead weight,
  not state.)
* **Fingerprinting.**  The payload embeds a digest of the campaign's
  identity — seeds, initial variants, policy, capture limit — and
  :meth:`CampaignCheckpoint.load` refuses (with
  :class:`~repro.errors.CheckpointError`) to hand observations from one
  campaign to a differently-configured resume.  The round budget is
  deliberately *not* fingerprinted: extending ``rounds`` and resuming
  is the supported way to continue a finished study.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import CheckpointError

if TYPE_CHECKING:
    from repro.ptest.adaptive import RefinePolicy, RoundObservation
    from repro.ptest.executor import ScenarioBuilder

#: Bumped whenever the payload layout changes; a mismatch on load is a
#: :class:`~repro.errors.CheckpointError`, never a silent misread.
CHECKPOINT_VERSION = 1


def _policy_signature(policy: "RefinePolicy") -> str:
    """A stable textual identity for ``policy``.

    Built-in policies are dataclasses whose reprs are deterministic;
    :class:`~repro.ptest.pipeline.PolicyPipeline` is not, but exposes
    ``describe()`` ("grid_zoom:3 -> replay:2"), which is.  Custom
    policies should provide one or the other — an identity that drifts
    between runs merely makes resume refuse with a fingerprint
    mismatch, it can never corrupt results.
    """
    describe = getattr(policy, "describe", None)
    if callable(describe):
        return f"{type(policy).__name__}({describe()})"
    return repr(policy)


def campaign_fingerprint(
    seeds: Iterable[int],
    variants: Mapping[str, "ScenarioBuilder"],
    policy: "RefinePolicy",
    capture_per_variant: int,
) -> str:
    """Digest of the campaign identity a checkpoint belongs to.

    Everything that determines round-by-round *results* is included;
    execution knobs (workers, batch size, warm/cold, chaos) are not —
    the determinism contract guarantees they cannot change results, so
    a campaign may legitimately resume under a different execution
    configuration than it started with.
    """
    description = repr(
        (
            tuple(seeds),
            tuple((name, repr(b)) for name, b in variants.items()),
            _policy_signature(policy),
            capture_per_variant,
        )
    )
    return hashlib.sha256(description.encode("utf-8")).hexdigest()[:24]


class CampaignCheckpoint:
    """Atomic load/save of one adaptive campaign's round progress.

    The payload is a plain dict —
    ``{"version", "fingerprint", "observations", "prewarmed_refs",
    "stopped_early", "finished"}`` — pickled because observations carry
    :class:`~repro.workloads.registry.ScenarioRef` /
    :class:`~repro.ptest.replay.ReplayRef` variants (the same values
    the worker-pool wire format ships).  Variants that cannot pickle
    cannot checkpoint, exactly as they cannot parallelise; the save
    raises :class:`~repro.errors.CheckpointError` naming the problem
    up front.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self, expected_fingerprint: str) -> dict[str, Any]:
        """Read and validate the payload; raises on any mismatch."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint at {self.path}"
            ) from None
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        try:
            payload = pickle.loads(raw)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint {self.path} is corrupt "
                f"({type(error).__name__}: {error}); delete it to start "
                "fresh"
            ) from error
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CHECKPOINT_VERSION
        ):
            raise CheckpointError(
                f"checkpoint {self.path} has version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'}, "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        if payload.get("fingerprint") != expected_fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different campaign "
                "(seeds, initial variants, policy or capture limit "
                "changed); delete it to start fresh"
            )
        return payload

    def save(
        self,
        *,
        fingerprint: str,
        observations: "list[RoundObservation]",
        prewarmed_refs: int,
        stopped_early: bool,
        finished: bool,
    ) -> None:
        """Atomically persist the campaign's progress so far."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "observations": list(observations),
            "prewarmed_refs": prewarmed_refs,
            "stopped_early": stopped_early,
            "finished": finished,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception as error:
            raise CheckpointError(
                f"campaign state cannot be pickled for checkpointing "
                f"({type(error).__name__}: {error}); use ScenarioRef "
                "variants"
            ) from error
        directory = self.path.parent
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except CheckpointError:
            raise
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {error}"
            ) from error

    def clear(self) -> None:
        """Remove the checkpoint file (missing is fine)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
