"""Test-pattern data types — tuple API outside, id arrays inside.

A :class:`TestPattern` is one PFA walk destined for one master-thread /
slave-task pair.  The merger turns *n* of them into a
:class:`MergedPattern`: a single sequence of :class:`PatternCommand`
whose provenance (pattern id, per-pattern sequence number) is preserved
— the recorder needs it for Definition 2's SN and delta-S fields, and
bug reports need it to say *which* interleaving triggered the anomaly.

Both container types are **array-backed**: alongside the classic eager
constructors (``TestPattern(pattern_id=..., symbols=...)``) they accept
interned symbol-id arrays (:meth:`TestPattern.from_ids`,
:meth:`MergedPattern.from_arrays`) produced by the batch sampler and the
vectorized merger, and materialise the public tuple/command views
*lazily* — ``symbols``, ``states`` and ``commands`` are computed on
first access and cached, ``__len__`` is O(1) either way, and equality,
hashing, ``repr`` and pickling always go through the materialised
values, so an array-backed instance is indistinguishable from (and
compares equal to) an eagerly-built one.  Pickles carry only plain
tuples/lists — the wire format is numpy-free and unchanged.

The classes are hand-rolled ``__slots__`` types rather than dataclasses
because lazy caching needs internal mutation behind a frozen public
surface; they reproduce the dataclass surface (keyword construction,
``eq``/``hash``/``repr``, :class:`dataclasses.FrozenInstanceError` on
assignment for the frozen ones) byte for byte.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError, dataclass
from typing import Any, Iterator

from repro.errors import ConfigError


def _as_list(ids: Any) -> list:
    """Python ints/list from an id array (numpy or plain sequence)."""
    tolist = getattr(ids, "tolist", None)
    return tolist() if tolist is not None else list(ids)


class TestPattern:
    """One generated pattern: services for a single slave task.

    Attributes
    ----------
    pattern_id:
        Index of this pattern within its batch (also the pair index).
    symbols:
        Service abbreviations in order (e.g. ``("TC", "TS", "TR", "TD")``).
    states:
        The PFA state path that produced the symbols.
    log_probability:
        Log-probability of the generating walk.

    Array-backed instances (:meth:`from_ids`) defer building the
    ``symbols``/``states`` tuples until something reads them; the
    merger consumes :attr:`symbol_ids` directly, so a sample→merge
    round trip on the array plane never materialises them at all.
    """

    __slots__ = (
        "pattern_id",
        "log_probability",
        "_symbols",
        "_states",
        "_symbol_ids",
        "_state_ids",
        "_alphabet",
        "_length",
    )

    #: Not a pytest test class despite the ``Test`` prefix.
    __test__ = False

    def __init__(
        self,
        pattern_id: int,
        symbols: tuple[str, ...],
        states: tuple[int, ...] = (),
        log_probability: float = 0.0,
    ) -> None:
        if pattern_id < 0:
            raise ConfigError(f"pattern_id must be >= 0, got {pattern_id}")
        fill = object.__setattr__
        fill(self, "pattern_id", pattern_id)
        fill(self, "log_probability", log_probability)
        fill(self, "_symbols", symbols)
        fill(self, "_states", states)
        fill(self, "_symbol_ids", None)
        fill(self, "_state_ids", None)
        fill(self, "_alphabet", None)
        fill(self, "_length", len(symbols))

    @classmethod
    def from_ids(
        cls,
        pattern_id: int,
        symbol_ids: Any,
        alphabet: tuple[str, ...],
        state_ids: Any = None,
        log_probability: float = 0.0,
    ) -> "TestPattern":
        """Array-backed construction: ``symbol_ids`` index ``alphabet``
        (the compiled automaton's interned symbol table); ``state_ids``
        is the optional state path.  Tuple views materialise lazily."""
        if pattern_id < 0:
            raise ConfigError(f"pattern_id must be >= 0, got {pattern_id}")
        pattern = object.__new__(cls)
        fill = object.__setattr__
        fill(pattern, "pattern_id", pattern_id)
        fill(pattern, "log_probability", log_probability)
        fill(pattern, "_symbols", None)
        fill(pattern, "_states", None if state_ids is not None else ())
        fill(pattern, "_symbol_ids", symbol_ids)
        fill(pattern, "_state_ids", state_ids)
        fill(pattern, "_alphabet", alphabet)
        fill(pattern, "_length", len(symbol_ids))
        return pattern

    @property
    def symbols(self) -> tuple[str, ...]:
        value = self._symbols
        if value is None:
            alphabet = self._alphabet
            value = tuple(
                map(alphabet.__getitem__, _as_list(self._symbol_ids))
            )
            object.__setattr__(self, "_symbols", value)
        return value

    @property
    def states(self) -> tuple[int, ...]:
        value = self._states
        if value is None:
            value = tuple(_as_list(self._state_ids))
            object.__setattr__(self, "_states", value)
        return value

    @property
    def symbol_ids(self) -> Any:
        """The interned id array, or ``None`` for eager instances.
        The vectorized merger's zero-materialisation input."""
        return self._symbol_ids

    @property
    def alphabet(self) -> tuple[str, ...] | None:
        """The id table :attr:`symbol_ids` indexes (``None`` when
        eager).  Shared by identity across one automaton's patterns, so
        the merger can test alphabet agreement with ``is``."""
        return self._alphabet

    def __setattr__(self, name: str, value: Any) -> None:
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise FrozenInstanceError(f"cannot delete field {name!r}")

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TestPattern:
            return NotImplemented
        return (
            self.pattern_id,
            self.symbols,
            self.states,
            self.log_probability,
        ) == (
            other.pattern_id,
            other.symbols,
            other.states,
            other.log_probability,
        )

    def __hash__(self) -> int:
        return hash(
            (self.pattern_id, self.symbols, self.states, self.log_probability)
        )

    def __repr__(self) -> str:
        return (
            f"TestPattern(pattern_id={self.pattern_id!r}, "
            f"symbols={self.symbols!r}, states={self.states!r}, "
            f"log_probability={self.log_probability!r})"
        )

    def __getstate__(self) -> tuple:
        # Materialised tuples only: the wire format stays numpy-free
        # and identical to the historical eager dataclass pickles.
        return (
            self.pattern_id,
            self.symbols,
            self.states,
            self.log_probability,
        )

    def __setstate__(self, state: tuple) -> None:
        pattern_id, symbols, states, log_probability = state
        fill = object.__setattr__
        fill(self, "pattern_id", pattern_id)
        fill(self, "log_probability", log_probability)
        fill(self, "_symbols", symbols)
        fill(self, "_states", states)
        fill(self, "_symbol_ids", None)
        fill(self, "_state_ids", None)
        fill(self, "_alphabet", None)
        fill(self, "_length", len(symbols))

    def subsequence_after(self, sequence_number: int) -> tuple[str, ...]:
        """Definition 2's delta-S: what remains after ``sequence_number``
        symbols have been issued (1-based, like the paper's SN)."""
        if sequence_number < 0:
            raise ConfigError(f"negative sequence number {sequence_number}")
        return self.symbols[sequence_number:]

    def describe(self) -> str:
        return "->".join(self.symbols)


@dataclass(frozen=True, slots=True)
class PatternCommand:
    """One element of a merged pattern.

    ``sequence_in_pattern`` is 1-based (the paper's SN counts states from
    1); ``position`` is the command's 0-based index in the merged
    sequence.  Slotted: large merges materialise one per symbol.
    """

    symbol: str
    pattern_id: int
    sequence_in_pattern: int
    position: int

    def describe(self) -> str:
        return f"{self.symbol}[p{self.pattern_id}#{self.sequence_in_pattern}]"


class MergedPattern:
    """The merger's output: an interleaving of the input patterns.

    Array-backed instances (:meth:`from_arrays`, the vectorized
    merger's product) hold the interleaving as parallel id/sequence
    arrays and build the :attr:`commands` list — one
    :class:`PatternCommand` per symbol — only when something iterates
    it (the committer, ``describe``, ``validate``); ``__len__`` is
    O(1) either way.
    """

    __slots__ = (
        "op",
        "sources",
        "_commands",
        "_length",
        "_pattern_ids",
        "_sequences",
        "_symbol_ids",
        "_alphabet",
    )

    def __init__(
        self,
        commands: list[PatternCommand],
        op: str,
        sources: list[TestPattern] | None = None,
    ) -> None:
        self.op = op
        self.sources = [] if sources is None else sources
        self._commands = commands
        self._length = len(commands)
        self._pattern_ids = None
        self._sequences = None
        self._symbol_ids = None
        self._alphabet = None

    @classmethod
    def from_arrays(
        cls,
        op: str,
        sources: list[TestPattern],
        pattern_ids: Any,
        sequences: Any,
        symbol_ids: Any,
        alphabet: tuple[str, ...],
    ) -> "MergedPattern":
        """Array-backed construction: position ``i`` of the merge is
        ``alphabet[symbol_ids[i]]``, drawn from pattern
        ``pattern_ids[i]`` as its ``sequences[i]``-th symbol (1-based).
        The command list materialises lazily."""
        merged = object.__new__(cls)
        merged.op = op
        merged.sources = sources
        merged._commands = None
        merged._length = len(pattern_ids)
        merged._pattern_ids = pattern_ids
        merged._sequences = sequences
        merged._symbol_ids = symbol_ids
        merged._alphabet = alphabet
        return merged

    @property
    def pattern_ids(self) -> Any:
        """Source-pattern id per merge position (``None`` when eager).

        Together with :attr:`sequences`/:attr:`symbol_ids` this is the
        zero-copy column view of the interleaving — what the committer
        walks by cursor and the recorder indexes into, so executing an
        array-built merge never expands :attr:`commands`."""
        return self._pattern_ids

    @property
    def sequences(self) -> Any:
        """1-based within-pattern sequence number per merge position
        (``None`` when eager) — Definition 2's SN column."""
        return self._sequences

    @property
    def symbol_ids(self) -> Any:
        """Interned symbol id per merge position (``None`` when eager);
        ids index :attr:`alphabet`."""
        return self._symbol_ids

    @property
    def alphabet(self) -> tuple[str, ...] | None:
        """The id table :attr:`symbol_ids` indexes (``None`` when
        eager).  Shared by identity with the source patterns' alphabet
        on the batch-sampling plane, so one symbol→service binding
        serves every merge over the same automaton."""
        return self._alphabet

    @property
    def commands(self) -> list[PatternCommand]:
        value = self._commands
        if value is None:
            alphabet = self._alphabet
            value = [
                PatternCommand(
                    symbol=alphabet[symbol_id],
                    pattern_id=pattern_id,
                    sequence_in_pattern=sequence,
                    position=position,
                )
                for position, (symbol_id, pattern_id, sequence) in enumerate(
                    zip(
                        _as_list(self._symbol_ids),
                        _as_list(self._pattern_ids),
                        _as_list(self._sequences),
                    )
                )
            ]
            self._commands = value
        return value

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[PatternCommand]:
        return iter(self.commands)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not MergedPattern:
            return NotImplemented
        return (self.commands, self.op, self.sources) == (
            other.commands,
            other.op,
            other.sources,
        )

    def __repr__(self) -> str:
        return (
            f"MergedPattern(commands={self.commands!r}, op={self.op!r}, "
            f"sources={self.sources!r})"
        )

    def __getstate__(self) -> tuple:
        # Materialise before pickling: merged patterns cross process
        # boundaries rarely (replay refs carry descriptions instead),
        # but when they do the payload must not drag numpy arrays.
        return (self.commands, self.op, self.sources)

    def __setstate__(self, state: tuple) -> None:
        commands, op, sources = state
        self.__init__(commands, op, sources)

    def per_pattern_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        if self._commands is None:
            for pattern_id in _as_list(self._pattern_ids):
                counts[pattern_id] = counts.get(pattern_id, 0) + 1
            return counts
        for command in self._commands:
            counts[command.pattern_id] = counts.get(command.pattern_id, 0) + 1
        return counts

    def validate(self) -> None:
        """Check the merge is a true interleaving: every source pattern
        appears exactly once, in order, with correct sequence numbers."""
        progress: dict[int, int] = {
            pattern.pattern_id: 0 for pattern in self.sources
        }
        by_id = {pattern.pattern_id: pattern for pattern in self.sources}
        for index, command in enumerate(self.commands):
            if command.position != index:
                raise ConfigError(
                    f"command at index {index} carries position "
                    f"{command.position}"
                )
            pattern = by_id.get(command.pattern_id)
            if pattern is None:
                raise ConfigError(
                    f"command references unknown pattern {command.pattern_id}"
                )
            expected_seq = progress[command.pattern_id] + 1
            if command.sequence_in_pattern != expected_seq:
                raise ConfigError(
                    f"pattern {command.pattern_id} out of order: expected "
                    f"seq {expected_seq}, got {command.sequence_in_pattern}"
                )
            expected_symbol = pattern.symbols[expected_seq - 1]
            if command.symbol != expected_symbol:
                raise ConfigError(
                    f"pattern {command.pattern_id} seq {expected_seq}: "
                    f"expected {expected_symbol}, got {command.symbol}"
                )
            progress[command.pattern_id] = expected_seq
        for pattern in self.sources:
            if progress[pattern.pattern_id] != len(pattern):
                raise ConfigError(
                    f"pattern {pattern.pattern_id} only merged "
                    f"{progress[pattern.pattern_id]}/{len(pattern)} symbols"
                )

    def describe(self) -> str:
        return " ".join(command.describe() for command in self.commands)
