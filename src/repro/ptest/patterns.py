"""Test-pattern data types.

A :class:`TestPattern` is one PFA walk destined for one master-thread /
slave-task pair.  The merger turns *n* of them into a
:class:`MergedPattern`: a single sequence of :class:`PatternCommand`
whose provenance (pattern id, per-pattern sequence number) is preserved
— the recorder needs it for Definition 2's SN and delta-S fields, and
bug reports need it to say *which* interleaving triggered the anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class TestPattern:
    """One generated pattern: services for a single slave task.

    Attributes
    ----------
    pattern_id:
        Index of this pattern within its batch (also the pair index).
    symbols:
        Service abbreviations in order (e.g. ``("TC", "TS", "TR", "TD")``).
    states:
        The PFA state path that produced the symbols.
    log_probability:
        Log-probability of the generating walk.
    """

    pattern_id: int
    symbols: tuple[str, ...]
    states: tuple[int, ...] = ()
    log_probability: float = 0.0

    #: Not a pytest test class despite the ``Test`` prefix.
    __test__ = False

    def __post_init__(self) -> None:
        if self.pattern_id < 0:
            raise ConfigError(f"pattern_id must be >= 0, got {self.pattern_id}")

    def __len__(self) -> int:
        return len(self.symbols)

    def subsequence_after(self, sequence_number: int) -> tuple[str, ...]:
        """Definition 2's delta-S: what remains after ``sequence_number``
        symbols have been issued (1-based, like the paper's SN)."""
        if sequence_number < 0:
            raise ConfigError(f"negative sequence number {sequence_number}")
        return self.symbols[sequence_number:]

    def describe(self) -> str:
        return "->".join(self.symbols)


@dataclass(frozen=True)
class PatternCommand:
    """One element of a merged pattern.

    ``sequence_in_pattern`` is 1-based (the paper's SN counts states from
    1); ``position`` is the command's 0-based index in the merged
    sequence.
    """

    symbol: str
    pattern_id: int
    sequence_in_pattern: int
    position: int

    def describe(self) -> str:
        return f"{self.symbol}[p{self.pattern_id}#{self.sequence_in_pattern}]"


@dataclass
class MergedPattern:
    """The merger's output: an interleaving of the input patterns."""

    commands: list[PatternCommand]
    op: str
    sources: list[TestPattern] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def per_pattern_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for command in self.commands:
            counts[command.pattern_id] = counts.get(command.pattern_id, 0) + 1
        return counts

    def validate(self) -> None:
        """Check the merge is a true interleaving: every source pattern
        appears exactly once, in order, with correct sequence numbers."""
        progress: dict[int, int] = {pattern.pattern_id: 0 for pattern in self.sources}
        by_id = {pattern.pattern_id: pattern for pattern in self.sources}
        for index, command in enumerate(self.commands):
            if command.position != index:
                raise ConfigError(
                    f"command at index {index} carries position "
                    f"{command.position}"
                )
            pattern = by_id.get(command.pattern_id)
            if pattern is None:
                raise ConfigError(
                    f"command references unknown pattern {command.pattern_id}"
                )
            expected_seq = progress[command.pattern_id] + 1
            if command.sequence_in_pattern != expected_seq:
                raise ConfigError(
                    f"pattern {command.pattern_id} out of order: expected "
                    f"seq {expected_seq}, got {command.sequence_in_pattern}"
                )
            expected_symbol = pattern.symbols[expected_seq - 1]
            if command.symbol != expected_symbol:
                raise ConfigError(
                    f"pattern {command.pattern_id} seq {expected_seq}: "
                    f"expected {expected_symbol}, got {command.symbol}"
                )
            progress[command.pattern_id] = expected_seq
        for pattern in self.sources:
            if progress[pattern.pattern_id] != len(pattern):
                raise ConfigError(
                    f"pattern {pattern.pattern_id} only merged "
                    f"{progress[pattern.pattern_id]}/{len(pattern)} symbols"
                )

    def describe(self) -> str:
        return " ".join(command.describe() for command in self.commands)
