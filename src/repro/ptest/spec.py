"""`CampaignSpec`: one serializable description of a campaign.

PRs 2-9 grew the execution knobs — ``workers``, ``batch_size``,
``batch_sampling``, ``merge_batch``, ``cell_timeout``, ``quarantine``,
``checkpoint``/``resume``, policy/pipeline schedules — and threaded
them as near-duplicate kwargs through :class:`~repro.ptest.campaign.
Campaign`, :class:`~repro.ptest.adaptive.AdaptiveCampaign` and three
CLI subcommands.  This module collapses that plumbing into one frozen,
validated value object with an exact ``to_json``/``from_json``
round-trip, plus the single :func:`execute_spec` entry point that the
CLI (``repro run|campaign|adapt``), the server (``repro serve``) and
:class:`repro.client.Client` all dispatch through.

Validation lives in exactly one place — :meth:`CampaignSpec.validate`,
run from ``__post_init__`` — so contradictory knob combinations
(``resume`` without ``checkpoint``, a checkpoint on a plain campaign,
``policy`` and ``pipeline`` together, ``merge_batch=True`` with batch
sampling explicitly off, batch knobs without numpy) are rejected with
actionable messages before any pool is touched, identically whether
the spec arrived from CLI flags, a ``--spec file.json``, or a socket.

**Determinism.**  :class:`RoundResult` values carry only frozen
dataclasses of JSON-safe scalars (Python floats survive a JSON
round-trip exactly), so a spec executed remotely and rebuilt from the
wire compares equal — bit-identical — to the same spec executed
directly, at any ``(concurrent clients, workers, batch_size)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ConfigError
from repro.ptest.campaign import (
    Campaign,
    CampaignRow,
    DetectionCapture,
    DetectionSample,
    TeeSink,
)
from repro.ptest.executor import (
    QuarantinedCell,
    QuarantineReport,
    ResultSink,
)
from repro.ptest.harness import TestRunResult

MODES = ("run", "campaign", "adapt")

#: Knobs that only mean something on an adaptive (multi-round) run —
#: :meth:`CampaignSpec.validate` rejects them on other modes so a
#: checkpoint on a plain campaign fails loudly instead of silently
#: never persisting anything.
_ADAPT_ONLY = (
    "policy",
    "pipeline",
    "rounds",
    "checkpoint",
    "resume",
    "max_sources",
)


def _check_type(name: str, value: Any, kinds: tuple[type, ...], hint: str) -> None:
    # bool is an int subclass; an int field must still refuse True.
    if isinstance(value, bool) and bool not in kinds:
        raise ConfigError(f"{name} must be {hint}, got {value!r}")
    if not isinstance(value, kinds):
        raise ConfigError(f"{name} must be {hint}, got {value!r}")


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, serializable campaign description.

    ``mode`` selects the engine: ``"run"`` executes one cell and keeps
    its full :class:`~repro.ptest.harness.TestRunResult` (the CLI's
    single-run form), ``"campaign"`` sweeps ``seeds`` × the variant set
    once, ``"adapt"`` runs policy-refined rounds.  ``params`` are fixed
    scenario parameters (stored sorted — order never matters);
    ``grid`` maps parameters to value sweeps (order preserved — it
    fixes the cartesian-product variant naming).  Everything else
    mirrors the knob of the same name on
    :class:`~repro.ptest.campaign.Campaign` /
    :class:`~repro.ptest.adaptive.AdaptiveCampaign`.

    Instances validate on construction and are hashable; build
    variations with :func:`dataclasses.replace`.
    """

    scenario: str
    mode: str = "campaign"
    params: tuple[tuple[str, Any], ...] = ()
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    workers: int = 1
    batch_size: int | None = None
    batch_sampling: bool | None = None
    merge_batch: bool | None = None
    cell_timeout: float | None = None
    quarantine: bool = False
    capture_per_variant: int = 4
    # -- adapt-only schedule knobs ----------------------------------
    policy: str | None = None
    pipeline: str | None = None
    rounds: int | None = None
    max_sources: int | None = None
    prewarm: bool = True
    checkpoint: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        # Canonicalise the containers so equal specs compare equal no
        # matter how the caller spelled them (dict, list of pairs, ...).
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(k), v) for k, v in dict(self.params).items())),
        )
        object.__setattr__(
            self,
            "grid",
            tuple(
                (str(k), tuple(vs)) for k, vs in dict(self.grid).items()
            ),
        )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        self.validate()

    # -- validation --------------------------------------------------

    def validate(self) -> None:
        """Reject contradictory or out-of-range knob combinations.

        The single choke point for spec sanity: every entry path (CLI
        flags, ``--spec`` files, server requests, embedders) funnels
        through construction and therefore through here, with messages
        that name the fix rather than the symptom.
        """
        _check_type("scenario", self.scenario, (str,), "a scenario name")
        if not self.scenario:
            raise ConfigError("scenario must be a non-empty scenario name")
        if self.mode not in MODES:
            raise ConfigError(
                f"mode must be one of {', '.join(MODES)}, got {self.mode!r}"
            )
        if not self.seeds:
            raise ConfigError("seeds must name at least one seed")
        for seed in self.seeds:
            _check_type("seeds", seed, (int,), "a sequence of integers")
        _check_type("workers", self.workers, (int,), "an integer >= 1")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size is not None:
            _check_type(
                "batch_size", self.batch_size, (int,), "an integer >= 1"
            )
            if self.batch_size < 1:
                raise ConfigError(
                    f"batch_size must be >= 1, got {self.batch_size}"
                )
        if self.cell_timeout is not None:
            _check_type(
                "cell_timeout",
                self.cell_timeout,
                (int, float),
                "a positive number of seconds",
            )
            if self.cell_timeout <= 0:
                raise ConfigError(
                    f"cell_timeout must be > 0 seconds, got {self.cell_timeout}"
                )
        _check_type("quarantine", self.quarantine, (bool,), "a boolean")
        _check_type("resume", self.resume, (bool,), "a boolean")
        _check_type("prewarm", self.prewarm, (bool,), "a boolean")
        _check_type(
            "capture_per_variant",
            self.capture_per_variant,
            (int,),
            "an integer >= 0",
        )
        if self.capture_per_variant < 0:
            raise ConfigError(
                f"capture_per_variant must be >= 0, got "
                f"{self.capture_per_variant}"
            )
        overlap = sorted(
            set(dict(self.grid)) & {key for key, _v in self.params}
        )
        if overlap:
            raise ConfigError(
                f"parameters {overlap} appear both fixed and in the grid"
            )
        for key, values in self.grid:
            if not values:
                raise ConfigError(
                    f"grid parameter {key!r} has no values to sweep"
                )
        # Explicit batch requests are checked here, before any pool or
        # worker exists, with the same ConfigError the executor raises —
        # plus the one combination the executor only *silently* honours:
        # merge batching rides the batch-sampling plan, so demanding it
        # while turning sampling off can never take effect.
        if self.batch_sampling is True or self.merge_batch is True:
            from repro.automata.batch import require_numpy

            if self.batch_sampling is True:
                require_numpy("CampaignSpec(batch_sampling=True)")
            if self.merge_batch is True:
                require_numpy("CampaignSpec(merge_batch=True)")
        if self.merge_batch is True and self.batch_sampling is False:
            raise ConfigError(
                "merge_batch=True needs batch sampling: worker-side "
                "batched merges ride the vectorized sampling plan, so "
                "batch_sampling=False would silently disable them; "
                "drop one of the two settings"
            )
        if self.mode == "run":
            if len(self.seeds) != 1:
                raise ConfigError(
                    f"mode 'run' executes one cell, got {len(self.seeds)} "
                    "seeds; use mode 'campaign' for a seed sweep"
                )
            if self.workers != 1:
                raise ConfigError(
                    "mode 'run' executes one cell in-process; "
                    "workers only apply to campaign/adapt sweeps"
                )
            if self.grid:
                raise ConfigError(
                    "mode 'run' takes fixed params only; use mode "
                    "'campaign' to sweep a grid"
                )
        if self.mode != "adapt":
            given = [
                name
                for name in _ADAPT_ONLY
                if getattr(self, name) not in (None, False)
            ]
            if given:
                raise ConfigError(
                    f"{', '.join(given)} only apply to mode 'adapt' "
                    f"(multi-round refinement), not mode {self.mode!r}; "
                    "a checkpoint or schedule on a single-pass campaign "
                    "would never take effect"
                )
        else:
            if self.policy is not None and self.pipeline is not None:
                raise ConfigError(
                    "policy and pipeline are mutually exclusive; a "
                    "pipeline is itself the policy schedule"
                )
            if self.rounds is not None:
                _check_type("rounds", self.rounds, (int,), "an integer >= 1")
                if self.rounds < 1:
                    raise ConfigError(
                        f"rounds must be >= 1, got {self.rounds}"
                    )
            if self.max_sources is not None:
                _check_type(
                    "max_sources",
                    self.max_sources,
                    (int,),
                    "an integer >= 1",
                )
                if self.max_sources < 1:
                    raise ConfigError(
                        f"max_sources must be >= 1, got {self.max_sources}"
                    )
            if self.resume and self.checkpoint is None:
                raise ConfigError(
                    "resume=True needs a checkpoint path "
                    "(CLI: --resume needs --checkpoint PATH)"
                )
            if self.policy is not None:
                from repro.ptest.adaptive import POLICIES

                if self.policy not in POLICIES:
                    raise ConfigError(
                        f"unknown policy {self.policy!r}; "
                        f"known policies: {', '.join(sorted(POLICIES))}"
                    )
            if self.pipeline is not None:
                # Parsing validates stage names/bounds; an unbounded
                # final stage needs the explicit rounds cap now, not
                # after round 1 has already run.
                pipeline = self._parse_pipeline()
                if pipeline.total_rounds() is None and self.rounds is None:
                    raise ConfigError(
                        f"pipeline {self.pipeline!r} has an unbounded "
                        "final stage; give rounds= to cap the campaign "
                        "(CLI: --rounds)"
                    )

    def _parse_pipeline(self):
        from repro.ptest.pipeline import parse_pipeline

        replay_kwargs = (
            {"max_sources": self.max_sources}
            if self.max_sources is not None
            else {}
        )
        return parse_pipeline(
            self.pipeline, policy_kwargs={"replay": replay_kwargs}
        )

    # -- serialization -----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping; omits fields left at their defaults so
        specs stay readable and forward-portable."""
        payload: dict[str, Any] = {"scenario": self.scenario, "mode": self.mode}
        defaults = {f.name: f.default for f in fields(self)}
        if self.params:
            payload["params"] = dict(self.params)
        if self.grid:
            payload["grid"] = {key: list(vs) for key, vs in self.grid}
        payload["seeds"] = list(self.seeds)
        for name in (
            "workers",
            "batch_size",
            "batch_sampling",
            "merge_batch",
            "cell_timeout",
            "quarantine",
            "capture_per_variant",
            "policy",
            "pipeline",
            "rounds",
            "max_sources",
            "prewarm",
            "checkpoint",
            "resume",
        ):
            value = getattr(self, name)
            if value != defaults[name]:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"campaign spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown campaign spec field(s) {unknown}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        data = dict(payload)
        if "params" in data:
            if not isinstance(data["params"], Mapping):
                raise ConfigError(
                    "params must be a JSON object of fixed parameters"
                )
            data["params"] = tuple(data["params"].items())
        if "grid" in data:
            if not isinstance(data["grid"], Mapping):
                raise ConfigError(
                    "grid must be a JSON object mapping parameters to "
                    "value lists"
                )
            data["grid"] = tuple(
                (key, tuple(vs) if isinstance(vs, (list, tuple)) else (vs,))
                for key, vs in data["grid"].items()
            )
        if "seeds" in data:
            if not isinstance(data["seeds"], (list, tuple)):
                raise ConfigError("seeds must be a JSON list of integers")
            data["seeds"] = tuple(data["seeds"])
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"campaign spec is not valid JSON: {error}")
        return cls.from_dict(payload)

    def with_seeds(self, count: int) -> "CampaignSpec":
        """Convenience: the same spec over ``range(count)`` seeds."""
        return replace(self, seeds=tuple(range(count)))


# -- execution results ---------------------------------------------------------


@dataclass(frozen=True)
class RoundResult:
    """One executed (or checkpoint-replayed) round, wire-portable.

    Every field is a frozen dataclass of JSON-safe scalars, so a value
    rebuilt from :func:`round_from_dict` on the far side of a socket
    compares *equal* to the locally-produced original — this is the
    unit of the serve bit-identity contract.  Telemetry that is honest
    but process-local (pool ids, timings) deliberately lives outside.
    """

    index: int
    rows: tuple[CampaignRow, ...]
    detections: tuple[DetectionSample, ...]
    quarantine: QuarantineReport | None = None
    #: Pipeline stage label that owned this round (``None`` without a
    #: pipeline) — part of the schedule, so part of the contract.
    stage: str | None = None

    @property
    def total_detections(self) -> int:
        return sum(row.detections for row in self.rows)


@dataclass
class SpecOutcome:
    """Everything :func:`execute_spec` produced for one spec.

    ``rounds`` is the determinism-contract payload (one entry for a
    plain campaign, one per round for adapt); the remaining fields are
    telemetry and mode-specific extras the CLI renders.
    """

    spec: CampaignSpec
    rounds: tuple[RoundResult, ...]
    stopped_early: bool = False
    #: Per-round ``WorkerPool.pool_id`` telemetry, aligned with
    #: ``rounds`` (``None`` entries for serial rounds).  Process-local:
    #: never part of the bit-identity payload.
    pool_ids: tuple[int | None, ...] = ()
    prewarmed_refs: int = 0
    resumed_rounds: int = 0
    #: The resolved round budget (adapt mode; ``None`` otherwise).
    rounds_budget: int | None = None
    #: Human-readable schedule, e.g. ``policy=grid_zoom`` or
    #: ``pipeline=grid_zoom:3 -> replay:2``.
    schedule: str = ""
    #: Mode ``"run"`` only: the single cell's full result.
    run_result: TestRunResult | None = None

    @property
    def rows(self) -> tuple[CampaignRow, ...]:
        return self.rounds[-1].rows if self.rounds else ()

    @property
    def detections(self) -> tuple[DetectionSample, ...]:
        return tuple(
            sample for round_ in self.rounds for sample in round_.detections
        )

    @property
    def quarantine(self) -> QuarantineReport | None:
        return self.rounds[-1].quarantine if self.rounds else None

    @property
    def total_detections(self) -> int:
        return sum(round_.total_detections for round_ in self.rounds)


def _capture_detections(
    capture: DetectionCapture, rows: Iterable[CampaignRow]
) -> tuple[DetectionSample, ...]:
    """Flatten a round's capture in row order, then capture order —
    the same deterministic order ``RoundObservation.iter_samples``
    yields, so direct and spec-driven runs agree sample for sample."""
    return tuple(
        sample
        for row in rows
        for sample in capture.for_variant(row.variant)
    )


def _add_variants(campaign: Any, spec: CampaignSpec) -> None:
    fixed = dict(spec.params)
    grid = {key: list(values) for key, values in spec.grid}
    if grid:
        campaign.add_grid(spec.scenario, spec.scenario, grid, **fixed)
    else:
        campaign.add_scenario(spec.scenario, spec.scenario, **fixed)


def _execute_run(spec: CampaignSpec) -> SpecOutcome:
    from repro.workloads.registry import build_scenario

    test = build_scenario(spec.scenario, spec.seeds[0], **dict(spec.params))
    result = test.run()
    detections: tuple[DetectionSample, ...] = ()
    if result.found_bug:
        report = result.report
        detections = (
            DetectionSample(
                variant=spec.scenario,
                seed=spec.seeds[0],
                kind=report.primary.kind.value,
                merged_op=report.merged_op,
                merged_description=report.merged_description,
            ),
        )
    round_result = RoundResult(
        index=0,
        rows=(),
        detections=detections,
    )
    return SpecOutcome(
        spec=spec,
        rounds=(round_result,),
        pool_ids=(None,),
        run_result=result,
    )


def _execute_campaign(
    spec: CampaignSpec, sink: ResultSink | None
) -> SpecOutcome:
    campaign = Campaign(
        seeds=spec.seeds,
        workers=spec.workers,
        batch_size=spec.batch_size,
        batch_sampling=spec.batch_sampling,
        merge_batch=spec.merge_batch,
        keep_results=False,
        cell_timeout=spec.cell_timeout,
        quarantine=spec.quarantine,
    )
    _add_variants(campaign, spec)
    capture = DetectionCapture(limit_per_variant=spec.capture_per_variant)
    fan_out: ResultSink = capture
    if sink is not None:
        fan_out = TeeSink((capture, sink))
    rows = campaign.run(sink=fan_out)
    round_result = RoundResult(
        index=0,
        rows=tuple(rows),
        detections=_capture_detections(capture, rows),
        quarantine=campaign.last_quarantine,
    )
    return SpecOutcome(
        spec=spec,
        rounds=(round_result,),
        pool_ids=(campaign.last_pool_id,),
    )


def _resolve_schedule(spec: CampaignSpec):
    """The spec's refine policy, round budget and display string."""
    from repro.ptest.adaptive import POLICIES

    if spec.pipeline is not None:
        pipeline = spec._parse_pipeline()
        rounds = spec.rounds
        if rounds is None:
            rounds = pipeline.total_rounds()
        return pipeline, pipeline, rounds, f"pipeline={pipeline.describe()}"
    policy_name = spec.policy if spec.policy is not None else "grid_zoom"
    replay_kwargs = (
        {"max_sources": spec.max_sources}
        if spec.max_sources is not None
        else {}
    )
    policy_kwargs = replay_kwargs if policy_name == "replay" else {}
    policy = POLICIES[policy_name](**policy_kwargs)
    rounds = spec.rounds if spec.rounds is not None else 3
    return policy, None, rounds, f"policy={policy_name}"


def _execute_adapt(
    spec: CampaignSpec,
    sink: ResultSink | None,
    on_round: Callable[[RoundResult], None] | None,
) -> SpecOutcome:
    from repro.ptest.adaptive import AdaptiveCampaign

    policy, pipeline, rounds, schedule = _resolve_schedule(spec)
    campaign = AdaptiveCampaign(
        seeds=spec.seeds,
        rounds=rounds,
        policy=policy,
        workers=spec.workers,
        batch_size=spec.batch_size,
        capture_per_variant=spec.capture_per_variant,
        prewarm=spec.prewarm,
        cell_timeout=spec.cell_timeout,
        quarantine=spec.quarantine,
        checkpoint=spec.checkpoint,
        resume=spec.resume,
    )
    _add_variants(campaign, spec)
    round_results: list[RoundResult] = []

    def observe(observation) -> None:
        # Called the moment each observation lands (executed *and*
        # checkpoint-replayed), before the policy refines it — so
        # ``pipeline.current_stage`` is still the stage that owned the
        # round, exactly what ``stage_log`` will record.
        stage = None
        if pipeline is not None and pipeline.current_stage is not None:
            stage = pipeline.current_stage.label
        round_result = RoundResult(
            index=observation.index,
            rows=observation.rows,
            detections=tuple(observation.iter_samples()),
            quarantine=observation.quarantine,
            stage=stage,
        )
        round_results.append(round_result)
        if on_round is not None:
            on_round(round_result)

    campaign.on_round = observe
    result = campaign.run(sink=sink)
    return SpecOutcome(
        spec=spec,
        rounds=tuple(round_results),
        stopped_early=result.stopped_early,
        pool_ids=result.pool_ids,
        prewarmed_refs=result.prewarmed_refs,
        resumed_rounds=result.resumed_rounds,
        rounds_budget=rounds,
        schedule=schedule,
    )


def execute_spec(
    spec: CampaignSpec,
    sink: ResultSink | None = None,
    *,
    on_round: Callable[[RoundResult], None] | None = None,
) -> SpecOutcome:
    """Execute ``spec`` and return its :class:`SpecOutcome`.

    The one entry point behind ``repro run|campaign|adapt``, ``repro
    serve`` and :class:`repro.client.Client`.  ``sink`` (if given)
    receives every ``(cell, result)`` pair in submission order — the
    streaming hook the server bridges over the socket.  ``on_round``
    fires once per completed round with its :class:`RoundResult`
    (plain campaigns count as one round), enabling incremental round
    delivery without waiting for the whole schedule.

    Pool lifetime is the caller's: shared pools stay warm across calls
    (that is the point of the server), so one-shot callers such as the
    CLI close theirs afterwards.
    """
    if spec.mode == "run":
        outcome = _execute_run(spec)
    elif spec.mode == "campaign":
        outcome = _execute_campaign(spec, sink)
    else:
        return _execute_adapt(spec, sink, on_round)
    if on_round is not None:
        for round_result in outcome.rounds:
            on_round(round_result)
    return outcome


# -- wire codecs ---------------------------------------------------------------
#
# Plain dict codecs for the result dataclasses, used by serve/client to
# ship rounds as NDJSON.  Floats round-trip exactly through JSON
# (shortest-repr), so decode(encode(x)) == x — the property the serve
# bit-identity tests pin.


def row_to_dict(row: CampaignRow) -> dict[str, Any]:
    return {
        "variant": row.variant,
        "runs": row.runs,
        "detections": row.detections,
        "kinds": list(row.kinds),
        "mean_ticks_to_detection": row.mean_ticks_to_detection,
        "mean_commands": row.mean_commands,
    }


def row_from_dict(payload: Mapping[str, Any]) -> CampaignRow:
    return CampaignRow(
        variant=payload["variant"],
        runs=payload["runs"],
        detections=payload["detections"],
        kinds=tuple(payload["kinds"]),
        mean_ticks_to_detection=payload["mean_ticks_to_detection"],
        mean_commands=payload["mean_commands"],
    )


def detection_to_dict(sample: DetectionSample) -> dict[str, Any]:
    return {
        "variant": sample.variant,
        "seed": sample.seed,
        "kind": sample.kind,
        "merged_op": sample.merged_op,
        "merged_description": sample.merged_description,
    }


def detection_from_dict(payload: Mapping[str, Any]) -> DetectionSample:
    return DetectionSample(
        variant=payload["variant"],
        seed=payload["seed"],
        kind=payload["kind"],
        merged_op=payload["merged_op"],
        merged_description=payload["merged_description"],
    )


def quarantine_to_dict(report: QuarantineReport | None) -> dict[str, Any] | None:
    if report is None:
        return None
    return {
        "cells": [
            {
                "variant": cell.variant,
                "seed": cell.seed,
                "kind": cell.kind,
                "detail": cell.detail,
            }
            for cell in report.cells
        ],
        "attempted": report.attempted,
        "completed": report.completed,
    }


def quarantine_from_dict(
    payload: Mapping[str, Any] | None,
) -> QuarantineReport | None:
    if payload is None:
        return None
    return QuarantineReport(
        cells=tuple(
            QuarantinedCell(
                variant=cell["variant"],
                seed=cell["seed"],
                kind=cell["kind"],
                detail=cell["detail"],
            )
            for cell in payload["cells"]
        ),
        attempted=payload["attempted"],
        completed=payload["completed"],
    )


def round_to_dict(round_result: RoundResult) -> dict[str, Any]:
    return {
        "index": round_result.index,
        "rows": [row_to_dict(row) for row in round_result.rows],
        "detections": [
            detection_to_dict(sample) for sample in round_result.detections
        ],
        "quarantine": quarantine_to_dict(round_result.quarantine),
        "stage": round_result.stage,
    }


def round_from_dict(payload: Mapping[str, Any]) -> RoundResult:
    return RoundResult(
        index=payload["index"],
        rows=tuple(row_from_dict(row) for row in payload["rows"]),
        detections=tuple(
            detection_from_dict(sample) for sample in payload["detections"]
        ),
        quarantine=quarantine_from_dict(payload.get("quarantine")),
        stage=payload.get("stage"),
    )
