"""Deterministic chaos injection at the pool boundary.

The paper's machinery exists to surface hangs and deadlocks in the
*workload under test*; this module injects hangs and crashes into the
*execution fabric itself*, so every recovery invariant — watchdog
timeouts, dead-worker respawn, poison-cell quarantine, checkpoint
resume — is provable in ordinary tests instead of only under real
production failures.  It is deliberately distinct from
:mod:`repro.faults`, which plants bugs inside workloads for the
detector to find: chaos faults happen *around* the workload, at the
worker-batch boundary, and a correctly recovering executor produces
results bit-identical to a chaos-free run.

Two fault families, both derived from :class:`ChaosSpec` seeds alone
(no wall clock, no ambient randomness), so a chaos run is replayable:

* **Transient faults** (``kill_rate`` / ``hang_rate`` / ``delay_rate``)
  are drawn per *batch attempt*: the decision RNG is seeded from
  ``(spec.seed, attempt, jobs)``, so a batch that was killed on its
  first attempt usually survives its resubmission — exactly the
  worker-death / stuck-future shapes the executor's respawn and
  watchdog paths must absorb without losing or changing a single row.

* **Poison cells** (``kill_seeds`` / ``hang_seeds`` / ``raise_seeds``)
  are keyed by the *cell seed* alone, independent of attempt or batch
  packing: the fault follows the cell through every retry, rebatch and
  bisection step, which is what lets the quarantine tests assert the
  same cells are isolated at any ``(workers, batch_size)``.

Worker-side entry point is :func:`run_chaos_batch`, which the executor
substitutes for :func:`~repro.ptest.pool.run_table_batch` whenever a
``chaos=`` spec is configured; the serial path never applies chaos
(there is no pool boundary to inject at — the serial run is the clean
reference the invariants compare against).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ChaosInjectedError, ConfigError

if TYPE_CHECKING:
    from repro.ptest.executor import ScenarioBuilder
    from repro.ptest.harness import TestRunResult

#: Exit status used for injected worker kills — distinct from the 1 a
#: real crash helper tends to use, so a chaos kill is recognisable in
#: worker-death telemetry and core-dump triage.
CHAOS_EXIT_STATUS = 23


@dataclass(frozen=True)
class ChaosSpec:
    """A picklable, fully-seeded description of the faults to inject.

    Rates are probabilities in ``[0, 1]`` drawn once per batch attempt;
    seed sets are exact per-cell triggers.  ``hang_s`` must comfortably
    exceed the executor's ``cell_timeout`` — the injected hang is meant
    to be *detected and killed* by the watchdog, never to finish.
    ``poison_scenario`` (when given) restricts the seed-set triggers to
    cells whose table entry is a :class:`ScenarioRef` of that scenario,
    so one poisoned variant can ride inside a mixed campaign.
    """

    seed: int = 0
    #: P(injected worker kill) per batch attempt — ``os._exit`` before
    #: any job runs, surfacing as ``BrokenProcessPool`` in the parent.
    kill_rate: float = 0.0
    #: P(forced hang) per batch attempt — sleep ``hang_s`` before the
    #: jobs, tripping the parent's watchdog deadline.
    hang_rate: float = 0.0
    #: P(batch delay) per batch attempt, plus its length: the batch
    #: still completes correctly, just late — exercising the in-order
    #: delivery contract under skew.
    delay_rate: float = 0.0
    delay_s: float = 0.01
    #: Sleep length of an injected hang (transient or poison).
    hang_s: float = 30.0
    #: Cells (by seed) that kill their worker every single attempt.
    kill_seeds: frozenset[int] = field(default_factory=frozenset)
    #: Cells (by seed) that hang every attempt (watchdog fodder).
    hang_seeds: frozenset[int] = field(default_factory=frozenset)
    #: Cells (by seed) that raise :class:`ChaosInjectedError` — the
    #: deterministically lethal-batch shape, without a worker death.
    raise_seeds: frozenset[int] = field(default_factory=frozenset)
    #: Restrict the seed-set triggers to this registry scenario's refs
    #: (``None`` = any cell with a matching seed).
    poison_scenario: str | None = None

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"ChaosSpec.{name} must be in [0, 1], got {rate}"
                )
        if self.delay_s < 0 or self.hang_s <= 0:
            raise ConfigError(
                "ChaosSpec delays must be non-negative and hang_s > 0"
            )
        # The seed sets must be frozen (the spec is hashed into RNG
        # derivations and shipped between processes); coerce iterables.
        for name in ("kill_seeds", "hang_seeds", "raise_seeds"):
            value = getattr(self, name)
            if not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(value))

    @property
    def has_poison(self) -> bool:
        return bool(self.kill_seeds or self.hang_seeds or self.raise_seeds)

    def describe(self) -> str:
        parts = []
        if self.kill_rate:
            parts.append(f"kill_rate={self.kill_rate}")
        if self.hang_rate:
            parts.append(f"hang_rate={self.hang_rate}")
        if self.delay_rate:
            parts.append(f"delay_rate={self.delay_rate}")
        for name in ("kill_seeds", "hang_seeds", "raise_seeds"):
            seeds = getattr(self, name)
            if seeds:
                parts.append(f"{name}={sorted(seeds)}")
        return f"ChaosSpec(seed={self.seed}, {', '.join(parts) or 'clean'})"


def transient_decisions(
    spec: ChaosSpec, attempt: int, jobs: Sequence[tuple[int, int]]
) -> tuple[bool, bool, bool]:
    """The (kill, hang, delay) draw for one batch attempt.

    Pure and parent-computable: the RNG is seeded from integers only
    (spec seed, attempt, the flattened job rows), so ints hash
    identically in every process and the same attempt of the same batch
    draws the same fate wherever it is evaluated — tests predict
    worker-side behaviour without running a worker.  Three draws are
    always consumed, in a fixed order, so enabling one rate never
    shifts another's stream.
    """
    key = (spec.seed, attempt) + tuple(
        part for job in jobs for part in job
    )
    rng = random.Random(hash(key))
    kill = rng.random() < spec.kill_rate
    hang = rng.random() < spec.hang_rate
    delay = rng.random() < spec.delay_rate
    return kill, hang, delay


def _poison_kind(
    spec: ChaosSpec, builder: "ScenarioBuilder", seed: int
) -> str | None:
    """Which poison (if any) spec plants in cell ``(builder, seed)``."""
    if spec.poison_scenario is not None:
        if getattr(builder, "name", None) != spec.poison_scenario:
            return None
    if seed in spec.kill_seeds:
        return "kill"
    if seed in spec.hang_seeds:
        return "hang"
    if seed in spec.raise_seeds:
        return "raise"
    return None


def run_chaos_batch(
    spec: ChaosSpec,
    attempt: int,
    table: Sequence["ScenarioBuilder"],
    jobs: Sequence[tuple[int, int]],
    batch_sampling: bool | None = None,
    merge_batch: bool | None = None,
) -> list["TestRunResult"]:
    """Worker-side entry point: inject, then run the batch normally.

    Module-level so it pickles to workers.  Faults fire *before* any
    job executes — a killed or hung batch computes nothing, which is
    the worst case the parent's resubmit/bisect machinery must handle
    (partial batch results are never observable either way, since one
    future carries the whole batch).  A clean draw falls through to
    :func:`~repro.ptest.pool.run_table_batch` untouched, so chaos-on
    results are byte-for-byte the chaos-off results.
    """
    from repro.ptest.pool import run_table_batch

    kill, hang, delay = transient_decisions(spec, attempt, jobs)
    if kill:
        os._exit(CHAOS_EXIT_STATUS)
    if hang:
        time.sleep(spec.hang_s)
    if delay:
        time.sleep(spec.delay_s)
    if spec.has_poison:
        for position, seed in jobs:
            kind = _poison_kind(spec, table[position], seed)
            if kind == "kill":
                os._exit(CHAOS_EXIT_STATUS)
            elif kind == "hang":
                time.sleep(spec.hang_s)
            elif kind == "raise":
                raise ChaosInjectedError(
                    f"chaos poison cell seed={seed} (injected, not a "
                    "workload bug)"
                )
    return run_table_batch(table, jobs, batch_sampling, merge_batch)
