"""Incrementally maintained wait-for graph for deadlock detection.

The legacy detector rebuilt a :mod:`networkx` digraph from every mutex's
owner/waiter lists on *every* sweep and re-ran ``find_cycle`` — pure
overhead on the thousands of sweeps where nothing changed hands.

:class:`IncrementalWaitForGraph` keeps per-resource edge rows keyed by
each :class:`~repro.pcore.sync.KMutex`'s ``version`` counter: a sweep
re-derives edges only for mutexes whose version moved, and the cycle
search (a plain iterative DFS — no networkx in the hot path) runs only
when some edge row actually changed since the last search.  In the
steady state a sweep costs one integer comparison per mutex.

Edges follow the paper's convention: ``waiter -> owner`` labelled with
the contested resource.  A blocked task waits on exactly one resource,
so each waiter has at most one outgoing edge and ``(waiter, owner)``
identifies the resource uniquely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


def find_cycle_edges(
    edges: Iterable[tuple[int, int]],
) -> list[tuple[int, int]] | None:
    """First cycle in a digraph, as its edge list, or ``None``.

    Deterministic: roots and successors are explored in sorted order, so
    the same edge set always yields the same cycle.  Iterative
    three-colour DFS — no recursion, no external graph library.

    This is the *scalar confirm reference* for the batched sweep: the
    vectorized screen of :mod:`repro.ptest.batchdetect` only decides
    *whether* a snapshot is cyclic (an exact property — the Kahn peel
    removes every node iff the graph is acyclic) and hands each cyclic
    survivor back to this function, so batch results carry the very
    same first cycle the per-run search would have returned.
    """
    successors: dict[int, list[int]] = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
    for row in successors.values():
        row.sort()
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: dict[int, int] = {}
    for root in sorted(successors):
        if colour.get(root, WHITE) is not WHITE:
            continue
        # Stack of (node, iterator over successors); `path` mirrors the
        # gray chain so a back edge can be unwound into cycle edges.
        stack = [(root, iter(successors.get(root, ())))]
        colour[root] = GRAY
        path = [root]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state is GRAY:
                    start = path.index(child)
                    cycle_nodes = path[start:] + [child]
                    return list(zip(cycle_nodes, cycle_nodes[1:]))
                if state is WHITE:
                    colour[child] = GRAY
                    stack.append((child, iter(successors.get(child, ()))))
                    path.append(child)
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
                path.pop()
    return None


@dataclass
class IncrementalWaitForGraph:
    """Wait-for edges refreshed from mutex version deltas.

    ``refresh`` folds the kernel's resource table in; ``find_cycle``
    returns the (cached) first cycle.  Resources exposing an ``owner``
    attribute (mutexes) contribute edges, matching
    :meth:`PCoreKernel.wait_for_edges`; ownerless resources
    (semaphores) are skipped.  A resource without a ``version``
    counter still contributes edges — it just re-derives them on every
    refresh instead of only on version deltas.
    """

    _versions: dict[str, int] = field(default_factory=dict)
    _edges_by_resource: dict[str, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )
    _dirty: bool = True
    _cached_cycle: list[tuple[int, int]] | None = None
    #: How many refreshes actually re-derived at least one edge row —
    #: observability for benchmarks and tests.
    rescans: int = 0
    #: How many cycle searches ran (vs. served from cache).
    searches: int = 0

    def refresh(self, resources: Mapping[str, object]) -> bool:
        """Fold in the current resource table; True when edges changed."""
        changed = False
        live: set[str] = set()
        for name, resource in resources.items():
            if not hasattr(resource, "owner"):
                continue  # semaphores: ownerless, no wait-for edges
            live.add(name)
            version = getattr(resource, "version", None)
            if version is not None:
                if self._versions.get(name) == version:
                    continue
                self._versions[name] = version
            owner = resource.owner
            if owner is None:
                edges: tuple[tuple[int, int], ...] = ()
            else:
                edges = tuple(
                    (waiter, owner) for waiter in resource.waiters
                )
            if self._edges_by_resource.get(name, ()) != edges:
                if edges:
                    self._edges_by_resource[name] = edges
                else:
                    self._edges_by_resource.pop(name, None)
                changed = True
        # Versionless resources never enter _versions, so sweep both maps.
        tracked = self._versions.keys() | self._edges_by_resource.keys()
        for name in [name for name in tracked if name not in live]:
            self._versions.pop(name, None)
            if self._edges_by_resource.pop(name, None) is not None:
                changed = True
        if changed:
            self.rescans += 1
            self._dirty = True
        return changed

    def edges(self) -> list[tuple[int, int, str]]:
        """Current ``(waiter, owner, resource)`` rows, resource-sorted."""
        return [
            (waiter, owner, name)
            for name in sorted(self._edges_by_resource)
            for waiter, owner in self._edges_by_resource[name]
        ]

    def resource_of(self, waiter: int, owner: int) -> str:
        """Name of the resource behind edge ``waiter -> owner``."""
        for name, edges in self._edges_by_resource.items():
            if (waiter, owner) in edges:
                return name
        raise KeyError(f"no wait-for edge {waiter} -> {owner}")

    def snapshot(self) -> tuple[tuple[int, int], ...]:
        """The current flat ``(waiter, owner)`` edge set, in the exact
        order :meth:`find_cycle` feeds :func:`find_cycle_edges` — so a
        recorded snapshot replayed through the batched sweep reproduces
        the scalar search's cycle bit for bit."""
        return tuple(
            edge
            for edges in self._edges_by_resource.values()
            for edge in edges
        )

    def find_cycle(self) -> list[tuple[int, int]] | None:
        """First wait-for cycle as edge pairs; cached until edges move."""
        if self._dirty:
            flat = [
                edge
                for edges in self._edges_by_resource.values()
                for edge in edges
            ]
            self._cached_cycle = find_cycle_edges(flat)
            self._dirty = False
            self.searches += 1
        return self._cached_cycle
