"""The bug detector.

"The bug detector tracks the progress of test activities until it
detects the potential system failures and then it terminates the test
activity that results in these failures."  It watches four anomaly
classes:

``CRASH``
    The slave kernel panicked (test case 1's GC failure shows up here).
``DEADLOCK``
    A cycle in the wait-for graph built from mutex ownership (test
    case 2's dining philosophers).
``STARVATION``
    A live, unsuspended task whose last progress is older than the
    progress window while the system is otherwise active — the paper's
    "processes ... stay in the same state for a period of time".
``HANG``
    The oldest unanswered remote command exceeds the reply timeout (the
    slave stopped answering the bridge without an observable panic).

The detector "is run as a new process" in the paper; here it is a
component swept every ``interval`` ticks by the harness, which is the
same observational model (sampled, concurrent monitoring) without host
processes.  Wait-for cycles are tracked by an incrementally maintained
:class:`~repro.ptest.waitgraph.IncrementalWaitForGraph`: mutex
``version`` counters tell a sweep which resources' edges moved, and the
cycle search itself runs only when some edge actually changed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bridge.bridge import BridgeMaster
from repro.pcore.kernel import PCoreKernel
from repro.pcore.tcb import TaskState
from repro.ptest.recording import ProcessStateRecorder
from repro.ptest.waitgraph import IncrementalWaitForGraph
from repro.sim.trace import CATEGORY_DETECTOR, Tracer


class AnomalyKind(enum.Enum):
    CRASH = "crash"
    DEADLOCK = "deadlock"
    STARVATION = "starvation"
    HANG = "hang"


@dataclass(frozen=True)
class Anomaly:
    """One detected failure."""

    kind: AnomalyKind
    detected_at: int
    description: str
    #: Tasks involved (cycle members, starved task, ...).
    tids: tuple[int, ...] = ()
    #: Resources involved (deadlock cycle edges).
    resources: tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"[{self.detected_at}] {self.kind.value}: {self.description}"
        )


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for the sampled monitors."""

    reply_timeout: int = 400
    progress_window: int = 600
    interval: int = 8
    #: Require the blocked set to be stable across this many sweeps
    #: before declaring deadlock (debounce against transient contention).
    deadlock_confirmations: int = 2
    #: Record a ``(tick, edge-set)`` snapshot on every sweep whose
    #: wait-graph refresh actually changed edges.  The recorded deltas
    #: feed the batched re-check of :mod:`repro.ptest.batchdetect`.
    record_wait_deltas: bool = False


@dataclass
class BugDetector:
    """Sampled monitor over the kernel, bridge and state records."""

    kernel: PCoreKernel
    bridge: BridgeMaster
    config: DetectorConfig = field(default_factory=DetectorConfig)
    recorder: ProcessStateRecorder | None = None
    tracer: Tracer | None = None
    anomalies: list[Anomaly] = field(default_factory=list)
    sweeps: int = 0
    waitgraph: IncrementalWaitForGraph = field(
        default_factory=IncrementalWaitForGraph
    )
    _last_cycle: tuple[int, ...] = ()
    _cycle_streak: int = 0
    _reported: set[tuple] = field(default_factory=set)
    #: ``(tick, edges)`` per changed sweep, when
    #: ``config.record_wait_deltas`` is set.  Edges are stored in the
    #: exact order the scalar cycle search consumes them, so replaying
    #: a delta through :meth:`sweep_batch` reproduces its cycle.
    wait_deltas: list[tuple[int, tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )

    @property
    def triggered(self) -> bool:
        return bool(self.anomalies)

    def first(self, kind: AnomalyKind) -> Anomaly | None:
        for anomaly in self.anomalies:
            if anomaly.kind is kind:
                return anomaly
        return None

    # -- sweep ----------------------------------------------------------------

    def sweep(self, now: int) -> list[Anomaly]:
        """Run all monitors; returns anomalies *new* in this sweep."""
        self.sweeps += 1
        found: list[Anomaly] = []
        found.extend(self._check_crash(now))
        found.extend(self._check_deadlock(now))
        found.extend(self._check_starvation(now))
        found.extend(self._check_hang(now))
        for anomaly in found:
            self.anomalies.append(anomaly)
            if self.tracer is not None:
                self.tracer.record(
                    now,
                    "ptest",
                    CATEGORY_DETECTOR,
                    kind=anomaly.kind.value,
                    description=anomaly.description,
                )
        return found

    # -- monitors ---------------------------------------------------------------

    def _emit_once(self, key: tuple, anomaly: Anomaly) -> list[Anomaly]:
        if key in self._reported:
            return []
        self._reported.add(key)
        return [anomaly]

    def _check_crash(self, now: int) -> list[Anomaly]:
        if not self.kernel.is_halted():
            return []
        reason = self.kernel.panic_reason or "unknown panic"
        return self._emit_once(
            ("crash",),
            Anomaly(
                kind=AnomalyKind.CRASH,
                detected_at=now,
                description=f"slave kernel panic: {reason}",
            ),
        )

    @staticmethod
    def sweep_batch(
        snapshots: "list[tuple[tuple[int, int], ...]]",
        *,
        use_numpy: bool | None = None,
    ) -> "list[tuple[int, ...] | None]":
        """Check many recorded wait-graph snapshots in one batched pass.

        Returns each snapshot's sorted cycle-member tids (the same
        reduction :meth:`_check_deadlock` applies before debouncing) or
        ``None``.  Vectorized screen + scalar confirm — see
        :mod:`repro.ptest.batchdetect`; falls back to the per-snapshot
        scalar search without numpy, bit-identically.
        """
        from repro.ptest.batchdetect import cycle_tids_batch

        return cycle_tids_batch(snapshots, use_numpy=use_numpy)

    def _check_deadlock(self, now: int) -> list[Anomaly]:
        if (
            self.waitgraph.refresh(self.kernel.resources)
            and self.config.record_wait_deltas
        ):
            self.wait_deltas.append((now, self.waitgraph.snapshot()))
        cycle_edges = self.waitgraph.find_cycle()
        if cycle_edges is None:
            self._cycle_streak = 0
            self._last_cycle = ()
            return []
        cycle_tids = tuple(sorted({edge[0] for edge in cycle_edges}))
        if cycle_tids == self._last_cycle:
            self._cycle_streak += 1
        else:
            self._last_cycle = cycle_tids
            self._cycle_streak = 1
        if self._cycle_streak < self.config.deadlock_confirmations:
            return []
        resources = tuple(
            self.waitgraph.resource_of(waiter, owner)
            for waiter, owner in cycle_edges
        )
        names = ", ".join(
            self.kernel.tasks[tid].name if tid in self.kernel.tasks else str(tid)
            for tid in cycle_tids
        )
        return self._emit_once(
            ("deadlock", cycle_tids),
            Anomaly(
                kind=AnomalyKind.DEADLOCK,
                detected_at=now,
                description=(
                    f"wait-for cycle among tasks [{names}] over resources "
                    f"[{', '.join(resources)}]"
                ),
                tids=cycle_tids,
                resources=resources,
            ),
        )

    def _check_starvation(self, now: int) -> list[Anomaly]:
        found: list[Anomaly] = []
        for task in self.kernel.live_tasks():
            if task.state in (TaskState.SUSPENDED, TaskState.SLEEPING):
                continue  # waiting there is intended, not starvation
            age = now - task.last_progress
            if age <= self.config.progress_window:
                continue
            found.extend(
                self._emit_once(
                    ("starvation", task.tid),
                    Anomaly(
                        kind=AnomalyKind.STARVATION,
                        detected_at=now,
                        description=(
                            f"task {task.tid} ({task.name}) made no progress "
                            f"for {age} ticks in state {task.state.value}"
                        ),
                        tids=(task.tid,),
                    ),
                )
            )
        return found

    def wait_for_dot(self) -> str:
        """Render the current wait-for graph as Graphviz DOT.

        Included in bug reports so a deadlock's cycle can be *seen*;
        nodes are task names, edges are labelled with the contested
        resource.
        """
        lines = ["digraph wait_for {", "  rankdir=LR;"]
        tids = set()
        edges = self.kernel.wait_for_edges()
        for waiter, owner, _resource in edges:
            tids.update((waiter, owner))
        for tid in sorted(tids):
            task = self.kernel.tasks.get(tid)
            label = task.name if task is not None else f"tid{tid}"
            state = task.state.value if task is not None else "gone"
            lines.append(f'  t{tid} [label="{label}\\n({state})"];')
        for waiter, owner, resource in edges:
            lines.append(f'  t{waiter} -> t{owner} [label="{resource}"];')
        lines.append("}")
        return "\n".join(lines)

    def _check_hang(self, now: int) -> list[Anomaly]:
        age = self.bridge.oldest_outstanding_age()
        if age is None or age <= self.config.reply_timeout:
            return []
        pending = sorted(self.bridge.outstanding)
        return self._emit_once(
            ("hang", pending[0] if pending else -1),
            Anomaly(
                kind=AnomalyKind.HANG,
                detected_at=now,
                description=(
                    f"command seq {pending[0] if pending else '?'} unanswered "
                    f"for {age} ticks ({len(pending)} outstanding)"
                ),
            ),
        )
