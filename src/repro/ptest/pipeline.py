"""Composable refinement pipelines: staged ``RefinePolicy`` schedules.

A single :class:`~repro.ptest.adaptive.RefinePolicy` steers every round
of an :class:`~repro.ptest.adaptive.AdaptiveCampaign` the same way.
Real campaigns want *schedules*: explore a parameter grid first, then
switch strategy once the interesting region is found.  This module
composes existing policies into such schedules without touching the
engine — a :class:`PolicyPipeline` is itself a ``RefinePolicy``, so it
drops into ``AdaptiveCampaign(policy=...)`` (and therefore the warm
worker pool, the determinism contract and the telemetry) unchanged.

A pipeline is a sequence of :class:`PipelineStage` values.  Each stage
wraps one policy and ends when *any* of its limits trips:

* ``rounds=n`` — the stage has consumed ``n`` executed rounds;
* ``until=...`` — a :class:`StageCondition` over the stage's observed
  :class:`~repro.ptest.adaptive.RoundObservation` history says stop
  (:class:`Until` adapts a plain predicate over the latest observation;
  :class:`Plateau` stops once detections stop improving);
* the stage's own policy returns no variants (it converged).

When a stage ends, the *next* stage's policy refines the same
observation to produce the following round — so a zoom stage's final
detections seed the replay stage directly.  A stage whose policy finds
nothing to do (say, ``ReplayFocus`` with zero detections) is skipped;
when no stage remains the pipeline returns ``None`` and the campaign
stops, exactly like any other policy.

Example — zoom for three rounds, then replay the survivors' detecting
interleavings once detections plateau::

    from repro.ptest.adaptive import AdaptiveCampaign, GridZoom, ReplayFocus
    from repro.ptest.pipeline import PipelineStage, Plateau, PolicyPipeline

    pipeline = PolicyPipeline(
        (
            PipelineStage(GridZoom(), rounds=3, until=Plateau(rounds=2)),
            PipelineStage(ReplayFocus(ops=("cyclic",)), rounds=2),
        )
    )
    campaign = AdaptiveCampaign(
        seeds=(0, 1, 2),
        rounds=pipeline.total_rounds(),
        policy=pipeline,
        workers=4,
    )
    campaign.add_grid(
        "phil", "philosophers", {"ordered": [False, True], "chunk": [1, 2]}
    )
    result = campaign.run()  # rounds 1-3 zoom, rounds 4-5 replay

**Determinism.**  A pipeline's only state is schedule progress (which
stage is active, what it has observed); given the same observation
sequence it emits the same variants, so the adaptive campaign's
bit-identical-rounds contract extends to composed schedules at any
``(workers, batch_size, warm/cold, prewarm on/off)`` configuration.
The progress state resets whenever a round-0 observation arrives, so
one pipeline instance can drive consecutive runs; stage conditions are
pure functions of the history handed to them and hold no state at all.
The same two properties make checkpoint *resume* work without
persisting any pipeline state: ``AdaptiveCampaign(checkpoint=...,
resume=True)`` replays the stored observations through :meth:`refine`
in order, and the schedule position, per-stage history and
``stage_log`` come out exactly as the original rounds left them.

:func:`parse_pipeline` builds a pipeline from the CLI's compact
``"grid_zoom:3,replay:2"`` spelling (``repro adapt --pipeline ...``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.errors import ConfigError
from repro.ptest.adaptive import POLICIES, RefinePolicy, RoundObservation
from repro.ptest.executor import ScenarioBuilder


@runtime_checkable
class StageCondition(Protocol):
    """Decides whether a pipeline stage is finished.

    ``history`` is the sequence of observations the *current stage* has
    consumed so far, oldest first (never empty when called).
    Implementations must be pure functions of that history — that is
    what keeps composed schedules inside the campaign determinism
    contract.
    """

    def met(self, history: Sequence[RoundObservation]) -> bool:
        """Whether the stage should hand over after ``history[-1]``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class Until:
    """Stage stop condition from a plain observation predicate.

    ``predicate`` sees the stage's latest
    :class:`~repro.ptest.adaptive.RoundObservation`; the stage ends on
    the first round for which it returns true::

        # leave the zoom stage as soon as a round finds any deadlock
        PipelineStage(
            GridZoom(),
            until=Until(lambda obs: "deadlock" in obs.kind_counts()),
        )
    """

    predicate: Callable[[RoundObservation], bool]

    def __post_init__(self) -> None:
        if not callable(self.predicate):
            raise ConfigError(
                f"Until needs a callable predicate over RoundObservation, "
                f"got {type(self.predicate).__name__}"
            )

    def met(self, history: Sequence[RoundObservation]) -> bool:
        return bool(self.predicate(history[-1]))


@dataclass(frozen=True)
class Plateau:
    """Stage stop condition: detections stopped improving.

    Met once the stage's last ``rounds`` observations all failed to
    beat the best total detection count seen earlier in the stage — the
    classic "switch strategy once this one plateaus" trigger.  Needs at
    least ``rounds + 1`` observed rounds before it can trip, so a stage
    always gets a baseline round first.
    """

    rounds: int = 2

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigError(
                f"Plateau rounds must be >= 1, got {self.rounds}"
            )

    def met(self, history: Sequence[RoundObservation]) -> bool:
        totals = [observation.total_detections for observation in history]
        if len(totals) <= self.rounds:
            return False
        return max(totals[-self.rounds :]) <= max(totals[: -self.rounds])


@dataclass(frozen=True)
class PipelineStage:
    """One stage of a :class:`PolicyPipeline`.

    ``policy`` steers the rounds this stage owns.  ``rounds`` caps how
    many executed rounds the stage consumes; ``until`` is a
    :class:`StageCondition` ending it early.  At least one bound is
    required for every stage but the last (an unbounded non-final stage
    would starve its successors); the final stage may run unbounded
    under the campaign's own ``rounds`` budget.  ``name`` labels the
    stage in logs (defaults to the policy class name).
    """

    policy: RefinePolicy
    rounds: int | None = None
    until: StageCondition | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, RefinePolicy):
            raise ConfigError(
                f"PipelineStage.policy needs a refine(observation) "
                f"method; got {type(self.policy).__name__}"
            )
        if self.rounds is not None and self.rounds < 1:
            raise ConfigError(
                f"PipelineStage rounds must be >= 1, got {self.rounds}"
            )
        if self.until is not None and not isinstance(
            self.until, StageCondition
        ):
            raise ConfigError(
                f"PipelineStage.until needs a met(history) method; "
                f"got {type(self.until).__name__}"
            )

    @property
    def label(self) -> str:
        """Log/CLI display name of this stage."""
        return self.name or type(self.policy).__name__

    def describe(self) -> str:
        bound = f":{self.rounds}" if self.rounds is not None else ""
        return f"{self.label}{bound}"


class PolicyPipeline:
    """Runs :class:`PipelineStage` policies as one composed schedule.

    Satisfies the :class:`~repro.ptest.adaptive.RefinePolicy` protocol,
    so it drives an :class:`~repro.ptest.adaptive.AdaptiveCampaign`
    exactly like a single policy does — rounds, warm-pool reuse,
    pre-warming and telemetry all unchanged.  See the module docstring
    for stage-transition semantics and a worked example.

    ``stage_log`` records, per consumed observation, which stage's
    round it was — ``[(round_index, stage_label), ...]`` — so a run can
    be audited stage by stage afterwards.
    """

    def __init__(self, stages: Sequence[PipelineStage]):
        stages = tuple(stages)
        if not stages:
            raise ConfigError("PolicyPipeline needs at least one stage")
        for position, stage in enumerate(stages):
            if not isinstance(stage, PipelineStage):
                raise ConfigError(
                    f"PolicyPipeline stages must be PipelineStage values, "
                    f"got {type(stage).__name__} at position {position}"
                )
            final = position == len(stages) - 1
            if not final and stage.rounds is None and stage.until is None:
                raise ConfigError(
                    f"stage {stage.describe()!r} (position {position}) has "
                    "no rounds cap and no until condition; every stage "
                    "before the last needs one, or later stages never run"
                )
        self.stages = stages
        self._reset()

    def _reset(self) -> None:
        self._stage_index = 0
        #: Observations consumed by the current stage, oldest first.
        self._history: list[RoundObservation] = []
        self._next_round = 0
        self.stage_log: list[tuple[int, str]] = []

    @property
    def current_stage(self) -> PipelineStage | None:
        """The stage that owns the next observation (``None`` when the
        schedule is exhausted)."""
        if self._stage_index >= len(self.stages):
            return None
        return self.stages[self._stage_index]

    def total_rounds(self) -> int | None:
        """Executed rounds a full schedule needs: the sum of the stage
        round caps, or ``None`` when any stage is unbounded.  Feed it
        to ``AdaptiveCampaign(rounds=...)`` so the campaign budget and
        the schedule agree."""
        total = 0
        for stage in self.stages:
            if stage.rounds is None:
                return None
            total += stage.rounds
        return total

    def describe(self) -> str:
        return " -> ".join(stage.describe() for stage in self.stages)

    def refine(
        self, observation: RoundObservation
    ) -> Mapping[str, ScenarioBuilder] | None:
        """Consume one round's observation; emit the next round's
        variants (``None`` ends the campaign: schedule exhausted)."""
        if observation.index == 0 or observation.index != self._next_round:
            # A round-0 observation means a fresh campaign run started;
            # an out-of-sequence index means the caller is driving the
            # policy by hand.  Either way the schedule starts over.
            self._reset()
        self._next_round = observation.index + 1
        if self._stage_index >= len(self.stages):
            return None  # exhausted on an earlier call; stay stopped
        stage = self.stages[self._stage_index]
        self._history.append(observation)
        self.stage_log.append((observation.index, stage.label))
        done = (
            stage.rounds is not None
            and len(self._history) >= stage.rounds
        )
        if not done and stage.until is not None:
            done = stage.until.met(tuple(self._history))
        if not done:
            refined = stage.policy.refine(observation)
            if refined:
                return refined
            done = True  # the stage's own policy converged: hand over
        # The stage is finished.  Later stages refine the same
        # observation in order; the first to produce variants takes
        # over (a stage with nothing to do — no detections to replay,
        # say — is skipped), and an empty remainder stops the campaign.
        while True:
            self._stage_index += 1
            self._history = []
            if self._stage_index >= len(self.stages):
                return None
            refined = self.stages[self._stage_index].policy.refine(
                observation
            )
            if refined:
                return refined


def parse_pipeline(
    spec: str,
    policy_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
) -> PolicyPipeline:
    """Build a pipeline from the CLI spelling ``"name:rounds,..."``.

    Each comma-separated entry is ``policy:rounds`` with ``policy`` a
    :data:`~repro.ptest.adaptive.POLICIES` key; ``:rounds`` may be
    omitted on the final entry only (that stage then runs unbounded
    under the campaign's ``rounds`` budget).  ``policy_kwargs`` maps
    policy names to constructor keyword arguments (the CLI routes
    ``--max-sources`` to ``replay`` stages this way).  Unknown policy
    names raise :class:`~repro.errors.ConfigError` listing the
    registry, same as ``repro adapt --policy``.
    """
    entries = [entry.strip() for entry in spec.split(",") if entry.strip()]
    if not entries:
        raise ConfigError(
            f"empty pipeline spec {spec!r}; expected "
            '"policy:rounds,..." e.g. "grid_zoom:3,replay:2"'
        )
    stages = []
    for position, entry in enumerate(entries):
        name, sep, rounds_text = entry.partition(":")
        name = name.strip()
        factory = POLICIES.get(name)
        if factory is None:
            raise ConfigError(
                f"unknown pipeline policy {name!r}; "
                f"known policies: {', '.join(sorted(POLICIES))}"
            )
        rounds: int | None = None
        if sep:
            try:
                rounds = int(rounds_text)
            except ValueError:
                raise ConfigError(
                    f"pipeline stage {entry!r}: rounds must be an "
                    f"integer, got {rounds_text!r}"
                ) from None
            if rounds < 1:
                raise ConfigError(
                    f"pipeline stage {entry!r}: rounds must be >= 1"
                )
        elif position != len(entries) - 1:
            raise ConfigError(
                f"pipeline stage {entry!r} has no round count; only the "
                "final stage may omit :rounds"
            )
        kwargs = dict((policy_kwargs or {}).get(name, {}))
        stages.append(
            PipelineStage(policy=factory(**kwargs), rounds=rounds, name=name)
        )
    return PolicyPipeline(stages)
