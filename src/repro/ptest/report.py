"""Bug reports: what the detector dumps when a failure is found.

"When the potential system failures have been detected, the bug detector
dumps the related information to help users reproduce the bugs."  A
:class:`BugReport` carries everything a re-run needs: the full config
(with its master seed), the merged pattern and how far it got, the
Definition 2 state records, a task dump, and the trace tail.  Because
every component is deterministic under the config's seed, replaying the
config re-finds the same anomaly — tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ptest.config import PTestConfig
from repro.ptest.detector import Anomaly
from repro.ptest.recording import StateRecord


@dataclass
class BugReport:
    """The reproduction bundle for one detected failure."""

    config: PTestConfig
    anomalies: list[Anomaly]
    found_at: int
    commands_issued: int
    merged_position: int
    merged_length: int
    merged_op: str
    #: The interleaved pattern, rendered (``TC[p0#1] TC[p1#1] ...``).
    merged_description: str
    state_records: list[StateRecord] = field(default_factory=list)
    task_dump: list[str] = field(default_factory=list)
    trace_tail: list[dict] = field(default_factory=list)
    kernel_panic: str | None = None
    #: Graphviz DOT of the wait-for graph at detection time.
    wait_for_dot: str = ""

    @property
    def primary(self) -> Anomaly:
        return self.anomalies[0]

    def describe(self) -> str:
        """Multi-line human-readable dump (what pTest prints on a find)."""
        lines = [
            f"pTest bug report @ tick {self.found_at}",
            f"  config: {self.config.describe()}",
            f"  merged pattern ({self.merged_op}): position "
            f"{self.merged_position}/{self.merged_length}",
        ]
        for anomaly in self.anomalies:
            lines.append(f"  anomaly: {anomaly.describe()}")
        if self.kernel_panic:
            lines.append(f"  kernel panic: {self.kernel_panic}")
        if self.state_records:
            lines.append("  state records (Definition 2):")
            for record in self.state_records:
                lines.append(f"    {record.describe()}")
        if self.task_dump:
            lines.append("  slave tasks:")
            for entry in self.task_dump:
                lines.append(f"    {entry}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Serialisable form (drops the live config object details that
        matter only in-process)."""
        return {
            "found_at": self.found_at,
            "seed": self.config.seed,
            "op": self.merged_op,
            "n": self.config.pattern_count,
            "s": self.config.pattern_size,
            "commands_issued": self.commands_issued,
            "merged_position": self.merged_position,
            "merged_length": self.merged_length,
            "merged_pattern": self.merged_description,
            "anomalies": [
                {
                    "kind": anomaly.kind.value,
                    "detected_at": anomaly.detected_at,
                    "description": anomaly.description,
                    "tids": list(anomaly.tids),
                    "resources": list(anomaly.resources),
                }
                for anomaly in self.anomalies
            ],
            "kernel_panic": self.kernel_panic,
            "state_records": [record.describe() for record in self.state_records],
            "task_dump": list(self.task_dump),
            "trace_tail": self.trace_tail,
            "wait_for_dot": self.wait_for_dot,
        }
