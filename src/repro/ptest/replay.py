"""Replaying serialized bug reports.

A :class:`~repro.ptest.report.BugReport` serialises to a plain dict
(``to_dict``), including the merged pattern rendered as
``"TC[p0#1] TS[p0#2] ..."``.  This module parses that rendering back
into a :class:`~repro.ptest.patterns.MergedPattern` and re-runs it with
``merged_override`` — so a bug found yesterday and saved as JSON can be
re-triggered today without the original process.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping

from repro.errors import ConfigError
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest, TestRunResult
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern

_COMMAND_RE = re.compile(r"^(?P<symbol>[A-Za-z0-9_]+)\[p(?P<pair>\d+)#(?P<seq>\d+)\]$")


def parse_merged_description(text: str) -> MergedPattern:
    """Parse ``"TC[p0#1] TC[p1#1] ..."`` back into a merged pattern."""
    commands: list[PatternCommand] = []
    per_pair: dict[int, list[str]] = {}
    for position, token in enumerate(text.split()):
        match = _COMMAND_RE.match(token)
        if match is None:
            raise ConfigError(f"unparseable merged-pattern token {token!r}")
        symbol = match.group("symbol")
        pair = int(match.group("pair"))
        sequence = int(match.group("seq"))
        expected = len(per_pair.setdefault(pair, [])) + 1
        if sequence != expected:
            raise ConfigError(
                f"token {token!r}: expected sequence {expected} for pair "
                f"{pair}, got {sequence}"
            )
        per_pair[pair].append(symbol)
        commands.append(
            PatternCommand(
                symbol=symbol,
                pattern_id=pair,
                sequence_in_pattern=sequence,
                position=position,
            )
        )
    sources = [
        TestPattern(pattern_id=pair, symbols=tuple(symbols))
        for pair, symbols in sorted(per_pair.items())
    ]
    merged = MergedPattern(commands=commands, op="replayed", sources=sources)
    merged.validate()
    return merged


def replay_report_dict(
    report_dict: dict,
    config: PTestConfig,
    programs: Mapping[str, TaskProgram] | None = None,
    setup: Callable[[PCoreKernel], None] | None = None,
) -> TestRunResult:
    """Re-run the exact merged pattern a serialized report recorded.

    ``config`` supplies the platform (kernel switches, detector
    thresholds, seed) — everything the dict's scalar fields cannot carry
    as live objects; its seed is overridden from the dict so the replay
    matches the original run's randomness.
    """
    merged = parse_merged_description(report_dict["merged_pattern"])
    seeded = config.with_seed(int(report_dict["seed"]))
    return AdaptiveTest(
        config=seeded,
        programs=programs or {},
        setup=setup,
        merged_override=merged,
    ).run()
