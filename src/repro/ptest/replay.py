"""Replaying serialized bug reports and portable merged-pattern refs.

A :class:`~repro.ptest.report.BugReport` serialises to a plain dict
(``to_dict``), including the merged pattern rendered as
``"TC[p0#1] TS[p0#2] ..."``.  This module parses that rendering back
into a :class:`~repro.ptest.patterns.MergedPattern` and re-runs it with
``merged_override`` — so a bug found yesterday and saved as JSON can be
re-triggered today without the original process.

:class:`ReplayRef` is the *campaign-grade* form of the same idea: a
picklable ``(scenario ref, merged description)`` value object that is a
:class:`~repro.ptest.executor.ScenarioBuilder`, so recorded
interleavings ride the executor's deduped batch-table wire format and
the worker-side caches exactly like registry scenarios do (see
:mod:`repro.ptest.pool`).  The adaptive campaign's ``ReplayFocus``
policy emits these to re-drive detecting interleavings across seeds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ConfigError
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest, TestRunResult
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern
from repro.workloads.registry import ScenarioRef

_COMMAND_RE = re.compile(r"^(?P<symbol>[A-Za-z0-9_]+)\[p(?P<pair>\d+)#(?P<seq>\d+)\]$")


def parse_merged_description(text: str) -> MergedPattern:
    """Parse ``"TC[p0#1] TC[p1#1] ..."`` back into a merged pattern."""
    commands: list[PatternCommand] = []
    per_pair: dict[int, list[str]] = {}
    for position, token in enumerate(text.split()):
        match = _COMMAND_RE.match(token)
        if match is None:
            raise ConfigError(f"unparseable merged-pattern token {token!r}")
        symbol = match.group("symbol")
        pair = int(match.group("pair"))
        sequence = int(match.group("seq"))
        expected = len(per_pair.setdefault(pair, [])) + 1
        if sequence != expected:
            raise ConfigError(
                f"token {token!r}: expected sequence {expected} for pair "
                f"{pair}, got {sequence}"
            )
        per_pair[pair].append(symbol)
        commands.append(
            PatternCommand(
                symbol=symbol,
                pattern_id=pair,
                sequence_in_pattern=sequence,
                position=position,
            )
        )
    sources = [
        TestPattern(pattern_id=pair, symbols=tuple(symbols))
        for pair, symbols in sorted(per_pair.items())
    ]
    merged = MergedPattern(commands=commands, op="replayed", sources=sources)
    merged.validate()
    return merged


@dataclass(frozen=True)
class ReplayRef:
    """A picklable merged-pattern replay cell.

    ``scenario`` names the base workload (platform config, programs,
    setup hook) through the registry; ``description`` is a merged
    pattern rendered by :meth:`MergedPattern.describe` — both plain
    values, so a replay ref crosses a process boundary as cheaply as a
    :class:`~repro.workloads.registry.ScenarioRef` does.  Calling the
    ref with a seed builds the base scenario for that seed and replays
    exactly the recorded interleaving over it via ``merged_override``
    (generation and merging are skipped; the seed still drives noise,
    platform and detector randomness), so one recorded interleaving can
    be swept across seeds like any other campaign variant.

    Refs are value objects — equality/hash cover ``(scenario,
    description)`` — so equal replay cells collapse to one batch-table
    entry and one worker-cache slot (:attr:`cache_key`), with the
    parsed :class:`~repro.ptest.patterns.MergedPattern` memoized
    per worker alongside the resolved base scenario.  The description
    is validated at construction, not first dispatch, so a malformed
    rendering fails in the process that minted it.
    """

    scenario: ScenarioRef
    description: str
    #: Parsed eagerly in the minting process (validation), lazily after
    #: unpickling — a worker parses only on a cache miss, so N batches
    #: carrying the same ref cost one parse per worker, not per batch.
    _merged: MergedPattern | None = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not isinstance(self.scenario, ScenarioRef):
            raise ConfigError(
                f"ReplayRef.scenario must be a ScenarioRef, got "
                f"{type(self.scenario).__name__}"
            )
        object.__setattr__(
            self, "_merged", parse_merged_description(self.description)
        )

    def __getstate__(self) -> tuple[ScenarioRef, str]:
        return (self.scenario, self.description)

    def __setstate__(self, state: tuple[ScenarioRef, str]) -> None:
        object.__setattr__(self, "scenario", state[0])
        object.__setattr__(self, "description", state[1])
        object.__setattr__(self, "_merged", None)

    @property
    def cache_key(self) -> tuple:
        """Worker-cache key; disjoint from plain ScenarioRef keys."""
        return ("replay", self.scenario.cache_key, self.description)

    @property
    def portable(self) -> bool:
        """Whether workers can resolve this ref (default registry)."""
        return self.scenario.registry is None

    def merged(self) -> MergedPattern:
        """The recorded interleaving, parsed (and memoized) on demand."""
        if self._merged is None:
            object.__setattr__(
                self, "_merged", parse_merged_description(self.description)
            )
        return self._merged

    def __call__(self, seed: int) -> AdaptiveTest:
        test = self.scenario(seed)
        if not isinstance(test, AdaptiveTest):
            raise ConfigError(
                f"scenario {self.scenario.describe()} builds "
                f"{type(test).__name__}, not an AdaptiveTest; merged-"
                "pattern replay needs the adaptive harness"
            )
        test.merged_override = self.merged()
        return test

    def describe(self) -> str:
        return f"replay({self.scenario.describe()}, {self.description!r})"


def replay_ref(
    scenario: ScenarioRef, merged: MergedPattern | str
) -> ReplayRef:
    """Build a :class:`ReplayRef` from a live merged pattern or its
    rendered description."""
    description = (
        merged if isinstance(merged, str) else merged.describe()
    )
    return ReplayRef(scenario=scenario, description=description)


def replay_report_dict(
    report_dict: dict,
    config: PTestConfig,
    programs: Mapping[str, TaskProgram] | None = None,
    setup: Callable[[PCoreKernel], None] | None = None,
) -> TestRunResult:
    """Re-run the exact merged pattern a serialized report recorded.

    ``config`` supplies the platform (kernel switches, detector
    thresholds, seed) — everything the dict's scalar fields cannot carry
    as live objects; its seed is overridden from the dict so the replay
    matches the original run's randomness.
    """
    merged = parse_merged_description(report_dict["merged_pattern"])
    seeded = config.with_seed(int(report_dict["seed"]))
    return AdaptiveTest(
        config=seeded,
        programs=programs or {},
        setup=setup,
        merged_override=merged,
    ).run()
