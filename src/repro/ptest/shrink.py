"""Bug-triggering pattern minimization (delta debugging).

The paper's bug detector "helps users reproduce the bugs"; a merged
pattern of hundreds of commands is reproducible but not *readable*.
This module shrinks a failing merged pattern to a minimal failing
subsequence with ddmin-style delta debugging: repeatedly drop chunks of
commands, keep the reduction whenever the same anomaly class is still
detected, and stop when no single command can be removed (1-minimal).

Dropping commands must preserve per-pattern order and sequence-number
contiguity, so removal works on *suffixes of each pair's subsequence*:
a command can only be dropped together with every later command of the
same pair.  This keeps every candidate a valid merged pattern (the
committer's TC-before-TD structure survives).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.ptest.config import PTestConfig
from repro.ptest.detector import AnomalyKind
from repro.ptest.harness import AdaptiveTest
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern


def truncate_merged(merged: MergedPattern, keep: Mapping[int, int]) -> MergedPattern:
    """Keep only the first ``keep[pair]`` commands of each pair.

    The relative interleaving of surviving commands is preserved;
    positions are renumbered; sources are truncated to match.
    """
    commands: list[PatternCommand] = []
    for command in merged.commands:
        limit = keep.get(command.pattern_id, 0)
        if command.sequence_in_pattern <= limit:
            commands.append(
                PatternCommand(
                    symbol=command.symbol,
                    pattern_id=command.pattern_id,
                    sequence_in_pattern=command.sequence_in_pattern,
                    position=len(commands),
                )
            )
    sources = [
        TestPattern(
            pattern_id=pattern.pattern_id,
            symbols=pattern.symbols[: keep.get(pattern.pattern_id, 0)],
            log_probability=0.0,
        )
        for pattern in merged.sources
    ]
    truncated = MergedPattern(
        commands=commands, op=f"{merged.op}+shrunk", sources=sources
    )
    truncated.validate()
    return truncated


@dataclass
class ShrinkResult:
    """Outcome of a shrink session."""

    original_length: int
    shrunk: MergedPattern
    runs_executed: int
    anomaly_kind: AnomalyKind

    @property
    def shrunk_length(self) -> int:
        return len(self.shrunk)

    @property
    def reduction(self) -> float:
        if self.original_length == 0:
            return 0.0
        return 1.0 - self.shrunk_length / self.original_length


@dataclass
class PatternShrinker:
    """Minimises a failing merged pattern while the anomaly persists.

    Parameters
    ----------
    config:
        The failing run's config (seed and platform are reused so the
        replay oracle is deterministic).
    programs / setup:
        The scenario's slave programs and kernel setup hook.
    target:
        The anomaly class that must survive each reduction.
    max_runs:
        Replay budget; shrinking stops (returning the best-so-far) when
        exhausted.
    """

    config: PTestConfig
    target: AnomalyKind
    programs: Mapping[str, TaskProgram] = field(default_factory=dict)
    setup: Callable[[PCoreKernel], None] | None = None
    max_runs: int = 200
    runs_executed: int = 0

    def _still_fails(self, candidate: MergedPattern) -> bool:
        if not len(candidate):
            return False
        self.runs_executed += 1
        result = AdaptiveTest(
            config=self.config,
            programs=self.programs,
            setup=self.setup,
            merged_override=candidate,
        ).run()
        return (
            result.found_bug
            and result.report.primary.kind is self.target
        )

    def shrink(self, merged: MergedPattern) -> ShrinkResult:
        """ddmin over per-pair suffix lengths."""
        lengths = {
            pattern.pattern_id: len(pattern) for pattern in merged.sources
        }
        best = dict(lengths)
        improved = True
        while improved and self.runs_executed < self.max_runs:
            improved = False
            # Phase 1: halve each pair's tail while it still fails.
            for pair_id in sorted(best):
                while best[pair_id] > 0 and self.runs_executed < self.max_runs:
                    candidate = dict(best)
                    candidate[pair_id] = best[pair_id] // 2
                    if self._still_fails(truncate_merged(merged, candidate)):
                        best = candidate
                        improved = True
                    else:
                        break
            # Phase 2: 1-minimality — drop single trailing commands.
            for pair_id in sorted(best):
                while best[pair_id] > 0 and self.runs_executed < self.max_runs:
                    candidate = dict(best)
                    candidate[pair_id] = best[pair_id] - 1
                    if self._still_fails(truncate_merged(merged, candidate)):
                        best = candidate
                        improved = True
                    else:
                        break
        return ShrinkResult(
            original_length=len(merged),
            shrunk=truncate_merged(merged, best),
            runs_executed=self.runs_executed,
            anomaly_kind=self.target,
        )
