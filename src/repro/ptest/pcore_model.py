"""The pCore task-behaviour model of Section IV-A.

RE (2) of the paper::

    RE = TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)

and the PFA of Fig. 5.  The figure labels thirteen edges ``a`` .. ``m``
with probabilities; the text does not spell out every edge's endpoints,
but the row-stochasticity requirement (Eq. (1)) pins the grouping down
uniquely: the four probabilities {0.6, 0.1, 0.1, 0.2} leaving TC, the
four {0.6, 0.2, 0.1, 0.1} leaving TCH, the single 1.0 edge TS->TR, and
the four {0.1, 0.4, 0.3, 0.2} leaving TR (each group sums to one).  The
assignment used here:

====== ===== ====== =====
edge   from  to     prob
====== ===== ====== =====
(init) start TC     1.0
a      TC    TCH    0.6
b      TC    TS     0.1
c      TC    TY     0.1
d      TC    TD     0.2
e      TS    TR     1.0
f      TCH   TCH    0.6
g      TCH   TS     0.2
h      TCH   TD     0.1
i      TCH   TY     0.1
j      TR    TS     0.1
k      TR    TCH    0.4
l      TR    TD     0.3
m      TR    TY     0.2
====== ===== ====== =====

Note Fig. 5's PFA is *not* the minimal DFA of RE (2): TC and TCH are
Myhill-Nerode equivalent but carry different probability rows, which is
why the generator keeps the unminimised automaton by default.
"""

from __future__ import annotations

from repro.automata.pfa import PFA, Transition

#: RE (2), written with explicit spaces (the tokenizer also accepts the
#: paper's juxtaposed ``TSTR`` form when given the alphabet).
PCORE_REGULAR_EXPRESSION = "TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)"

#: The Table I service abbreviations, i.e. the PFA alphabet.
PCORE_SERVICES: tuple[str, ...] = ("TC", "TD", "TS", "TR", "TCH", "TY")

#: State ids of the hand-built Fig. 5 PFA.
START, S_TC, S_TCH, S_TS, S_TR, S_TD, S_TY = range(7)

_STATE_LABELS = {
    START: "start",
    S_TC: "TC",
    S_TCH: "TCH",
    S_TS: "TS",
    S_TR: "TR",
    S_TD: "TD",
    S_TY: "TY",
}

#: The thirteen labelled edges plus the initial arc, as in Fig. 5.
PCORE_EDGES: tuple[tuple[int, str, int, float], ...] = (
    (START, "TC", S_TC, 1.0),
    (S_TC, "TCH", S_TCH, 0.6),   # a
    (S_TC, "TS", S_TS, 0.1),     # b
    (S_TC, "TY", S_TY, 0.1),     # c
    (S_TC, "TD", S_TD, 0.2),     # d
    (S_TS, "TR", S_TR, 1.0),     # e
    (S_TCH, "TCH", S_TCH, 0.6),  # f
    (S_TCH, "TS", S_TS, 0.2),    # g
    (S_TCH, "TD", S_TD, 0.1),    # h
    (S_TCH, "TY", S_TY, 0.1),    # i
    (S_TR, "TS", S_TS, 0.1),     # j
    (S_TR, "TCH", S_TCH, 0.4),   # k
    (S_TR, "TD", S_TD, 0.3),     # l
    (S_TR, "TY", S_TY, 0.2),     # m
)


def pcore_pfa() -> PFA:
    """Build the exact Fig. 5 PFA (seven states, paper probabilities)."""
    transitions: dict[int, dict[str, Transition]] = {}
    for source, symbol, target, probability in PCORE_EDGES:
        transitions.setdefault(source, {})[symbol] = Transition(
            source=source, symbol=symbol, target=target, probability=probability
        )
    return PFA(
        num_states=7,
        alphabet=frozenset(PCORE_SERVICES),
        transitions=transitions,
        start=START,
        accepts=frozenset({S_TD, S_TY}),
        state_labels=dict(_STATE_LABELS),
    )


def pcore_distribution() -> dict[tuple[str, str], float]:
    """The Fig. 5 probabilities keyed by ``(state_label, symbol)`` — the
    form :func:`repro.ptest.generator.resolve_label_distribution` takes."""
    return {
        (_STATE_LABELS[source], symbol): probability
        for source, symbol, _target, probability in PCORE_EDGES
    }


def uniform_pcore_pfa() -> PFA:
    """The same structure with uniform rows — the "user knows nothing"
    baseline of the distribution-sensitivity experiment (E8)."""
    rows: dict[int, list[tuple[str, int]]] = {}
    for source, symbol, target, _probability in PCORE_EDGES:
        rows.setdefault(source, []).append((symbol, target))
    transitions: dict[int, dict[str, Transition]] = {}
    for source, arcs in rows.items():
        share = 1.0 / len(arcs)
        for symbol, target in arcs:
            transitions.setdefault(source, {})[symbol] = Transition(
                source=source, symbol=symbol, target=target, probability=share
            )
    return PFA(
        num_states=7,
        alphabet=frozenset(PCORE_SERVICES),
        transitions=transitions,
        start=START,
        accepts=frozenset({S_TD, S_TY}),
        state_labels=dict(_STATE_LABELS),
    )


def reweighted_pcore_pfa(
    weights: dict[tuple[str, str], float]
) -> PFA:
    """Fig. 5 structure with custom ``(state_label, symbol)`` weights,
    normalised per state.  Weights must cover exactly the existing arcs'
    rows they mention; unmentioned rows stay at the paper's values."""
    base = {
        (source, symbol): probability
        for source, symbol, _target, probability in PCORE_EDGES
    }
    label_to_state = {label: state for state, label in _STATE_LABELS.items()}
    overrides: dict[tuple[int, str], float] = {}
    for (label, symbol), weight in weights.items():
        overrides[(label_to_state[label], symbol)] = weight
    touched_states = {state for state, _symbol in overrides}
    rows: dict[int, dict[str, tuple[int, float]]] = {}
    for source, symbol, target, probability in PCORE_EDGES:
        weight = overrides.get((source, symbol), probability)
        if source in touched_states and (source, symbol) not in overrides:
            weight = probability
        rows.setdefault(source, {})[symbol] = (target, weight)
    transitions: dict[int, dict[str, Transition]] = {}
    for source, arcs in rows.items():
        total = sum(weight for _target, weight in arcs.values())
        for symbol, (target, weight) in arcs.items():
            transitions.setdefault(source, {})[symbol] = Transition(
                source=source,
                symbol=symbol,
                target=target,
                probability=weight / total,
            )
    return PFA(
        num_states=7,
        alphabet=frozenset(PCORE_SERVICES),
        transitions=transitions,
        start=START,
        accepts=frozenset({S_TD, S_TY}),
        state_labels=dict(_STATE_LABELS),
    )
