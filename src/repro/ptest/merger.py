"""The pattern merger (Algorithm 1's ``op`` parameter).

"The pattern merger extracts subsequences from each test pattern ... and
then systematically merges all subsequences into one final test pattern
... It is similar to a process scheduler."  Each merge *op* is a policy
for choosing which pattern contributes its next symbol(s):

``round_robin``
    One symbol from each live pattern in turn — a fair scheduler.
``random``
    A seeded uniform choice among live patterns each step — ConTest-style
    noise at the pattern level.
``cyclic``
    Chunks of ``chunk`` symbols from each pattern in a fixed rotation —
    "forced these tasks to complete several set of cyclic execution
    sequences", the op that drives test case 2's dining philosophers
    into the deadlock cycle.
``burst``
    Whole patterns back to back — the degenerate scheduler; useful as a
    control showing interleaving (not load alone) finds concurrency
    faults.
``weighted``
    Like ``random`` but biased towards the patterns with the most
    remaining symbols, keeping pair progress balanced.

Custom policies register via :func:`register_merge_op`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.errors import ConfigError
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern


class MergePolicy(Protocol):
    """A merge op: repeatedly pick the pattern index to advance."""

    def __call__(
        self,
        remaining: list[int],
        cursor: dict[int, int],
        rng: random.Random,
        chunk: int,
    ) -> list[int]:
        """Return the full order of pattern ids (one entry per emitted
        symbol).  ``remaining`` maps position->pattern_id of live
        patterns; implementations below generate the order directly."""
        ...  # pragma: no cover - protocol


def _order_round_robin(patterns: list[TestPattern], rng: random.Random, chunk: int) -> list[int]:
    del rng, chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    ids = [p.pattern_id for p in patterns]
    while any(left[i] > 0 for i in ids):
        for pattern_id in ids:
            if left[pattern_id] > 0:
                order.append(pattern_id)
                left[pattern_id] -= 1
    return order


def _order_random(patterns: list[TestPattern], rng: random.Random, chunk: int) -> list[int]:
    del chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    live = [p.pattern_id for p in patterns if len(p) > 0]
    while live:
        pattern_id = rng.choice(live)
        order.append(pattern_id)
        left[pattern_id] -= 1
        if left[pattern_id] == 0:
            live.remove(pattern_id)
    return order


def _order_cyclic(patterns: list[TestPattern], rng: random.Random, chunk: int) -> list[int]:
    del rng
    if chunk < 1:
        raise ConfigError(f"cyclic chunk must be >= 1, got {chunk}")
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    ids = [p.pattern_id for p in patterns]
    while any(left[i] > 0 for i in ids):
        for pattern_id in ids:
            take = min(chunk, left[pattern_id])
            order.extend([pattern_id] * take)
            left[pattern_id] -= take
    return order


def _order_burst(patterns: list[TestPattern], rng: random.Random, chunk: int) -> list[int]:
    del rng, chunk
    order: list[int] = []
    for pattern in patterns:
        order.extend([pattern.pattern_id] * len(pattern))
    return order


def _order_weighted(patterns: list[TestPattern], rng: random.Random, chunk: int) -> list[int]:
    del chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    while True:
        live = [(i, n) for i, n in left.items() if n > 0]
        if not live:
            return order
        total = sum(n for _i, n in live)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = live[-1][0]
        for pattern_id, weight in live:
            cumulative += weight
            if pick < cumulative:
                chosen = pattern_id
                break
        order.append(chosen)
        left[chosen] -= 1


OrderFunction = Callable[[list[TestPattern], random.Random, int], list[int]]

MERGE_OPS: dict[str, OrderFunction] = {
    "round_robin": _order_round_robin,
    "random": _order_random,
    "cyclic": _order_cyclic,
    "burst": _order_burst,
    "weighted": _order_weighted,
}


def register_merge_op(name: str, order_function: OrderFunction) -> None:
    """Add a custom merge policy usable by name in configs."""
    if name in MERGE_OPS:
        raise ConfigError(f"merge op {name!r} already registered")
    MERGE_OPS[name] = order_function


@dataclass
class PatternMerger:
    """Merges *n* test patterns into one interleaved pattern.

    Parameters
    ----------
    op:
        Name of the merge policy (key of :data:`MERGE_OPS`).
    seed:
        RNG seed for stochastic policies.
    chunk:
        Subsequence length for the ``cyclic`` policy.
    """

    op: str = "round_robin"
    seed: int | None = None
    chunk: int = 2

    def __post_init__(self) -> None:
        if self.op not in MERGE_OPS:
            raise ConfigError(
                f"unknown merge op {self.op!r}; known: {sorted(MERGE_OPS)}"
            )

    def merge(self, patterns: list[TestPattern]) -> MergedPattern:
        """Produce the merged pattern M of Algorithm 1."""
        if not patterns:
            raise ConfigError("cannot merge an empty pattern list")
        ids = [pattern.pattern_id for pattern in patterns]
        if len(set(ids)) != len(ids):
            raise ConfigError("pattern ids must be unique")
        rng = random.Random(self.seed)
        order = MERGE_OPS[self.op](patterns, rng, self.chunk)
        by_id = {pattern.pattern_id: pattern for pattern in patterns}
        cursor = {pattern.pattern_id: 0 for pattern in patterns}
        commands: list[PatternCommand] = []
        for position, pattern_id in enumerate(order):
            pattern = by_id[pattern_id]
            index = cursor[pattern_id]
            if index >= len(pattern):
                raise ConfigError(
                    f"merge op {self.op!r} over-consumed pattern {pattern_id}"
                )
            commands.append(
                PatternCommand(
                    symbol=pattern.symbols[index],
                    pattern_id=pattern_id,
                    sequence_in_pattern=index + 1,
                    position=position,
                )
            )
            cursor[pattern_id] = index + 1
        merged = MergedPattern(commands=commands, op=self.op, sources=list(patterns))
        merged.validate()
        return merged

    def merge_symbols(
        self, symbol_lists: Sequence[Sequence[str]]
    ) -> MergedPattern:
        """Merge raw symbol sequences (pattern ids assigned by position).

        The re-merge entry point for recorded material: a run's
        ``TestRunResult.patterns`` or a parsed report's source symbols
        come back as plain tuples, and this wraps them in fresh
        :class:`TestPattern` values before merging — so an adaptive
        campaign can re-interleave yesterday's detecting patterns under
        a different op without reconstructing generator state.
        """
        patterns = [
            TestPattern(pattern_id=index, symbols=tuple(symbols))
            for index, symbols in enumerate(symbol_lists)
        ]
        return self.merge(patterns)
