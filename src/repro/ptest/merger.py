"""The pattern merger (Algorithm 1's ``op`` parameter).

"The pattern merger extracts subsequences from each test pattern ... and
then systematically merges all subsequences into one final test pattern
... It is similar to a process scheduler."  Each merge *op* is a policy
for choosing which pattern contributes its next symbol(s):

``round_robin``
    One symbol from each live pattern in turn — a fair scheduler.
``random``
    A seeded uniform choice among live patterns each step — ConTest-style
    noise at the pattern level.
``cyclic``
    Chunks of ``chunk`` symbols from each pattern in a fixed rotation —
    "forced these tasks to complete several set of cyclic execution
    sequences", the op that drives test case 2's dining philosophers
    into the deadlock cycle.
``burst``
    Whole patterns back to back — the degenerate scheduler; useful as a
    control showing interleaving (not load alone) finds concurrency
    faults.
``weighted``
    Like ``random`` but biased towards the patterns with the most
    remaining symbols, keeping pair progress balanced.

Custom policies register via :func:`register_merge_op`.

Array assembly and the RNG-order contract
-----------------------------------------

With numpy present, :meth:`PatternMerger.merge` assembles the merge on
the array plane: source patterns become interned id rows (zero-copy
when they are already array-backed ``TestPattern``\\ s sharing one
alphabet), the merge *order* becomes an index array, and the output is
an array-backed :class:`~repro.ptest.patterns.MergedPattern` built by
one fancy-indexed gather — no per-symbol ``PatternCommand`` objects
until something iterates the result.

The deterministic ops (``round_robin``/``cyclic``/``burst``) get fully
vectorized order construction.  ``random``/``weighted`` — and any
custom op registered via :func:`register_merge_op` — keep their scalar
order functions **verbatim**: the per-draw RNG-order contract (one
``rng.choice``/``rng.random()`` per emitted symbol, consumed in
emission order against a fresh ``random.Random(seed)`` per merge) is
part of the reproducibility surface, so the array path may only change
*assembly*, never the sequence of RNG draws.  Output is bit-identical
to the scalar path for every op — the scalar loop remains the
reference (and the only path when numpy is absent or ``REPRO_NO_NUMPY``
is set), proven equal op-by-op in ``tests/test_merge_batch.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Protocol, Sequence

from repro.automata.batch import numpy_or_none, require_numpy
from repro.errors import ConfigError
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern


class MergePolicy(Protocol):
    """A merge op: repeatedly pick the pattern index to advance."""

    def __call__(
        self,
        remaining: list[int],
        cursor: dict[int, int],
        rng: random.Random,
        chunk: int,
    ) -> list[int]:
        """Return the full order of pattern ids (one entry per emitted
        symbol).  ``remaining`` maps position->pattern_id of live
        patterns; implementations below generate the order directly."""
        ...  # pragma: no cover - protocol


def _order_round_robin(
    patterns: list[TestPattern], rng: random.Random, chunk: int
) -> list[int]:
    del rng, chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    ids = [p.pattern_id for p in patterns]
    while any(left[i] > 0 for i in ids):
        for pattern_id in ids:
            if left[pattern_id] > 0:
                order.append(pattern_id)
                left[pattern_id] -= 1
    return order


def _order_random(
    patterns: list[TestPattern], rng: random.Random, chunk: int
) -> list[int]:
    del chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    live = [p.pattern_id for p in patterns if len(p) > 0]
    while live:
        pattern_id = rng.choice(live)
        order.append(pattern_id)
        left[pattern_id] -= 1
        if left[pattern_id] == 0:
            live.remove(pattern_id)
    return order


def _order_cyclic(
    patterns: list[TestPattern], rng: random.Random, chunk: int
) -> list[int]:
    del rng
    if chunk < 1:
        raise ConfigError(f"cyclic chunk must be >= 1, got {chunk}")
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    ids = [p.pattern_id for p in patterns]
    while any(left[i] > 0 for i in ids):
        for pattern_id in ids:
            take = min(chunk, left[pattern_id])
            order.extend([pattern_id] * take)
            left[pattern_id] -= take
    return order


def _order_burst(
    patterns: list[TestPattern], rng: random.Random, chunk: int
) -> list[int]:
    del rng, chunk
    order: list[int] = []
    for pattern in patterns:
        order.extend([pattern.pattern_id] * len(pattern))
    return order


def _order_weighted(
    patterns: list[TestPattern], rng: random.Random, chunk: int
) -> list[int]:
    del chunk
    order: list[int] = []
    left = {p.pattern_id: len(p) for p in patterns}
    while True:
        live = [(i, n) for i, n in left.items() if n > 0]
        if not live:
            return order
        total = sum(n for _i, n in live)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = live[-1][0]
        for pattern_id, weight in live:
            cumulative += weight
            if pick < cumulative:
                chosen = pattern_id
                break
        order.append(chosen)
        left[chosen] -= 1


OrderFunction = Callable[[list[TestPattern], random.Random, int], list[int]]

MERGE_OPS: dict[str, OrderFunction] = {
    "round_robin": _order_round_robin,
    "random": _order_random,
    "cyclic": _order_cyclic,
    "burst": _order_burst,
    "weighted": _order_weighted,
}


def register_merge_op(name: str, order_function: OrderFunction) -> None:
    """Add a custom merge policy usable by name in configs.

    Custom ops stay scalar order functions; with numpy present their
    order still assembles through the array gather (scalar order,
    vectorized assembly — bit-identical output either way).
    """
    if name in MERGE_OPS:
        raise ConfigError(f"merge op {name!r} already registered")
    MERGE_OPS[name] = order_function


def _array_order_round_robin(np: Any, lengths: Any, chunk: int) -> tuple:
    """Vectorized ``round_robin`` order: round ``r`` emits, in pattern
    order, every pattern longer than ``r`` — a boolean mask over the
    (rounds, n) grid, flattened row-major."""
    del chunk
    n = len(lengths)
    rounds = int(lengths.max())
    mask = np.arange(rounds, dtype=np.int64)[:, None] < lengths[None, :]
    order = np.broadcast_to(np.arange(n, dtype=np.int64), (rounds, n))[mask]
    seq = np.broadcast_to(
        np.arange(1, rounds + 1, dtype=np.int64)[:, None], (rounds, n)
    )[mask]
    return order, seq


def _array_order_cyclic(np: Any, lengths: Any, chunk: int) -> tuple:
    """Vectorized ``cyclic`` order: round ``r``, pattern ``k``, slot
    ``j`` emits symbol ``r * chunk + j`` of pattern ``k`` when that
    position exists — a mask over the (rounds, n, chunk) grid."""
    if chunk < 1:
        raise ConfigError(f"cyclic chunk must be >= 1, got {chunk}")
    n = len(lengths)
    rounds = -(-int(lengths.max()) // chunk)
    position = (
        np.arange(rounds, dtype=np.int64)[:, None, None] * chunk
        + np.arange(chunk, dtype=np.int64)[None, None, :]
    )  # (rounds, 1, chunk)
    mask = position < lengths[None, :, None]
    shape = (rounds, n, chunk)
    order = np.broadcast_to(
        np.arange(n, dtype=np.int64)[None, :, None], shape
    )[mask]
    seq = np.broadcast_to(position + 1, shape)[mask]
    return order, seq


def _array_order_burst(np: Any, lengths: Any, chunk: int) -> tuple:
    """Vectorized ``burst`` order: each pattern's full length, back to
    back, with within-pattern sequence numbers as offset aranges."""
    del chunk
    n = len(lengths)
    total = int(lengths.sum())
    order = np.repeat(np.arange(n, dtype=np.int64), lengths)
    begins = np.cumsum(lengths) - lengths
    seq = np.arange(1, total + 1, dtype=np.int64) - np.repeat(begins, lengths)
    return order, seq


#: Deterministic built-ins whose *order construction* vectorizes.
#: ``random``/``weighted`` are deliberately absent: their per-draw RNG
#: consumption is contract, so they run their scalar order functions
#: and only the assembly is arrays.
_ARRAY_ORDER_OPS: dict[str, Callable[[Any, Any, int], tuple]] = {
    "round_robin": _array_order_round_robin,
    "cyclic": _array_order_cyclic,
    "burst": _array_order_burst,
}


def _interned_rows(np: Any, patterns: list[TestPattern]) -> tuple:
    """``(alphabet, rows)`` with every pattern as an id array.

    Zero-copy when all patterns are array-backed over one shared
    alphabet (the batch-sampling plane guarantees identity); otherwise
    symbols are interned here, first-appearance order.
    """
    shared = patterns[0].alphabet
    if shared is not None and all(
        p.alphabet is shared and p.symbol_ids is not None for p in patterns
    ):
        return shared, [p.symbol_ids for p in patterns]
    index: dict[str, int] = {}
    rows = []
    for pattern in patterns:
        symbols = pattern.symbols
        rows.append(
            np.fromiter(
                (index.setdefault(s, len(index)) for s in symbols),
                dtype=np.int64,
                count=len(symbols),
            )
        )
    return tuple(index), rows


@dataclass
class PatternMerger:
    """Merges *n* test patterns into one interleaved pattern.

    Parameters
    ----------
    op:
        Name of the merge policy (key of :data:`MERGE_OPS`).
    seed:
        RNG seed for stochastic policies.
    chunk:
        Subsequence length for the ``cyclic`` policy.
    use_numpy:
        ``None`` (default) auto-detects the array assembly path;
        ``True`` demands it (:class:`~repro.errors.ConfigError` when
        numpy is unavailable); ``False`` forces the scalar reference
        loop.  Output is bit-identical either way.
    """

    op: str = "round_robin"
    seed: int | None = None
    chunk: int = 2
    use_numpy: bool | None = None

    def __post_init__(self) -> None:
        if self.op not in MERGE_OPS:
            raise ConfigError(
                f"unknown merge op {self.op!r}; known: {sorted(MERGE_OPS)}"
            )

    def merge(self, patterns: list[TestPattern]) -> MergedPattern:
        """Produce the merged pattern M of Algorithm 1."""
        if not patterns:
            raise ConfigError("cannot merge an empty pattern list")
        ids = [pattern.pattern_id for pattern in patterns]
        if len(set(ids)) != len(ids):
            raise ConfigError("pattern ids must be unique")
        # One fresh RNG per merge, consumed in emission order by the
        # stochastic order functions — on both paths.
        rng = random.Random(self.seed)
        if self.use_numpy is True:
            np = require_numpy("PatternMerger(use_numpy=True)")
        elif self.use_numpy is False:
            np = None
        else:
            np = numpy_or_none()
        if np is not None:
            return self._merge_arrays(np, patterns, rng)
        order = MERGE_OPS[self.op](patterns, rng, self.chunk)
        # Lengths and symbol tuples hoisted once: order functions and
        # this loop stop re-walking (or re-materialising) per step.
        length_of = {p.pattern_id: len(p) for p in patterns}
        symbols_of = {p.pattern_id: p.symbols for p in patterns}
        cursor = {pattern.pattern_id: 0 for pattern in patterns}
        commands: list[PatternCommand] = []
        for position, pattern_id in enumerate(order):
            index = cursor[pattern_id]
            if index >= length_of[pattern_id]:
                raise ConfigError(
                    f"merge op {self.op!r} over-consumed pattern {pattern_id}"
                )
            commands.append(
                PatternCommand(
                    symbol=symbols_of[pattern_id][index],
                    pattern_id=pattern_id,
                    sequence_in_pattern=index + 1,
                    position=position,
                )
            )
            cursor[pattern_id] = index + 1
        merged = MergedPattern(
            commands=commands, op=self.op, sources=list(patterns)
        )
        merged.validate()
        return merged

    def _merge_arrays(
        self, np: Any, patterns: list[TestPattern], rng: random.Random
    ) -> MergedPattern:
        """Array assembly: order as an index array, symbols by one
        fancy-indexed gather, validation as vectorized count/bound
        checks (same :class:`ConfigError`\\ s as the scalar loop +
        ``validate()``), output array-backed and lazy."""
        n = len(patterns)
        lengths = np.fromiter(
            (len(p) for p in patterns), dtype=np.int64, count=n
        )
        alphabet, rows = _interned_rows(np, patterns)
        max_len = int(lengths.max())
        padded = np.zeros((n, max(max_len, 1)), dtype=np.int64)
        for k, row in enumerate(rows):
            padded[k, : len(row)] = row
        pattern_ids = np.fromiter(
            (p.pattern_id for p in patterns), dtype=np.int64, count=n
        )
        vectorized = _ARRAY_ORDER_OPS.get(self.op)
        if vectorized is not None:
            order_index, seq = vectorized(np, lengths, self.chunk)
        else:
            # Scalar order (exact RNG-draw sequence), array assembly.
            order = MERGE_OPS[self.op](patterns, rng, self.chunk)
            index_of = {p.pattern_id: k for k, p in enumerate(patterns)}
            order_index = np.fromiter(
                (index_of[pid] for pid in order),
                dtype=np.int64,
                count=len(order),
            )
            # Per-pattern 1-based sequence numbers, and the same
            # over/under-consumption errors the scalar loop raises.
            seq = np.empty(len(order), dtype=np.int64)
            for k in range(n):
                mask = order_index == k
                count = int(mask.sum())
                if count > lengths[k]:
                    raise ConfigError(
                        f"merge op {self.op!r} over-consumed pattern "
                        f"{patterns[k].pattern_id}"
                    )
                if count < lengths[k]:
                    raise ConfigError(
                        f"pattern {patterns[k].pattern_id} only merged "
                        f"{count}/{int(lengths[k])} symbols"
                    )
                seq[mask] = np.arange(1, count + 1, dtype=np.int64)
        symbol_ids = padded[order_index, seq - 1]
        return MergedPattern.from_arrays(
            op=self.op,
            sources=list(patterns),
            pattern_ids=pattern_ids.take(order_index),
            sequences=seq,
            symbol_ids=symbol_ids,
            alphabet=alphabet,
        )

    def merge_batch(
        self,
        pattern_groups: Sequence[Sequence[TestPattern]],
        seeds: Sequence[int | None] | None = None,
    ) -> list[MergedPattern]:
        """Merge many cells' pattern groups in one call.

        Each group gets its own fresh ``random.Random(seed)`` exactly
        as :meth:`merge` would — a batch of *independent* merges, so
        results equal per-group :meth:`merge` calls bit for bit.  The
        batch entry point the array plane hands a
        ``SharedPatternBatch``'s cells to: sampled id arrays flow in,
        array-backed merges flow out, and nothing in between
        materialises a per-symbol Python object.

        ``seeds`` (when given) overrides the merge seed *per group* —
        how the worker-side cross-cell dispatch merges many campaign
        cells' rounds at once, each under the merger seed that cell's
        own harness would have derived.  Group *i* then merges exactly
        as ``replace(self, seed=seeds[i]).merge(group)`` would.
        """
        if seeds is None:
            return [self.merge(list(group)) for group in pattern_groups]
        if len(seeds) != len(pattern_groups):
            raise ConfigError(
                f"merge_batch got {len(pattern_groups)} groups but "
                f"{len(seeds)} seeds"
            )
        return [
            replace(self, seed=seed).merge(list(group))
            for group, seed in zip(pattern_groups, seeds)
        ]

    def merge_symbols(
        self, symbol_lists: Sequence[Sequence[str]]
    ) -> MergedPattern:
        """Merge raw symbol sequences (pattern ids assigned by position).

        The re-merge entry point for recorded material: a run's
        ``TestRunResult.patterns`` or a parsed report's source symbols
        come back as plain tuples, and this wraps them in fresh
        :class:`TestPattern` values before merging — so an adaptive
        campaign can re-interleave yesterday's detecting patterns under
        a different op without reconstructing generator state.
        """
        patterns = [
            TestPattern(pattern_id=index, symbols=tuple(symbols))
            for index, symbols in enumerate(symbol_lists)
        ]
        return self.merge(patterns)
