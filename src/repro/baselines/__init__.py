"""Baseline testers pTest is compared against (E10).

* :mod:`repro.baselines.random_tester` — a ConTest-style tester:
  uniform random service noise with no structural model of legal
  sequences ("ConTest debugs multi-threaded programs by randomly
  interleaving the execution of threads").
* :mod:`repro.baselines.systematic` — a CHESS-lite bounded systematic
  explorer: enumerate merge interleavings with a context-switch bound
  ("CHESS uses model checking techniques to provide higher fault
  coverage ... not efficient when searching infinite state spaces").
"""

from repro.baselines.random_tester import (
    RandomTester,
    uniform_noise_pfa,
)
from repro.baselines.systematic import (
    SystematicExplorer,
    interleavings,
)

__all__ = [
    "RandomTester",
    "uniform_noise_pfa",
    "SystematicExplorer",
    "interleavings",
]
