"""ConTest-style random noise tester.

ConTest perturbs schedules with random noise and no model of which
operation sequences are meaningful.  The analogue in pTest's setting is
a "pattern generator" that draws services uniformly at random with no
legality structure: a single-state automaton with a self-loop per
service.  Most of its sequences are illegal (TR before TS, TD on absent
tasks, ...), so a large share of the command budget burns on error
replies instead of driving the slave into interesting states — the
structural reason the adaptive PFA approach wins in E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.automata.pfa import PFA, Transition
from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest, TestRunResult


def uniform_noise_pfa(alphabet: Iterable[str]) -> PFA:
    """One state, a self-loop per symbol, uniform probabilities.

    Never absorbing: walks have exactly the requested size, matching a
    noise tester that just keeps issuing random commands.
    """
    symbols = sorted(alphabet)
    share = 1.0 / len(symbols)
    transitions = {
        0: {
            symbol: Transition(
                source=0, symbol=symbol, target=0, probability=share
            )
            for symbol in symbols
        }
    }
    return PFA(
        num_states=1,
        alphabet=frozenset(symbols),
        transitions=transitions,
        start=0,
        accepts=frozenset({0}),
        state_labels={0: "noise"},
    )


@dataclass
class RandomTester:
    """Runs the harness with unstructured random patterns.

    Mirrors :class:`~repro.ptest.harness.AdaptiveTest`'s interface so
    comparison sweeps can treat both uniformly.
    """

    config: PTestConfig
    programs: Mapping[str, TaskProgram] = field(default_factory=dict)
    setup: Callable[[PCoreKernel], None] | None = None

    def run(self) -> TestRunResult:
        test = AdaptiveTest(
            config=self.config,
            programs=self.programs,
            pfa=uniform_noise_pfa(self.config.alphabet),
            setup=self.setup,
        )
        return test.run()
