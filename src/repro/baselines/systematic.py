"""CHESS-lite: bounded systematic exploration of interleavings.

CHESS enumerates thread schedules exhaustively under a preemption bound.
The analogue here enumerates *merge orders* of the given test patterns:
every interleaving of the pattern sequences whose number of pattern
switches does not exceed ``switch_bound``, executed deterministically
one by one.  Exhaustive within the bound — complete on tiny inputs,
combinatorially explosive beyond them, which is exactly the trade-off
the paper cites ("model checking is not efficient when searching
infinite state spaces").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.pcore.kernel import PCoreKernel
from repro.pcore.programs import TaskProgram
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest, TestRunResult
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern


def interleavings(
    patterns: list[TestPattern],
    switch_bound: int | None = None,
    limit: int | None = None,
) -> Iterator[list[int]]:
    """Yield merge orders (pattern-id sequences) depth-first.

    ``switch_bound`` caps how many times the emitting pattern may change
    (CHESS's preemption bound); ``limit`` caps the total count yielded.
    """
    sizes = {pattern.pattern_id: len(pattern) for pattern in patterns}
    ids = [pattern.pattern_id for pattern in patterns]
    total = sum(sizes.values())
    yielded = 0

    def walk(
        order: list[int], remaining: dict[int, int], switches: int
    ) -> Iterator[list[int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(order) == total:
            yielded += 1
            yield list(order)
            return
        for pattern_id in ids:
            if remaining[pattern_id] == 0:
                continue
            next_switches = switches
            if order and order[-1] != pattern_id:
                next_switches += 1
                if switch_bound is not None and next_switches > switch_bound:
                    continue
            order.append(pattern_id)
            remaining[pattern_id] -= 1
            yield from walk(order, remaining, next_switches)
            order.pop()
            remaining[pattern_id] += 1
            if limit is not None and yielded >= limit:
                return

    yield from walk([], dict(sizes), 0)


def order_to_merged(
    patterns: list[TestPattern], order: list[int]
) -> MergedPattern:
    """Materialise one merge order as a :class:`MergedPattern`."""
    cursor = {pattern.pattern_id: 0 for pattern in patterns}
    by_id = {pattern.pattern_id: pattern for pattern in patterns}
    commands = []
    for position, pattern_id in enumerate(order):
        index = cursor[pattern_id]
        commands.append(
            PatternCommand(
                symbol=by_id[pattern_id].symbols[index],
                pattern_id=pattern_id,
                sequence_in_pattern=index + 1,
                position=position,
            )
        )
        cursor[pattern_id] = index + 1
    merged = MergedPattern(
        commands=commands, op="systematic", sources=list(patterns)
    )
    merged.validate()
    return merged


@dataclass
class ExplorationResult:
    """Outcome of a bounded systematic exploration."""

    executed: int
    found: TestRunResult | None
    #: Interleavings that existed beyond ``max_runs`` (un-explored).
    truncated: bool

    @property
    def found_bug(self) -> bool:
        return self.found is not None and self.found.found_bug


@dataclass
class SystematicExplorer:
    """Enumerates and executes interleavings until a bug or exhaustion."""

    config: PTestConfig
    patterns: list[TestPattern]
    programs: Mapping[str, TaskProgram] = field(default_factory=dict)
    setup: Callable[[PCoreKernel], None] | None = None
    switch_bound: int | None = None
    max_runs: int = 200

    def explore(self) -> ExplorationResult:
        executed = 0
        orders = interleavings(
            self.patterns, switch_bound=self.switch_bound
        )
        for order in orders:
            if executed >= self.max_runs:
                return ExplorationResult(
                    executed=executed, found=None, truncated=True
                )
            merged = order_to_merged(self.patterns, order)
            result = AdaptiveTest(
                config=self.config,
                programs=self.programs,
                setup=self.setup,
                merged_override=merged,
            ).run()
            executed += 1
            if result.found_bug:
                return ExplorationResult(
                    executed=executed, found=result, truncated=False
                )
        return ExplorationResult(executed=executed, found=None, truncated=False)
