"""``repro.client``: blocking stdlib-socket client for ``repro serve``.

The thin side of the campaign-as-a-service split: a
:class:`~repro.ptest.spec.CampaignSpec` goes out as one JSON line, the
server's frames come back line by line, and :meth:`Client.run` rebuilds
them into a :class:`RemoteOutcome` whose ``rounds`` compare *equal* to
a direct :func:`~repro.ptest.spec.execute_spec` of the same spec — the
serve bit-identity contract, exercised end to end by
``tests/test_serve_client.py`` and ``examples/serve_client.py``.

Server-reported failures surface as :class:`ServerError` carrying the
structured frame's kind (``config`` / ``executor`` / ``protocol``),
the CLI-equivalent exit code, and any hint — so embedders branch on
the same taxonomy whether the campaign ran locally or remotely.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ReproError
from repro.ptest.campaign import CampaignRow, DetectionSample
from repro.ptest.executor import QuarantineReport
from repro.ptest.spec import CampaignSpec, RoundResult, round_from_dict

DEFAULT_PORT = 7341


class ServerError(ReproError):
    """A structured ``error`` frame, raised client-side.

    ``exit_code`` mirrors the CLI mapping (2 config, 3 executor
    failure); ``hint`` carries the server's remediation line (e.g. the
    quarantine hint) when one was attached.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "error",
        exit_code: int | None = None,
        hint: str | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.exit_code = exit_code
        self.hint = hint


@dataclass(frozen=True)
class CellEvent:
    """One streamed ``cell`` frame (``stream_cells=True`` requests):
    per-cell progress in submission order."""

    variant: str
    seed: int
    found_bug: bool
    kind: str | None


@dataclass
class RemoteOutcome:
    """What one remote request produced, rebuilt from the wire.

    ``rounds`` is the bit-identity payload —
    :class:`~repro.ptest.spec.RoundResult` values equal to a direct
    run's.  The rest is server telemetry: admission info from the
    ``accepted`` frame, pool ids from the ``done`` frame (process-local
    to the *server*, so never part of equality).
    """

    spec: CampaignSpec
    rounds: tuple[RoundResult, ...]
    stopped_early: bool = False
    pool_ids: tuple[int | None, ...] = ()
    prewarmed_refs: int = 0
    resumed_rounds: int = 0
    rounds_budget: int = 0
    schedule: str = ""
    queued: bool = False
    queue_depth: int = 0
    cells: tuple[CellEvent, ...] = field(default=())

    @property
    def rows(self) -> tuple[CampaignRow, ...]:
        return self.rounds[-1].rows if self.rounds else ()

    @property
    def detections(self) -> tuple[DetectionSample, ...]:
        return tuple(
            sample for round_ in self.rounds for sample in round_.detections
        )

    @property
    def quarantine(self) -> QuarantineReport | None:
        return self.rounds[-1].quarantine if self.rounds else None

    @property
    def total_detections(self) -> int:
        return sum(round_.total_detections for round_ in self.rounds)


class Client:
    """Blocking NDJSON client for a :mod:`repro.serve` server.

    Pure stdlib sockets — usable from scripts, tests and the ``repro
    submit`` subcommand without touching asyncio.  Connects lazily on
    first use; ``connect_timeout`` bounds how long to keep retrying the
    initial connection (covers the start-the-server-then-connect race
    in scripts), ``timeout`` bounds each subsequent read.  Context
    manager; one in-flight request per client instance.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 300.0,
        connect_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._request_seq = 0

    # -- plumbing ----------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ServerError(
                        f"cannot connect to repro server at "
                        f"{self.host}:{self.port} within "
                        f"{self.connect_timeout}s; is `repro serve` running?",
                        kind="connect",
                    ) from None
                time.sleep(0.05)
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "Client":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _send(self, payload: dict[str, Any]) -> None:
        self.connect()
        self._sock.sendall(json.dumps(payload).encode() + b"\n")

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServerError(
                "server closed the connection mid-request", kind="connect"
            )
        return json.loads(line)

    def _next_id(self) -> str:
        self._request_seq += 1
        return f"c{self._request_seq}"

    # -- operations --------------------------------------------------

    def ping(self) -> bool:
        self._send({"op": "ping", "id": self._next_id()})
        return self._recv().get("type") == "pong"

    def status(self) -> dict[str, Any]:
        """Server telemetry: active/queued/served counts and the
        per-width shared-pool snapshot."""
        self._send({"op": "status", "id": self._next_id()})
        return self._recv()

    def shutdown_server(self) -> dict[str, Any]:
        """Ask the server to drain in-flight requests and exit."""
        self._send({"op": "shutdown", "id": self._next_id()})
        return self._recv()

    def stream(
        self, spec: CampaignSpec, *, stream_cells: bool = False
    ) -> Iterator[dict[str, Any]]:
        """Submit ``spec``; yield raw frames through ``done``/``error``.

        The low-level hook for progress displays; most callers want
        :meth:`run`, which consumes this and rebuilds the outcome.
        """
        request_id = self._next_id()
        self._send(
            {
                "op": "run",
                "id": request_id,
                "spec": spec.to_dict(),
                "stream_cells": stream_cells,
            }
        )
        while True:
            frame = self._recv()
            yield frame
            if frame.get("type") in ("done", "error"):
                return

    def run(
        self, spec: CampaignSpec, *, stream_cells: bool = False
    ) -> RemoteOutcome:
        """Execute ``spec`` on the server; block until done.

        Raises :class:`ServerError` on an ``error`` frame (config
        mistakes, executor failures — same taxonomy as CLI exit codes).
        """
        rounds: list[RoundResult] = []
        cells: list[CellEvent] = []
        queued = False
        queue_depth = 0
        for frame in self.stream(spec, stream_cells=stream_cells):
            kind = frame.get("type")
            if kind == "accepted":
                queued = frame.get("queued", False)
                queue_depth = frame.get("queue_depth", 0)
            elif kind == "cell":
                cells.append(
                    CellEvent(
                        variant=frame["variant"],
                        seed=frame["seed"],
                        found_bug=frame["found_bug"],
                        kind=frame.get("kind"),
                    )
                )
            elif kind == "round":
                rounds.append(round_from_dict(frame["round"]))
            elif kind == "error":
                raise ServerError(
                    frame.get("message", "unknown server error"),
                    kind=frame.get("kind", "error"),
                    exit_code=frame.get("exit_code"),
                    hint=frame.get("hint"),
                )
            elif kind == "done":
                return RemoteOutcome(
                    spec=spec,
                    rounds=tuple(rounds),
                    stopped_early=frame.get("stopped_early", False),
                    pool_ids=tuple(frame.get("pool_ids", ())),
                    prewarmed_refs=frame.get("prewarmed_refs", 0),
                    resumed_rounds=frame.get("resumed_rounds", 0),
                    rounds_budget=frame.get("rounds_budget", len(rounds)),
                    schedule=frame.get("schedule", ""),
                    queued=queued,
                    queue_depth=queue_depth,
                    cells=tuple(cells),
                )
        raise ServerError(
            "stream ended without a done frame", kind="protocol"
        )  # pragma: no cover - stream() always ends on done/error
