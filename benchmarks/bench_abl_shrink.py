"""A3 — ablation: bug-report minimization (pattern shrinking).

The paper's detector "dumps the related information to help users
reproduce the bugs"; the shrinker (ddmin over per-pair pattern
suffixes) takes that further: it reduces a failing merged pattern to a
1-minimal failing core.  This bench pads the philosophers deadlock
pattern to several lengths and reports the reduction and replay cost.
The benchmark times one full shrink session.
"""

from __future__ import annotations

from repro.ptest.detector import AnomalyKind
from repro.ptest.generator import PatternGenerator
from repro.ptest.harness import AdaptiveTest
from repro.ptest.merger import PatternMerger
from repro.ptest.shrink import PatternShrinker
from repro.workloads.scenarios import lifecycle_pfa, philosophers_case2

from conftest import format_table


def _padded_merge(extra_cycles: int, seed: int = 0):
    symbols = ("TC",) + ("TS", "TR") * (1 + extra_cycles)
    generator = PatternGenerator.from_pfa(lifecycle_pfa(symbols), seed=seed)
    patterns = generator.generate_batch(3, len(symbols))
    return PatternMerger(op="cyclic", chunk=2, seed=seed).merge(patterns)


def _shrink(extra_cycles: int):
    scenario = philosophers_case2(seed=0)
    merged = _padded_merge(extra_cycles)
    # The padded pattern must fail before shrinking means anything.
    result = AdaptiveTest(
        config=scenario.config,
        programs=dict(scenario.programs),
        merged_override=merged,
    ).run()
    assert result.found_bug
    shrinker = PatternShrinker(
        config=scenario.config,
        programs=dict(scenario.programs),
        target=AnomalyKind.DEADLOCK,
    )
    return shrinker.shrink(merged)


def test_shrink_ablation(benchmark, emit):
    rows = []
    outcomes = []
    for extra_cycles in (0, 2, 4, 8):
        outcome = _shrink(extra_cycles)
        outcomes.append(outcome)
        pattern_text = " ".join(c.symbol for c in outcome.shrunk.commands)
        if len(pattern_text) > 40:
            pattern_text = pattern_text[:37] + "..."
        rows.append(
            (
                outcome.original_length,
                outcome.shrunk_length,
                f"{100 * outcome.reduction:.0f}%",
                outcome.runs_executed,
                pattern_text,
            )
        )

    text = (
        "shrinking padded philosophers deadlock patterns (3 pairs):\n"
        + format_table(
            [
                "original cmds",
                "minimal cmds",
                "reduction",
                "replays",
                "minimal pattern",
            ],
            rows,
        )
        + "\n\nfinding: for the unpadded pattern the 1-minimal trigger is"
        + "\njust the three TC commands — creating the three philosophers"
        + "\nis enough, because each creation preempts the previous one"
        + "\ninside its first-fork hold window.  The shrinker discovered"
        + "\nwhat the manual analysis of test case 2 assumed needed"
        + "\nTS/TR forcing.  Heavier padding can settle in larger ddmin"
        + "\nlocal minima (suffix-truncation is the only operator), but"
        + "\nthe reduction stays >=50%."
    )
    emit("A3_shrink", text)

    assert outcomes[0].shrunk_length == 3  # the pure-TC minimal core
    for outcome in outcomes[1:]:
        assert outcome.reduction >= 0.5

    benchmark.pedantic(lambda: _shrink(2), rounds=2, iterations=1)
