"""E13 — communication infrastructure: mailbox depth and backpressure.

Section II-B: the master-slave systems exchange messages over the
OMAP's hardware mailboxes, whose FIFO depth bounds in-flight commands.
With the master core running faster than the slave's one-command-per-
step service rate (``master_steps_per_tick=4``, fire-and-forget), the
command FIFO saturates: end-to-end throughput stays slave-bound (as
queueing theory demands), while the *rejection count* — master issue
attempts bounced by a full FIFO — falls as the FIFO deepens.  The
benchmark times a depth-4 run.
"""

from __future__ import annotations

from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test

from conftest import format_table

CAPACITIES = (1, 2, 4, 8, 16)


def _config(capacity: int) -> PTestConfig:
    return PTestConfig(
        pattern_count=8,
        pattern_size=8,
        op="round_robin",
        seed=5,
        max_ticks=30_000,
        lockstep=False,  # fire-and-forget exposes the FIFO bound
        mailbox_capacity=capacity,
        master_steps_per_tick=4,  # the master outruns the slave
    )


def test_mailbox_capacity_sweep(benchmark, emit):
    rows = []
    stalls_by_capacity = {}
    ticks_by_capacity = {}
    for capacity in CAPACITIES:
        result = run_adaptive_test(_config(capacity))
        assert not result.found_bug
        stalls_by_capacity[capacity] = result.command_stalls
        ticks_by_capacity[capacity] = result.ticks
        rows.append(
            (
                capacity,
                result.commands_issued,
                result.command_stalls,
                result.ticks,
                f"{result.commands_issued / result.ticks:.3f}",
            )
        )

    text = (
        "fire-and-forget stress, master 4x slave speed (8 pairs, s=8):\n"
        + format_table(
            [
                "mailbox depth",
                "commands",
                "rejected posts",
                "ticks",
                "commands/tick",
            ],
            rows,
        )
        + "\n\nshape: throughput is pinned at the slave's service rate"
        + "\nregardless of depth (Little's law); what the FIFO depth buys"
        + "\nis fewer rejected posts — wasted master cycles spent"
        + "\nretrying — which is why the bridge wants the hardware FIFO"
        + "\nplus a small software inbox rather than depth-1 signalling."
    )
    emit("E13_mailbox_capacity", text)

    assert stalls_by_capacity[1] > stalls_by_capacity[16]
    # Completion time is service-bound: within 20% across depths.
    assert max(ticks_by_capacity.values()) < min(ticks_by_capacity.values()) * 1.2

    benchmark.pedantic(
        lambda: run_adaptive_test(_config(4)), rounds=3, iterations=1
    )
