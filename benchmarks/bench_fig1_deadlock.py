"""E4 — Fig. 1: the concurrency-fault example.

Regenerates the example's two execution orders on the simulated SoC:
the good order terminates reaching every line label, the bad order
wedges the system with states d, e, i, j unreachable and pTest's
detector flagging S1's starvation.  The benchmark times one full bad
order run (resume, wedge, detect).
"""

from __future__ import annotations

from repro.workloads.fig1 import run_fig1

from conftest import format_table


def test_fig1_orders(benchmark, emit):
    good = run_fig1("good")
    bad = run_fig1("bad")

    rows = [
        (
            "L f g K i j a b d e (good)",
            "terminated" if good.terminated else "wedged",
            "".join(sorted(good.reached)),
            "".join(sorted(good.unreachable)) or "(none)",
            "; ".join(a.kind.value for a in good.anomalies) or "(none)",
        ),
        (
            "K a L f g h ... (bad)",
            "terminated" if bad.terminated else "wedged",
            "".join(sorted(bad.reached)),
            "".join(sorted(bad.unreachable)) or "(none)",
            "; ".join(a.kind.value for a in bad.anomalies) or "(none)",
        ),
    ]
    text = (
        format_table(
            ["execution order", "outcome", "reached", "unreachable", "detector"],
            rows,
        )
        + "\n\npaper's claim: the bad order enters the deadlock state and"
        + "\n'the state d, e, i, j are unreachable' — reproduced: "
        + f"{'yes' if {'d', 'e', 'i', 'j'} <= bad.unreachable else 'NO'}"
        + "\n(modelling note: under strict priority scheduling the wedge"
        + "\nmanifests as S2 spinning and S1 starving — a livelock, which"
        + "\nthe detector reports as starvation; see DESIGN.md)"
    )
    emit("E4_fig1_deadlock", text)

    assert good.terminated and good.unreachable == frozenset()
    assert bad.wedged and {"d", "e", "i", "j"} <= bad.unreachable
    assert bad.anomalies

    benchmark(lambda: run_fig1("bad"))
