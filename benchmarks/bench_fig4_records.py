"""E7 — Fig. 4: the state-recording expression (Definition 2).

Drives a two-pair run to a mid-pattern point and prints the CP records
in the paper's exact notation ``CPi = (qm, qs, TP, SN, deltaS)``,
verifying each field's semantics.  The benchmark times record
snapshotting during a live run.
"""

from __future__ import annotations

from repro.ptest.patterns import TestPattern
from repro.ptest.recording import ProcessStateRecorder

from conftest import format_table


def _drive_recorder() -> ProcessStateRecorder:
    recorder = ProcessStateRecorder()
    recorder.register_pair(TestPattern(pattern_id=1, symbols=("p1", "p2", "p3")))
    recorder.register_pair(TestPattern(pattern_id=2, symbols=("p2", "p1", "p3")))
    # Pair 1: two commands issued; slave suspended (like Fig. 4's CP1).
    recorder.note_issue(1, "m2")
    recorder.note_issue(1, "m2")
    recorder.note_slave_state(1, "s1")
    # Pair 2: one command issued; slave running (like CP2).
    recorder.note_issue(2, "m3")
    recorder.note_slave_state(2, "s2")
    return recorder


def test_fig4_state_records(benchmark, emit):
    recorder = _drive_recorder()
    records = recorder.snapshot()

    rows = [
        (
            f"CP{record.pair_id}",
            record.master_state,
            record.slave_state,
            "->".join(record.pattern),
            record.sequence_number,
            "->".join(record.remaining) or "(done)",
        )
        for record in records
    ]
    rendered = "\n".join(record.describe() for record in records)
    text = (
        "Definition 2 five-tuples (qm, qs, TP, SN, deltaS):\n"
        + format_table(
            ["record", "qm", "qs", "TP", "SN", "deltaS"], rows
        )
        + "\n\npaper notation:\n"
        + rendered
        + "\n\npaper's Fig. 4 example for comparison:"
        + "\n  CP1 = (m2, s1, p1->p2->p3, 2, p3)"
        + "\n  CP2 = (m3, s2, p2->p1->p3, 1, p1->p3)"
    )
    emit("E7_fig4_records", text)

    cp1, cp2 = records
    assert cp1.describe() == "CP1 = (m2, s1, p1->p2->p3, 2, p3)"
    assert cp2.describe() == "CP2 = (m3, s2, p2->p1->p3, 1, p1->p3)"

    def snapshot_loop():
        fresh = _drive_recorder()
        for _ in range(100):
            fresh.snapshot()

    benchmark(snapshot_loop)
