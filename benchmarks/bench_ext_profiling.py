"""E12 — profiling convergence: how much profiling is enough?

The paper assumes the PFA's probabilities "can be learned through
system profiling" but never quantifies the profiling budget.  This
bench samples lifecycles from the true Fig. 5 distribution, learns a
distribution from growing trace budgets, and reports the KL divergence
to ground truth — the convergence curve a practitioner needs to decide
when to stop profiling.  The benchmark times one learn+score round.
"""

from __future__ import annotations

from repro.analysis.convergence import align_states, measure_convergence
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_pfa,
)

from conftest import format_table

BUDGETS = [5, 10, 50, 100, 500, 2_000]


def test_profiling_convergence(benchmark, emit):
    generator = PatternGenerator(
        regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
    )
    pfa = pcore_pfa()
    mapping = align_states(generator.dfa, pfa)
    points = measure_convergence(pfa, generator.dfa, mapping, BUDGETS, seed=3)

    rows = [
        (point.traces, f"{point.mean_kl:.4f}", f"{point.max_kl:.4f}")
        for point in points
    ]
    text = (
        "KL(true Fig. 5 || learned) vs profiling budget "
        "(Laplace smoothing 1.0):\n"
        + format_table(
            ["traces", "mean KL (nats)", "worst-state KL"], rows
        )
        + "\n\nshape: divergence falls roughly as 1/n; a few hundred"
        + "\nprofiled lifecycles recover the paper's hand-tuned"
        + "\ndistribution to within ~0.01 nats — system profiling is a"
        + "\npractical substitute for expert knowledge, as Section I"
        + "\nclaims."
    )
    emit("E12_profiling_convergence", text)

    kls = [point.mean_kl for point in points]
    assert kls[-1] < kls[0] / 10  # an order of magnitude of convergence
    assert kls[-1] < 0.01

    def learn_round():
        measure_convergence(pfa, generator.dfa, mapping, [100], seed=7)

    benchmark(learn_round)
