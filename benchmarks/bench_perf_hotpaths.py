#!/usr/bin/env python
"""Performance baseline for the three hot-path layers.

Times, on this machine:

1. **Compiled sampling** — patterns/sec of the legacy dict-walking
   sampler (faithfully re-implemented here, per-step re-sort included)
   vs. the :class:`CompiledPFA`-backed sampler, on the Fig. 5 pCore
   PFA in restart mode.
2. **Campaign throughput** — (variant, seed) cells/sec of the
   philosophers sweep run serially vs. through the process-pool
   executor (``--workers``, default 4).
3. **Batched campaign dispatch** — cells/sec of the process-pool
   executor submitting one cell per future vs. batching many cells per
   worker submission (the sub-10ms-cell amortisation lever), on the
   registry's ``clean_spin`` workload.
4. **Warm-pool dispatch** — cells/sec of a campaign dispatched through
   a cold (freshly spawned) worker pool vs. the second run on a warm
   persistent pool whose workers already hold their scenario/PFA
   caches (the ``WorkerPool`` reuse lever).
5. **Adaptive rounds** — rounds/sec of a multi-round
   :class:`AdaptiveCampaign` on one persistent pool: the cold first
   round (pool spawn inside the timed window) vs. the mean warm round
   2+ — certifying, via pool telemetry, that refinement rounds never
   pay pool spawn (``pool.spawns`` stays 1 however many rounds run).
6. **Composed pipelines + pre-warming** — round-start latency (round
   dispatch to first delivered result) of a staged
   :class:`PolicyPipeline` whose rounds each introduce brand-new refs,
   with cross-round worker-cache pre-warming off vs on; the composed
   schedule must hold ``pool.spawns == 1`` and pre-warming must never
   start a round slower than cold.
7. **Deadlock detection** — detector sweeps/sec of the legacy
   networkx-rebuild check vs. the incremental wait-for graph, in the
   steady state where mutex ownership is not changing (the common case
   between interleavings).

Single-core machines cannot show a process-parallel speedup, so the
``campaign`` and ``pool`` sections carry a ``skipped_parallel_floor``
flag at ``cpu_count == 1`` — raw numbers stay in the JSON, but the
ratios are startup noise there and CI floors skip them.

Results are printed and persisted as machine-readable JSON at
``benchmarks/out/bench_perf_hotpaths.json`` (same directory as the text
artifacts of the paper-figure benches) so future PRs have a trajectory
to compare against.  ``--quick`` shrinks every layer for CI smoke runs.

Run:  PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.automata.batch import BatchSampler, numpy_or_none
from repro.automata.reference import LegacySampler, networkx_cycle_tids
from repro.automata.sampling import PatternSampler
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Acquire, Compute, Exit
from repro.pcore.services import ServiceCode, ServiceResult, ServiceStatus
from repro.pcore.testkit import create_task, run_service
from repro.ptest.campaign import Campaign
from repro.ptest.chaos import ChaosSpec
from repro.ptest.committer import Committer
from repro.ptest.executor import CellExecutor, WorkCell
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import MergedPattern, TestPattern
from repro.ptest.pcore_model import pcore_pfa
from repro.ptest.pool import WorkerPool, shutdown_pools
from repro.ptest.recording import ProcessStateRecorder
from repro.ptest.waitgraph import IncrementalWaitForGraph
from repro.sim.trace import Tracer
from repro.workloads.registry import scenario_ref

OUT_PATH = Path(__file__).parent / "out" / "bench_perf_hotpaths.json"


# -- layer 1: sampling ---------------------------------------------------------
# LegacySampler (imported above) is the frozen pre-PR walk shared with
# tests/test_perf_subsystem.py via repro.automata.reference.


def bench_sampling(quick: bool) -> dict:
    pfa = pcore_pfa()
    # Restart mode models continuous stress (test case 1); 100 symbols
    # keeps per-pattern fixed costs from masking the per-step win.
    size = 100
    count = 400 if quick else 2000
    reps = 3 if quick else 5

    def rate(sampler_factory) -> float:
        best = 0.0
        for _ in range(reps):
            sampler = sampler_factory()
            start = time.perf_counter()
            for _ in range(count):
                sampler.sample(size)
            best = max(best, count / (time.perf_counter() - start))
        return best

    legacy = rate(lambda: LegacySampler(pfa, seed=0, on_final="restart"))
    compiled = rate(
        lambda: PatternSampler(pfa, seed=0, on_final="restart")
    )
    # Correctness guard: the two paths must stay bit-identical.
    check = PatternSampler(pfa, seed=17, on_final="restart").sample(40)
    reference = LegacySampler(pfa, seed=17, on_final="restart").sample(40)
    assert (
        check.symbols,
        check.states,
        check.log_probability,
        check.restarts,
    ) == reference, "compiled sampler diverged from the legacy walk"
    return {
        "pattern_size": size,
        "patterns_timed": count,
        "legacy_patterns_per_sec": round(legacy, 1),
        "compiled_patterns_per_sec": round(compiled, 1),
        "speedup": round(compiled / legacy, 2),
    }


# -- layer 1b: batched sampling ------------------------------------------------


def bench_sampling_batch(quick: bool) -> dict:
    """Scalar per-cell walks vs one vectorized lockstep batch.

    The baseline is the *compiled* scalar path (layer 1's winner): N
    independent ``PatternSampler(seed=...)`` walks.  The batch draws
    the same N patterns in one ``BatchSampler.sample`` call.  Restart
    mode, 100 symbols, 4096 cells — the vectorized win grows with
    batch width, and per-cell fixed costs dominate below ~1k cells, so
    quick mode keeps the full width and trims repetitions instead.
    Multi-word seeds route every cell through the ``RandomState`` fast
    path, which is what campaign-scale sha256-derived seeds look like.
    Each rep makes one *untimed* warm-up draw per path before the timed
    draw: the batch path's first call fills its per-cell draw-block
    buffers (a one-time cost a campaign amortises over its many draws
    per cell), so the timed call is the steady state both paths run at
    campaign scale.  Bit-identity is asserted over warm-up and timed
    draws alike.  The reported speedup is the best *paired* ratio —
    each rep times the two paths back to back and the ratio is taken
    within the rep — because on a busy single-core box load drift is
    time-correlated, and cross-rep ratios (best batch over best
    scalar from different moments) mix load conditions the paired
    measurement cancels.
    """
    pfa = pcore_pfa()
    size = 100
    cells = 4096
    reps = 5 if quick else 8
    seeds = [(1 << 40) + 977 * index for index in range(cells)]
    skipped_numpy = numpy_or_none() is None

    best_ratio = 0.0
    scalar_rate = batch_rate = 0.0
    for _ in range(reps):
        samplers = [
            PatternSampler(pfa, seed=seed, on_final="restart")
            for seed in seeds
        ]
        scalar_warm = [sampler.sample(size) for sampler in samplers]
        start = time.perf_counter()
        scalar_patterns = [sampler.sample(size) for sampler in samplers]
        scalar_elapsed = time.perf_counter() - start
        batch = BatchSampler(pfa, seeds, on_final="restart")
        batch_warm = batch.sample(size)
        start = time.perf_counter()
        batch_patterns = batch.sample(size)
        batch_elapsed = time.perf_counter() - start
        # Correctness guard: both draws of the whole batch must be
        # bit-identical to the scalar walks.
        assert batch_warm == scalar_warm, (
            "batch sampling diverged from the scalar walks (draw 1)"
        )
        assert batch_patterns == scalar_patterns, (
            "batch sampling diverged from the scalar walks (draw 2)"
        )
        if scalar_elapsed / batch_elapsed > best_ratio:
            best_ratio = scalar_elapsed / batch_elapsed
            scalar_rate = cells / scalar_elapsed
            batch_rate = cells / batch_elapsed
    return {
        "pattern_size": size,
        "cells": cells,
        "scalar_patterns_per_sec": round(scalar_rate, 1),
        "batch_patterns_per_sec": round(batch_rate, 1),
        "speedup": round(best_ratio, 2),
        # Without numpy the batch *is* the scalar loop (bit-identical
        # fallback) — the ratio is meaningless, so the CI floor skips,
        # mirroring the skipped_parallel_floor convention.
        "skipped_numpy": skipped_numpy,
    }


# -- layer 1c: array-plane sample→merge ----------------------------------------


def bench_merge_batch(quick: bool) -> dict:
    """Eager scalar sample→merge vs the end-to-end array plane.

    The tentpole claim of the array-native pattern plane: a campaign
    cell's whole sample→merge round trip — draw ``per_cell`` patterns,
    wrap them as ``TestPattern``\\ s, interleave them with a seeded
    :class:`PatternMerger` — without materialising per-symbol Python
    objects.  The scalar leg is the pre-array pipeline (per-cell
    ``PatternSampler`` walks, eager tuples, ``use_numpy=False``
    merging into eager ``PatternCommand`` lists); the array leg draws
    ``BatchSampler.sample_batch`` id arrays, wraps rows via
    ``TestPattern.from_ids`` and merges through the vectorized gather,
    with command materialisation deferred (and excluded from the timed
    window — the committer pays it later, round-robin of the saving).
    Both legs run through :meth:`PatternMerger.merge_batch`.

    As in the other paired sections: one untimed warm-up pass per leg
    per rep (fills draw-block buffers; continues both legs' RNG
    streams identically), the reported speedup is the best *paired*
    within-rep ratio, and bit-identity of warm-up and timed outputs —
    commands, op, sources — is asserted outside the timed windows.
    """
    pfa = pcore_pfa()
    size = 100
    cells = 512 if quick else 1024
    per_cell = 4
    reps = 3 if quick else 5
    op, chunk, merge_seed = "cyclic", 3, 1234
    seeds = [(1 << 41) + 1313 * index for index in range(cells)]
    skipped_numpy = numpy_or_none() is None

    def scalar_pass(samplers, merger) -> list:
        groups = []
        for sampler in samplers:
            group = []
            for pattern_id in range(per_cell):
                drawn = sampler.sample(size)
                group.append(
                    TestPattern(
                        pattern_id=pattern_id,
                        symbols=drawn.symbols,
                        states=drawn.states,
                        log_probability=drawn.log_probability,
                    )
                )
            groups.append(group)
        return merger.merge_batch(groups)

    def array_pass(batch_sampler, merger) -> list:
        draws = [batch_sampler.sample_batch(size) for _ in range(per_cell)]
        groups = []
        for cell in range(cells):
            group = []
            for pattern_id, batch in enumerate(draws):
                row = batch.row(cell)
                if row is None:
                    # No-numpy fallback: materialised patterns.
                    drawn = batch.pattern(cell)
                    group.append(
                        TestPattern(
                            pattern_id=pattern_id,
                            symbols=drawn.symbols,
                            states=drawn.states,
                            log_probability=drawn.log_probability,
                        )
                    )
                else:
                    group.append(
                        TestPattern.from_ids(
                            pattern_id=pattern_id,
                            symbol_ids=row.symbol_ids,
                            alphabet=row.alphabet,
                            state_ids=row.state_ids,
                            log_probability=row.log_probability,
                        )
                    )
            groups.append(group)
        return merger.merge_batch(groups)

    best_ratio = 0.0
    scalar_rate = array_rate = 0.0
    for _ in range(reps):
        samplers = [
            PatternSampler(pfa, seed=seed, on_final="restart")
            for seed in seeds
        ]
        scalar_merger = PatternMerger(
            op=op, seed=merge_seed, chunk=chunk, use_numpy=False
        )
        scalar_warm = scalar_pass(samplers, scalar_merger)
        start = time.perf_counter()
        scalar_merged = scalar_pass(samplers, scalar_merger)
        scalar_elapsed = time.perf_counter() - start

        batch_sampler = BatchSampler(pfa, seeds, on_final="restart")
        array_merger = PatternMerger(op=op, seed=merge_seed, chunk=chunk)
        array_warm = array_pass(batch_sampler, array_merger)
        start = time.perf_counter()
        array_merged = array_pass(batch_sampler, array_merger)
        array_elapsed = time.perf_counter() - start

        # Correctness guard, outside the timed windows: both passes of
        # every cell must interleave identically (command lists, op,
        # source patterns — array-side materialisation happens here).
        assert array_warm == scalar_warm, (
            "array sample→merge diverged from the scalar plane (pass 1)"
        )
        assert array_merged == scalar_merged, (
            "array sample→merge diverged from the scalar plane (pass 2)"
        )
        if scalar_elapsed / array_elapsed > best_ratio:
            best_ratio = scalar_elapsed / array_elapsed
            scalar_rate = cells / scalar_elapsed
            array_rate = cells / array_elapsed
    return {
        "pattern_size": size,
        "cells": cells,
        "patterns_per_merge": per_cell,
        "merge_op": op,
        "scalar_merges_per_sec": round(scalar_rate, 1),
        "array_merges_per_sec": round(array_rate, 1),
        "speedup": round(best_ratio, 2),
        # Without numpy both legs run the same scalar plane — the
        # ratio is meaningless, so the CI floor skips (same convention
        # as sampling_batch).
        "skipped_numpy": skipped_numpy,
    }


# -- layer 1c: the commit loop -------------------------------------------------


class _EchoBridge:
    """Minimal ``BridgeMaster`` stand-in for timing the commit loop.

    Every issued request is bound a sequence number and answered ``OK``
    on the *next* :meth:`pump` — the committer pumps before it issues,
    so replies land one step after issue, modelling the mailbox round
    trip without the simulated cores in the timed window.  ``TC``
    replies carry a fresh tid, so pair bindings (task creation, target
    learning, TD/TY teardown) evolve exactly as in a real run.
    """

    def __init__(self) -> None:
        self.now = 0
        self.outstanding: dict = {}
        self._inbox: list = []
        self._next_seq = 1
        self._next_tid = 1

    def issue(self, request):
        sequence = self._next_seq
        self._next_seq += 1
        # Attach the sequence in place (the real slave stamps it on
        # decode); cheaper than dataclasses.replace, and the stub's
        # overhead is identical dead weight in both timed legs.
        object.__setattr__(request, "sequence", sequence)
        self.outstanding[sequence] = request
        self._inbox.append(request)
        return sequence

    def pump(self) -> list:
        if not self._inbox:
            return []
        arrived = []
        for bound in self._inbox:
            value = None
            if bound.service is ServiceCode.TC:
                value = self._next_tid
                self._next_tid += 1
            del self.outstanding[bound.sequence]
            arrived.append(
                ServiceResult(
                    request=bound,
                    status=ServiceStatus.OK,
                    value=value,
                    completed_at=self.now,
                )
            )
        self._inbox = []
        return arrived


def bench_commit_loop(quick: bool) -> dict:
    """PatternCommand-expansion commit walk vs the column walk.

    The consumer half of the array plane: an array-built
    :class:`MergedPattern` reaches the committer as id columns, and the
    column walk executes it by cursor — one bulk ``tolist()`` at
    construction, list indexing per step, symbol→service resolved once
    per alphabet — without ever creating a ``PatternCommand``.  The
    scalar leg is the bit-identical fallback the committer keeps for
    eager merges (the only kind the no-numpy merger produces): expand
    the same merge's command list, then walk it per-command.  The
    expansion is timed with the walk because that is what executing an
    eager merge costs each round; both legs then drive the same echo
    bridge (replies next step, fresh tids on TC), so the measured
    difference is exactly the commit loop's per-command overhead.

    Conventions as elsewhere: per rep both legs walk freshly-built but
    identically-seeded merges, the reported speedup is the best paired
    within-rep ratio, and bit-identity — results, state records, traces
    — is asserted outside the timed windows, where the column leg must
    also finish with ``commands`` still unmaterialised.
    """
    pfa = pcore_pfa()
    size = 100
    per_merge = 8
    merges = 20 if quick else 60
    # More reps than the other sections: the per-command delta this
    # measures is small enough that scheduler noise in one window can
    # swallow it, and the best-paired-ratio estimator only stabilises
    # upward with extra samples.
    reps = 6 if quick else 8
    op, chunk, merge_seed = "cyclic", 3, 99
    skipped_numpy = numpy_or_none() is None

    def build(slot: int) -> MergedPattern:
        """One merge per call — array-built with numpy, eager without
        (both legs then walk the same eager plane and the floor skips)."""
        seeds = [(1 << 40) + 7919 * slot + index for index in range(per_merge)]
        batch = BatchSampler(pfa, seeds, on_final="restart").sample_batch(size)
        patterns = []
        for pattern_id in range(per_merge):
            row = batch.row(pattern_id)
            if row is None:
                drawn = batch.pattern(pattern_id)
                patterns.append(
                    TestPattern(
                        pattern_id=pattern_id,
                        symbols=drawn.symbols,
                        states=drawn.states,
                        log_probability=drawn.log_probability,
                    )
                )
            else:
                patterns.append(
                    TestPattern.from_ids(
                        pattern_id=pattern_id,
                        symbol_ids=row.symbol_ids,
                        alphabet=row.alphabet,
                        state_ids=row.state_ids,
                        log_probability=row.log_probability,
                    )
                )
        merger = PatternMerger(op=op, seed=merge_seed, chunk=chunk)
        return merger.merge(patterns)

    def drive(merged, recorder=None, tracer=None) -> Committer:
        committer = Committer(
            bridge=_EchoBridge(),
            merged=merged,
            recorder=recorder,
            tracer=tracer,
            lockstep=False,
        )
        now = 0
        while not committer.is_halted():
            committer.step(now)
            now += 1
        return committer

    total_commands = 0
    best_ratio = 0.0
    scalar_rate = column_rate = 0.0
    for _ in range(reps):
        scalar_src = [build(slot) for slot in range(merges)]
        column_src = [build(slot) for slot in range(merges)]
        total_commands = sum(len(merged) for merged in column_src)

        start = time.perf_counter()
        for merged in scalar_src:
            # The fallback plane: command expansion + per-command walk.
            eager = MergedPattern(
                commands=merged.commands, op=merged.op, sources=merged.sources
            )
            drive(eager)
        scalar_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for merged in column_src:
            drive(merged)
        column_elapsed = time.perf_counter() - start

        if scalar_elapsed / column_elapsed > best_ratio:
            best_ratio = scalar_elapsed / column_elapsed
            scalar_rate = total_commands / scalar_elapsed
            column_rate = total_commands / column_elapsed

    # Correctness guard, outside the timed windows: one fresh pair of
    # identically-seeded merges, full observability on — results,
    # Definition-2 records and traces must match command for command,
    # and the column leg must never have expanded its command list.
    column_merged = build(0)
    eager_merged = build(0)
    eager_merged = MergedPattern(
        commands=eager_merged.commands,
        op=eager_merged.op,
        sources=eager_merged.sources,
    )
    scalar_recorder, column_recorder = (
        ProcessStateRecorder(),
        ProcessStateRecorder(),
    )
    scalar_tracer, column_tracer = Tracer(), Tracer()
    scalar_run = drive(eager_merged, scalar_recorder, scalar_tracer)
    column_run = drive(column_merged, column_recorder, column_tracer)
    assert column_run.results == scalar_run.results, (
        "column commit loop diverged from the PatternCommand walk"
    )
    assert column_run.issued == scalar_run.issued
    assert column_recorder.snapshot() == scalar_recorder.snapshot(), (
        "column commit loop recorded different Definition-2 state"
    )
    assert column_tracer.dump() == scalar_tracer.dump(), (
        "column commit loop traced differently"
    )
    if not skipped_numpy:
        assert column_merged._commands is None, (
            "column walk materialised the command list"
        )
    return {
        "pattern_size": size,
        "patterns_per_merge": per_merge,
        "merges": merges,
        "commands_timed": total_commands,
        "merge_op": op,
        "scalar_commands_per_sec": round(scalar_rate, 1),
        "column_commands_per_sec": round(column_rate, 1),
        "speedup": round(best_ratio, 2),
        # Without numpy both legs walk the same eager plane — the
        # ratio is meaningless, so the CI floor skips (same convention
        # as sampling_batch/merge_batch).
        "skipped_numpy": skipped_numpy,
    }


def _traced_peak_kib(task) -> float:
    """Peak tracemalloc allocation of ``task()``, in KiB."""
    tracemalloc.start()
    try:
        task()
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return round(peak / 1024.0, 1)


def _sampling_batch_memory_pass() -> None:
    """One steady-state materialised batch draw (the sampling_batch
    shape at reduced width): what a campaign round allocates per
    lockstep draw, slotted patterns included."""
    pfa = pcore_pfa()
    seeds = [(1 << 40) + 977 * index for index in range(1024)]
    sampler = BatchSampler(pfa, seeds, on_final="restart")
    sampler.sample(100)  # warm-up fills the draw-block buffers
    sampler.sample(100)


def _merge_batch_memory_pass() -> None:
    """One steady-state array sample→merge pass (the merge_batch shape
    at reduced width), commands left unmaterialised — the allocation
    profile of the end-to-end array plane."""
    pfa = pcore_pfa()
    cells = 256
    seeds = [(1 << 41) + 1313 * index for index in range(cells)]
    sampler = BatchSampler(pfa, seeds, on_final="restart")
    merger = PatternMerger(op="cyclic", seed=1234, chunk=3)

    def one_pass() -> None:
        draws = [sampler.sample_batch(100) for _ in range(4)]
        groups = []
        for cell in range(cells):
            group = []
            for pattern_id, batch in enumerate(draws):
                row = batch.row(cell)
                if row is None:
                    drawn = batch.pattern(cell)
                    group.append(
                        TestPattern(
                            pattern_id=pattern_id,
                            symbols=drawn.symbols,
                            states=drawn.states,
                            log_probability=drawn.log_probability,
                        )
                    )
                else:
                    group.append(
                        TestPattern.from_ids(
                            pattern_id=pattern_id,
                            symbol_ids=row.symbol_ids,
                            alphabet=row.alphabet,
                            state_ids=row.state_ids,
                            log_probability=row.log_probability,
                        )
                    )
            groups.append(group)
        merger.merge_batch(groups)

    one_pass()  # warm-up
    one_pass()


# -- layer 2: campaigns --------------------------------------------------------


def _philosophers_campaign(seeds, workers) -> Campaign:
    campaign = Campaign(seeds=tuple(seeds), workers=workers)
    campaign.add_scenario("cyclic", "philosophers", op="cyclic")
    campaign.add_scenario("round_robin", "philosophers", op="round_robin")
    campaign.add_scenario("ordered", "philosophers", ordered=True)
    return campaign


def bench_campaign(quick: bool, workers: int) -> dict:
    seeds = range(8) if quick else range(60)
    cells = 3 * len(seeds)

    def wall(n_workers: int) -> float:
        campaign = _philosophers_campaign(seeds, n_workers)
        start = time.perf_counter()
        campaign.run()
        return time.perf_counter() - start

    serial = wall(1)
    parallel = wall(workers)
    return {
        "cells": cells,
        "workers": workers,
        "serial_cells_per_sec": round(cells / serial, 2),
        "parallel_cells_per_sec": round(cells / parallel, 2),
        "speedup": round(serial / parallel, 2),
        # On a single core a process pool cannot beat serial for long
        # cells — the ratio is pure pool-startup noise, so the CI floor
        # skips it (the raw numbers above stay for the record).
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 2b: batched dispatch ------------------------------------------------


def bench_campaign_batched(quick: bool, workers: int) -> dict:
    """Per-cell vs batched pool submission on sub-10ms clean cells.

    Uses the registry's ``clean_spin`` scenario (tiny, detection-free
    cells) so the submission overhead — what batching amortises — is
    the dominant cost either way.
    """
    cell_count = 64 if quick else 192
    reps = 3
    # Tiny cells (sub-2ms) so submission overhead — what batching
    # amortises — dominates; larger cells would just hide the effect.
    variants = {
        "spin": scenario_ref(
            "clean_spin", tasks=2, total_steps=40 if quick else 80
        )
    }
    cells = [WorkCell(variant="spin", seed=seed) for seed in range(cell_count)]

    def timed(executor: CellExecutor) -> tuple[float, list]:
        start = time.perf_counter()
        results = executor.run_cells(variants, cells)
        return cell_count / (time.perf_counter() - start), results

    per_cell = CellExecutor(workers=workers, batch_size=1)
    batched = CellExecutor(workers=workers)
    per_cell_rate = batched_rate = 0.0
    per_cell_results = batched_results = []
    # Interleave the reps so machine-load drift hits both paths alike.
    for _ in range(reps):
        rate, per_cell_results = timed(per_cell)
        per_cell_rate = max(per_cell_rate, rate)
        rate, batched_results = timed(batched)
        batched_rate = max(batched_rate, rate)
    batch_size = batched.last_batch_size or 1
    # Correctness guard: batching must not change any cell's outcome.
    assert [r.ticks for r in batched_results] == [
        r.ticks for r in per_cell_results
    ], "batched execution diverged from per-cell execution"
    assert not any(r.found_bug for r in batched_results)
    return {
        "cells": cell_count,
        "workers": workers,
        "batch_size": batch_size,
        "per_cell_cells_per_sec": round(per_cell_rate, 2),
        "batched_cells_per_sec": round(batched_rate, 2),
        "speedup": round(batched_rate / per_cell_rate, 2),
    }


# -- layer 2d: fault-recovery overhead -----------------------------------------


def bench_faults(quick: bool, workers: int) -> dict:
    """Campaign throughput under injected worker kills vs clean.

    The same philosophers campaign runs twice: once clean, once under
    ``ChaosSpec(kill_rate=0.10)`` with the watchdog and quarantine
    armed.  Injected kills are transient (resubmission re-draws the
    fate), so the chaos leg must deliver *bit-identical rows* — the
    asserted correctness guard — and the wall-clock ratio is the pure
    price of detection + respawn + resubmission.  An untimed clean
    pass first warms the pool so neither leg pays cold spawn.
    """
    seeds = range(6) if quick else range(24)
    cells = 3 * len(seeds)

    def run_once(chaos: "ChaosSpec | None") -> tuple[float, list]:
        campaign = Campaign(
            seeds=tuple(seeds),
            workers=workers,
            chaos=chaos,
            cell_timeout=60.0 if chaos else None,
            quarantine=chaos is not None,
        )
        campaign.add_scenario("cyclic", "philosophers", op="cyclic")
        campaign.add_scenario("round_robin", "philosophers", op="round_robin")
        campaign.add_scenario("ordered", "philosophers", ordered=True)
        start = time.perf_counter()
        rows = campaign.run()
        elapsed = time.perf_counter() - start
        if chaos is not None:
            report = campaign.last_quarantine
            assert report is not None and report.quarantined == 0, (
                "transient-only chaos must never quarantine"
            )
        return elapsed, rows

    run_once(None)  # warm-up: pool spawn out of both timed legs
    clean_time, clean_rows = run_once(None)
    chaos_time, chaos_rows = run_once(ChaosSpec(seed=2, kill_rate=0.10))
    signature = [
        (r.variant, r.runs, r.detections, r.kinds) for r in clean_rows
    ]
    bit_identical = signature == [
        (r.variant, r.runs, r.detections, r.kinds) for r in chaos_rows
    ]
    assert bit_identical, "chaos recovery changed campaign results"
    return {
        "cells": cells,
        "workers": workers,
        "kill_rate": 0.10,
        "clean_cells_per_sec": round(cells / clean_time, 2),
        "chaos_cells_per_sec": round(cells / chaos_time, 2),
        "overhead": round(chaos_time / clean_time, 2),
        "bit_identical": bit_identical,
        # Respawns serialise against the work on one core, so the
        # overhead ratio there measures scheduling contention, not
        # recovery cost — the floor skips, the numbers stay.
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 2c: warm-pool dispatch ----------------------------------------------


def bench_pool(quick: bool, workers: int) -> dict:
    """Cold-pool vs warm-pool dispatch over a 2-run campaign sequence.

    The cold run pays worker-process startup and per-variant scenario
    resolution/PFA compilation inside the timed window — what every
    ``Campaign.run`` paid before the persistent pool existed.  The warm
    run times the *second* dispatch through one reused
    :class:`WorkerPool`, whose workers already exist and already hold
    their caches.  Cell outcomes must be identical either way.
    """
    cell_count = 32 if quick else 96
    reps = 3
    variants = {
        "spin": scenario_ref(
            "clean_spin", tasks=2, total_steps=40 if quick else 80
        )
    }
    cells = [WorkCell(variant="spin", seed=seed) for seed in range(cell_count)]

    def dispatch(executor: CellExecutor) -> tuple[float, list]:
        start = time.perf_counter()
        results = executor.run_cells(variants, cells)
        return time.perf_counter() - start, results

    cold_best = warm_best = float("inf")
    cold_results = warm_results = []
    pool_reused = True
    # Interleave the reps so machine-load drift hits both paths alike.
    for _ in range(reps):
        with WorkerPool(workers) as pool:  # spawn inside the timing
            elapsed, cold_results = dispatch(
                CellExecutor(workers=workers, pool=pool)
            )
        cold_best = min(cold_best, elapsed)
        with WorkerPool(workers) as pool:
            executor = CellExecutor(workers=workers, pool=pool)
            dispatch(executor)  # warms workers + worker-side caches
            first_pool_id = executor.last_pool_id
            elapsed, warm_results = dispatch(executor)
            pool_reused = pool_reused and (
                executor.last_pool_id == first_pool_id
            )
        warm_best = min(warm_best, elapsed)
    # Correctness guard: warm reuse must not change any cell's outcome.
    assert [r.ticks for r in warm_results] == [
        r.ticks for r in cold_results
    ], "warm-pool execution diverged from cold-pool execution"
    assert pool_reused, "second dispatch did not reuse the warm pool"
    return {
        "cells": cell_count,
        "workers": workers,
        "runs_per_sequence": 2,
        "cold_dispatch_cells_per_sec": round(cell_count / cold_best, 2),
        "warm_dispatch_cells_per_sec": round(cell_count / warm_best, 2),
        "speedup": round(cold_best / warm_best, 2),
        "pool_reused": pool_reused,
        # One core serialises the workers themselves; the warm/cold
        # ratio still mostly holds (startup is the term being removed)
        # but the CI floor only gates multi-core machines.
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 2d: adaptive rounds -------------------------------------------------


def bench_adaptive(quick: bool, workers: int) -> dict:
    """Round dispatch cost of the multi-round adaptive engine.

    Runs an :class:`AdaptiveCampaign` under the identity ``Repeat``
    policy (rows must not drift round over round) on ``clean_spin``
    cells, timing each round separately: round 1 pays the pool spawn,
    rounds 2+ must ride the warm pool — ``pool.spawns == 1`` after the
    whole run is the deterministic CI floor (a respawn mid-sequence
    means refinement left the warm pool, the exact regression the
    adaptive engine exists to prevent).
    """
    from repro.ptest.adaptive import AdaptiveCampaign, Repeat

    rounds = 3
    seeds = tuple(range(8 if quick else 24))
    round_times: list[float] = []

    class _TimedRepeat(Repeat):
        """Repeat, plus a round-boundary timestamp per refinement."""

        def refine(self, observation):
            round_times.append(time.perf_counter())
            return super().refine(observation)

    with WorkerPool(workers) as pool:
        campaign = AdaptiveCampaign(
            seeds=seeds,
            rounds=rounds,
            policy=_TimedRepeat(),
            workers=workers,
            pool=pool,
        )
        campaign.add_scenario(
            "spin", "clean_spin", tasks=2, total_steps=40 if quick else 80
        )
        start = time.perf_counter()
        result = campaign.run()
        end = time.perf_counter()
        spawns = pool.spawns
    # refine() fires between rounds, so the timestamps split the run
    # into per-round segments: [start, t1], [t1, t2], [t2, end].
    bounds = [start, *round_times, end]
    segments = [b - a for a, b in zip(bounds, bounds[1:])]
    cold_round = segments[0]
    warm_rounds = segments[1:]
    warm_mean = sum(warm_rounds) / len(warm_rounds)
    # Correctness guard: identical variants must yield identical rows
    # on every warm round (the adaptive determinism contract).
    first_rows = result.rounds[0].rows
    for observation in result.rounds[1:]:
        assert observation.rows == first_rows, (
            "warm adaptive round diverged from the cold round"
        )
    return {
        "rounds": rounds,
        "cells_per_round": len(seeds),
        "workers": workers,
        "cold_round_sec": round(cold_round, 4),
        "warm_round_sec_mean": round(warm_mean, 4),
        "cold_rounds_per_sec": round(1.0 / cold_round, 2),
        "warm_rounds_per_sec": round(1.0 / warm_mean, 2),
        "speedup": round(cold_round / warm_mean, 2),
        "pool_spawns": spawns,
        "pool_stable": result.pool_stable,
        # Timing ratios are noise on one core, but the spawn count is
        # exact everywhere — the CI floor gates on it unconditionally.
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 2e: composed pipelines + pre-warming --------------------------------


class _ShiftedSpinGrid:
    """Bench policy: a fresh ``clean_spin`` grid every round.

    Pure in ``observation.index`` (the adaptive determinism contract),
    and deliberately adversarial for caching: every round's variants
    carry *new* cache keys, so each round pays scenario resolution and
    PFA compilation somewhere — inside the round when cold, overlapped
    with round setup when pre-warmed.  ``base`` offsets the step grid
    so two composed stages emit disjoint key ranges.
    """

    def __init__(self, base: int):
        self.base = base

    def refine(self, observation):
        from repro.ptest.campaign import grid_variants

        start = self.base + 10 * (observation.index + 1)
        return grid_variants(
            "spin",
            "clean_spin",
            {"total_steps": [start, start + 2, start + 4]},
            tasks=2,
        )


def bench_pipeline(quick: bool, workers: int) -> dict:
    """Round-start latency of a composed pipeline, prewarmed vs cold.

    Runs a two-stage :class:`PolicyPipeline` (each stage a
    :class:`_ShiftedSpinGrid`, so every round introduces brand-new
    refs) twice on fresh pools: once with cross-round pre-warming
    disabled (round N+1's workers resolve/compile inside the round)
    and once enabled (refs ship to workers the moment the policy
    refines).  The metric is *round-start latency* — dispatch of a
    warm round to its first delivered result — meaned over rounds 2+.
    Pre-warming must never lose (CI floor: prewarmed >= cold on
    multi-core) and the whole composed schedule must ride one pool
    spawn, prewarm traffic included.
    """
    from repro.ptest.adaptive import AdaptiveCampaign
    from repro.ptest.pipeline import PipelineStage, PolicyPipeline

    rounds = 4
    seeds = tuple(range(8 if quick else 24))
    steps = 40 if quick else 80
    reps = 3

    class _TimedPipeline(PolicyPipeline):
        """Pipeline plus a round-boundary timestamp per refinement."""

        def __init__(self, stages, times):
            super().__init__(stages)
            self._times = times

        def refine(self, observation):
            refined = super().refine(observation)
            self._times.append(time.perf_counter())
            return refined

    class _AcceptTimes:
        """Sink recording each delivery's timestamp, in order."""

        def __init__(self):
            self.times: list[float] = []

        def accept(self, cell, result):
            self.times.append(time.perf_counter())

    def run_once(prewarm: bool) -> tuple[list[float], object, int]:
        refine_times: list[float] = []
        pipeline = _TimedPipeline(
            (
                PipelineStage(_ShiftedSpinGrid(steps), rounds=2),
                PipelineStage(_ShiftedSpinGrid(steps + 1000), rounds=2),
            ),
            refine_times,
        )
        sink = _AcceptTimes()
        with WorkerPool(workers) as pool:
            campaign = AdaptiveCampaign(
                seeds=seeds,
                rounds=rounds,
                policy=pipeline,
                workers=workers,
                pool=pool,
                prewarm=prewarm,
            )
            campaign.add_grid(
                "spin",
                "clean_spin",
                {"total_steps": [steps, steps + 2, steps + 4]},
                tasks=2,
            )
            start = time.perf_counter()
            result = campaign.run(sink=sink)
            spawns = pool.spawns
        # Segment the accept stream into rounds (cells per round =
        # variants x seeds) and pair each round's first delivery with
        # its start: the run start for round 1, the policy's refine
        # return for every later round.
        starts = [start, *refine_times]
        latencies = []
        cursor = 0
        for index, observation in enumerate(result.rounds):
            latencies.append(sink.times[cursor] - starts[index])
            cursor += len(observation.variants) * len(seeds)
        return latencies, result, spawns

    cold_best = prewarmed_best = float("inf")
    cold_result = prewarmed_result = None
    spawn_counts = set()
    # Interleave the reps so machine-load drift hits both paths alike.
    for _ in range(reps):
        latencies, cold_result, spawns = run_once(prewarm=False)
        spawn_counts.add(spawns)
        cold_best = min(cold_best, sum(latencies[1:]) / (rounds - 1))
        latencies, prewarmed_result, spawns = run_once(prewarm=True)
        spawn_counts.add(spawns)
        prewarmed_best = min(
            prewarmed_best, sum(latencies[1:]) / (rounds - 1)
        )
    # Correctness guard: pre-warming must not change any round's rows.
    # (Spawn counts are *reported*, not asserted — the no-respawn gate
    # lives in the criteria block so a regression fails the CI check
    # with the telemetry in hand instead of dying mid-bench.)
    assert [o.rows for o in cold_result.rounds] == [
        o.rows for o in prewarmed_result.rounds
    ], "prewarmed pipeline rounds diverged from cold rounds"
    assert prewarmed_result.prewarmed_refs > 0
    assert cold_result.prewarmed_refs == 0
    return {
        "rounds": rounds,
        "cells_per_round": 3 * len(seeds),
        "workers": workers,
        "stages": "shift:2 -> shift:2",
        "prewarmed_refs": prewarmed_result.prewarmed_refs,
        "cold_round_start_ms": round(cold_best * 1_000, 3),
        "prewarmed_round_start_ms": round(prewarmed_best * 1_000, 3),
        "speedup": round(cold_best / prewarmed_best, 2),
        "pool_spawns": max(spawn_counts),
        # One core serialises prewarm tasks and round batches, so the
        # overlap the ratio measures cannot exist; raw numbers stay.
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 2f: campaign-as-a-service -------------------------------------------


def bench_serve(quick: bool, workers: int) -> dict:
    """Warm-server request throughput vs cold-process campaign runs.

    The serve tentpole's number: a long-lived ``repro serve`` process
    answers campaign requests from concurrent clients on shared warm
    worker pools, so request N never pays interpreter start, imports,
    pool spawn or worker-cache warm-up.  The warm leg times ``requests``
    identical small clean_spin campaigns issued by ``clients``
    concurrent socket clients against one in-process server (one
    untimed warm-up request first — the server's pool spawn, paid once
    per process, is the cost being amortised); the cold leg times the
    same spec dispatched as fresh ``python -m repro campaign --spec``
    processes.  Rows must be bit-identical between the two paths.
    """
    import subprocess
    import tempfile
    import threading

    from repro.client import Client
    from repro.ptest.spec import CampaignSpec, execute_spec
    from repro.serve import start_server_thread

    clients = 3
    per_client = 2 if quick else 5
    requests = clients * per_client
    cold_runs = 2 if quick else 3
    spec = CampaignSpec(
        scenario="clean_spin",
        params=(("tasks", "2"), ("total_steps", "40")),
        seeds=(0, 1),
        workers=workers,
        batch_size=2,
    )

    direct = execute_spec(spec)

    def percentile(sorted_values: list[float], q: float) -> float:
        index = min(
            len(sorted_values) - 1, round(q * (len(sorted_values) - 1))
        )
        return sorted_values[index]

    handle = start_server_thread(max_concurrent=clients)
    latencies: list[float] = []
    mismatches: list[str] = []
    lock = threading.Lock()
    try:
        with Client(*handle.address) as warmup:
            warmup.run(spec)  # pool spawn + worker caches, untimed

        def client_loop() -> None:
            with Client(*handle.address) as client:
                for _ in range(per_client):
                    start = time.perf_counter()
                    remote = client.run(spec)
                    elapsed = time.perf_counter() - start
                    with lock:
                        latencies.append(elapsed)
                        if remote.rounds != direct.rounds:
                            mismatches.append("rounds diverged")

        threads = [
            threading.Thread(target=client_loop) for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        warm_wall = time.perf_counter() - start
    finally:
        handle.close()
    assert not mismatches, (
        "served rows diverged from direct execution: " + mismatches[0]
    )

    # Cold baseline: what each request costs without the service —
    # a fresh interpreter, fresh imports, fresh pool, cold caches.
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ, PYTHONPATH=src)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle_file:
        handle_file.write(spec.to_json())
        spec_path = handle_file.name
    cold_best = float("inf")
    try:
        for _ in range(cold_runs):
            start = time.perf_counter()
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "campaign", "--spec", spec_path],
                capture_output=True,
                text=True,
                env=env,
            )
            elapsed = time.perf_counter() - start
            assert completed.returncode == 0, completed.stdout
            cold_best = min(cold_best, elapsed)
    finally:
        os.unlink(spec_path)

    ordered = sorted(latencies)
    warm_mean = sum(latencies) / len(latencies)
    return {
        "requests": requests,
        "clients": clients,
        "workers": workers,
        "requests_per_sec": round(requests / warm_wall, 2),
        "warm_request_ms_mean": round(warm_mean * 1_000, 2),
        "warm_request_ms_p50": round(percentile(ordered, 0.50) * 1_000, 2),
        "warm_request_ms_p95": round(percentile(ordered, 0.95) * 1_000, 2),
        "cold_process_ms": round(cold_best * 1_000, 2),
        "speedup": round(cold_best / warm_mean, 2),
        # Concurrent clients contend with the worker pool itself on one
        # core, so the ratio there mixes scheduling noise into the
        # startup-amortisation claim — the floor skips, numbers stay.
        "skipped_parallel_floor": os.cpu_count() == 1,
    }


# -- layer 3: detection --------------------------------------------------------


def _deadlocked_kernel() -> PCoreKernel:
    """A kernel wedged in the classic two-task / two-mutex cycle."""
    kernel = PCoreKernel(config=KernelConfig())

    def grab(first, second):
        def program(ctx):
            yield Acquire(first)
            yield Compute(30)
            yield Acquire(second)
            yield Exit(0)

        return program

    kernel.register_program("g1", grab("ra", "rb"))
    kernel.register_program("g2", grab("rb", "ra"))
    create_task(kernel, priority=1, program="g1")
    t2 = create_task(kernel, priority=2, program="g2").value
    for tick in range(3):
        kernel.step(tick)
    run_service(kernel, ServiceCode.TS, target=t2)
    for tick in range(3, 40):
        kernel.step(tick)
    run_service(kernel, ServiceCode.TR, target=t2)
    for tick in range(40, 80):
        kernel.step(tick)
    return kernel


def bench_detector(quick: bool) -> dict:
    kernel = _deadlocked_kernel()
    sweeps = 2_000 if quick else 20_000

    def legacy_sweep() -> tuple | None:
        return networkx_cycle_tids(kernel.wait_for_edges())

    start = time.perf_counter()
    for _ in range(sweeps):
        legacy_cycle = legacy_sweep()
    legacy_rate = sweeps / (time.perf_counter() - start)

    waitgraph = IncrementalWaitForGraph()
    resources = kernel.resources
    start = time.perf_counter()
    for _ in range(sweeps):
        waitgraph.refresh(resources)
        incremental_cycle = waitgraph.find_cycle()
    incremental_rate = sweeps / (time.perf_counter() - start)

    assert incremental_cycle is not None and legacy_cycle is not None
    assert (
        tuple(sorted({edge[0] for edge in incremental_cycle}))
        == legacy_cycle
    ), "incremental cycle diverged from the networkx rebuild"
    return {
        "sweeps_timed": sweeps,
        "rebuild_sweeps_per_sec": round(legacy_rate, 1),
        "incremental_sweeps_per_sec": round(incremental_rate, 1),
        "speedup": round(incremental_rate / legacy_rate, 2),
        "cycle_searches_run": waitgraph.searches,
    }


# -- layer 3b: batched detection -----------------------------------------------


def bench_detector_batch(quick: bool) -> dict:
    """Per-snapshot cycle search vs one batched screen-and-confirm.

    The workload models a campaign audit: ~1000 recorded wait-graph
    snapshots, most of them acyclic (chains and fans of various sizes),
    a few percent holding the real deadlock cycle captured from a
    wedged kernel.  The baseline runs the scalar
    :func:`find_cycle_edges` per snapshot; the batch path screens all
    snapshots with one vectorized Kahn peel and confirms only the
    cyclic survivors through the very same scalar search.
    """
    from repro.ptest.batchdetect import find_cycles_batch
    from repro.ptest.waitgraph import find_cycle_edges

    kernel = _deadlocked_kernel()
    cycle_edges = tuple(
        (waiter, owner) for waiter, owner, _ in kernel.wait_for_edges()
    )
    snapshots: list[tuple[tuple[int, int], ...]] = []
    for index in range(1_000):
        if index % 20 == 0:  # 5% cyclic, like a detecting campaign
            snapshots.append(cycle_edges)
        else:  # acyclic chain + fan, varying size and node ids
            base = index % 7
            chain = [
                (base + hop, base + hop + 1) for hop in range(2 + index % 5)
            ]
            chain.extend((base, base + 10 + hop) for hop in range(index % 3))
            snapshots.append(tuple(chain))
    reps = 3 if quick else 6
    skipped_numpy = numpy_or_none() is None

    scalar_best = batch_best = 0.0
    scalar_cycles = batch_cycles = None
    for _ in range(reps):
        start = time.perf_counter()
        scalar_cycles = [find_cycle_edges(edges) for edges in snapshots]
        scalar_best = max(
            scalar_best, len(snapshots) / (time.perf_counter() - start)
        )
        start = time.perf_counter()
        batch_cycles = find_cycles_batch(snapshots)
        batch_best = max(
            batch_best, len(snapshots) / (time.perf_counter() - start)
        )
    # Correctness guard: same first cycle (edge order included) per
    # snapshot — the screen is exact and the confirm is the baseline.
    assert batch_cycles == scalar_cycles, (
        "batched cycle detection diverged from the per-snapshot search"
    )
    return {
        "snapshots": len(snapshots),
        "cyclic_snapshots": sum(1 for c in scalar_cycles if c),
        "scalar_snapshots_per_sec": round(scalar_best, 1),
        "batch_snapshots_per_sec": round(batch_best, 1),
        "speedup": round(batch_best / scalar_best, 2),
        "skipped_numpy": skipped_numpy,
    }


# -- entry point ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small iteration counts for CI smoke runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool width for the campaign layer (default 4)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=OUT_PATH,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    results = {
        "bench": "perf_hotpaths",
        "quick": args.quick,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            # None = absent or disabled via REPRO_NO_NUMPY; the batch
            # sections fall back to scalar (and skip their floors) then.
            "numpy": getattr(numpy_or_none(), "__version__", None),
            # Peak allocation (KiB) of one representative batch-path
            # pass per array-plane section — the memory half of the
            # slots/array-backing story; honest in no-numpy mode too
            # (the passes then profile the scalar fallback).
            "tracemalloc_peak_kib": {
                "sampling_batch": _traced_peak_kib(
                    _sampling_batch_memory_pass
                ),
                "merge_batch": _traced_peak_kib(_merge_batch_memory_pass),
            },
        },
        "sampling": bench_sampling(args.quick),
        "sampling_batch": bench_sampling_batch(args.quick),
        "merge_batch": bench_merge_batch(args.quick),
        "commit_loop": bench_commit_loop(args.quick),
        "campaign": bench_campaign(args.quick, args.workers),
        "campaign_batched": bench_campaign_batched(args.quick, args.workers),
        "faults": bench_faults(args.quick, args.workers),
        "pool": bench_pool(args.quick, args.workers),
        "adaptive": bench_adaptive(args.quick, args.workers),
        "pipeline": bench_pipeline(args.quick, args.workers),
        "serve": bench_serve(args.quick, args.workers),
        "detector": bench_detector(args.quick),
        "detector_batch": bench_detector_batch(args.quick),
    }
    single_core = os.cpu_count() == 1
    # Targets are the PR-1 acceptance goals; floors are what CI
    # (.github/workflows/ci.yml) actually gates on — keep them in sync.
    # Floors recorded as met=None were skipped (single-core machine).
    results["criteria"] = {
        "sampling_speedup_target": 5.0,
        "sampling_speedup_met": results["sampling"]["speedup"] >= 5.0,
        "sampling_ci_floor": 3.0,
        # The batch tier stacks on the compiled scalar path; without
        # numpy it degenerates (bit-identically) to that path, so the
        # floor skips there — like skipped_parallel_floor on one core.
        "sampling_batch_ci_floor": 2.0,
        "sampling_batch_floor_met": (
            None
            if results["sampling_batch"]["skipped_numpy"]
            else results["sampling_batch"]["speedup"] >= 2.0
        ),
        # The array plane's end-to-end claim: sample→merge without
        # per-symbol Python objects must beat the eager pipeline.
        "merge_batch_ci_floor": 1.5,
        "merge_batch_floor_met": (
            None
            if results["merge_batch"]["skipped_numpy"]
            else results["merge_batch"]["speedup"] >= 1.5
        ),
        # The consumer half of that claim: executing an array merge by
        # cursor must beat expanding and walking its command list.
        "commit_loop_ci_floor": 1.3,
        "commit_loop_floor_met": (
            None
            if results["commit_loop"]["skipped_numpy"]
            else results["commit_loop"]["speedup"] >= 1.3
        ),
        "campaign_speedup_target": 2.0,
        "campaign_speedup_met": (
            None
            if single_core
            else results["campaign"]["speedup"] >= 2.0
        ),
        "campaign_ci_floor": None,  # not gated: needs multi-core hardware
        # Batching amortises per-submission overhead, so it must never
        # be slower than per-cell dispatch, core count regardless.
        "campaign_batched_ci_floor": 1.0,
        "campaign_batched_floor_met": (
            results["campaign_batched"]["speedup"] >= 1.0
        ),
        # Recovery from 10% injected worker kills may cost at most 1.5x
        # clean throughput; bit-identity of the recovered rows is exact
        # on any hardware and gates everywhere.
        "faults_recovery_ci_floor": 1.5,
        "faults_recovery_floor_met": (
            None
            if single_core
            else results["faults"]["overhead"] <= 1.5
        ),
        "faults_bit_identical_met": results["faults"]["bit_identical"],
        # Warm-pool reuse removes pool startup + re-resolution from the
        # dispatch path; on multi-core the second run of a sequence
        # must be clearly faster than a cold-pool run.
        "pool_warm_ci_floor": 1.5,
        "pool_floor_met": (
            None if single_core else results["pool"]["speedup"] >= 1.5
        ),
        # Adaptive rounds 2+ must never pay pool spawn: exactly one
        # executor creation across the whole multi-round sequence, and
        # one pool generation in the telemetry.  Spawn counting is
        # exact on any hardware, so this floor never skips.
        "adaptive_no_respawn_floor": 1,
        "adaptive_no_respawn_met": (
            results["adaptive"]["pool_spawns"] == 1
            and results["adaptive"]["pool_stable"]
        ),
        # Cross-round pre-warming moves scenario resolution and PFA
        # compilation out of a round's first batches, so a prewarmed
        # round must start at least as fast as a cold one (parity is
        # the floor; the overlap win rides on top).  Meaningless where
        # one core serialises the overlap — skipped there, like pool.
        "pipeline_prewarm_ci_floor": 1.0,
        "pipeline_prewarm_floor_met": (
            None
            if single_core
            else results["pipeline"]["speedup"] >= 1.0
        ),
        # The composed schedule's spawn floor is exact everywhere.
        "pipeline_no_respawn_met": (
            results["pipeline"]["pool_spawns"] == 1
        ),
        # A warm-server request must clearly beat paying interpreter
        # start + imports + pool spawn per campaign (the serve claim);
        # skipped where one core makes concurrent clients contend with
        # the workers themselves.
        "serve_ci_floor": 2.0,
        "serve_floor_met": (
            None if single_core else results["serve"]["speedup"] >= 2.0
        ),
        "detector_ci_floor": 5.0,
        "detector_floor_met": results["detector"]["speedup"] >= 5.0,
        "detector_batch_ci_floor": 1.5,
        "detector_batch_floor_met": (
            None
            if results["detector_batch"]["skipped_numpy"]
            else results["detector_batch"]["speedup"] >= 1.5
        ),
        "note": (
            "campaign/pool speedups need >= workers physical cores; "
            f"this machine has {os.cpu_count()}"
        ),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    shutdown_pools()  # deterministic teardown of the shared warm pool

    sampling, campaign, batched, pool, adaptive, pipeline, detector = (
        results["sampling"],
        results["campaign"],
        results["campaign_batched"],
        results["pool"],
        results["adaptive"],
        results["pipeline"],
        results["detector"],
    )
    print("== perf hot paths ==")
    print(
        f"sampling:  {sampling['legacy_patterns_per_sec']:>10.0f} -> "
        f"{sampling['compiled_patterns_per_sec']:>10.0f} patterns/s  "
        f"({sampling['speedup']}x)"
    )
    campaign_note = (
        "  [floor skipped: 1 core]"
        if campaign["skipped_parallel_floor"]
        else ""
    )
    print(
        f"campaign:  {campaign['serial_cells_per_sec']:>10.2f} -> "
        f"{campaign['parallel_cells_per_sec']:>10.2f} cells/s     "
        f"({campaign['speedup']}x at workers={campaign['workers']})"
        f"{campaign_note}"
    )
    print(
        f"batching:  {batched['per_cell_cells_per_sec']:>10.2f} -> "
        f"{batched['batched_cells_per_sec']:>10.2f} cells/s     "
        f"({batched['speedup']}x at batch_size={batched['batch_size']})"
    )
    faults = results["faults"]
    faults_note = (
        "  [floor skipped: 1 core]"
        if faults["skipped_parallel_floor"]
        else ""
    )
    print(
        f"faults:    {faults['clean_cells_per_sec']:>10.2f} -> "
        f"{faults['chaos_cells_per_sec']:>10.2f} cells/s     "
        f"({faults['overhead']}x overhead at kill_rate="
        f"{faults['kill_rate']}, rows bit-identical){faults_note}"
    )
    pool_note = (
        "  [floor skipped: 1 core]"
        if pool["skipped_parallel_floor"]
        else ""
    )
    print(
        f"pool:      {pool['cold_dispatch_cells_per_sec']:>10.2f} -> "
        f"{pool['warm_dispatch_cells_per_sec']:>10.2f} cells/s     "
        f"({pool['speedup']}x warm vs cold){pool_note}"
    )
    adaptive_note = (
        "  [timing floor skipped: 1 core]"
        if adaptive["skipped_parallel_floor"]
        else ""
    )
    print(
        f"adaptive:  {adaptive['cold_rounds_per_sec']:>10.2f} -> "
        f"{adaptive['warm_rounds_per_sec']:>10.2f} rounds/s    "
        f"({adaptive['speedup']}x warm vs cold, "
        f"pool_spawns={adaptive['pool_spawns']}){adaptive_note}"
    )
    pipeline_note = (
        "  [floor skipped: 1 core]"
        if pipeline["skipped_parallel_floor"]
        else ""
    )
    print(
        f"pipeline:  {pipeline['cold_round_start_ms']:>10.3f} -> "
        f"{pipeline['prewarmed_round_start_ms']:>10.3f} ms/round-start "
        f"({pipeline['speedup']}x prewarmed vs cold, "
        f"pool_spawns={pipeline['pool_spawns']}){pipeline_note}"
    )
    serve = results["serve"]
    serve_note = (
        "  [floor skipped: 1 core]"
        if serve["skipped_parallel_floor"]
        else ""
    )
    print(
        f"serve:     {serve['cold_process_ms']:>10.2f} -> "
        f"{serve['warm_request_ms_mean']:>10.2f} ms/request  "
        f"({serve['speedup']}x warm server vs cold process, "
        f"{serve['requests_per_sec']} req/s, "
        f"p50={serve['warm_request_ms_p50']} "
        f"p95={serve['warm_request_ms_p95']}){serve_note}"
    )
    print(
        f"detector:  {detector['rebuild_sweeps_per_sec']:>10.0f} -> "
        f"{detector['incremental_sweeps_per_sec']:>10.0f} sweeps/s   "
        f"({detector['speedup']}x)"
    )
    sampling_batch = results["sampling_batch"]
    detector_batch = results["detector_batch"]
    numpy_note = (
        "  [floor skipped: no numpy]"
        if sampling_batch["skipped_numpy"]
        else ""
    )
    print(
        f"batch-smp: {sampling_batch['scalar_patterns_per_sec']:>10.0f} -> "
        f"{sampling_batch['batch_patterns_per_sec']:>10.0f} patterns/s  "
        f"({sampling_batch['speedup']}x at cells="
        f"{sampling_batch['cells']}){numpy_note}"
    )
    merge_batch = results["merge_batch"]
    numpy_note = (
        "  [floor skipped: no numpy]"
        if merge_batch["skipped_numpy"]
        else ""
    )
    print(
        f"batch-mrg: {merge_batch['scalar_merges_per_sec']:>10.0f} -> "
        f"{merge_batch['array_merges_per_sec']:>10.0f} merges/s    "
        f"({merge_batch['speedup']}x at cells={merge_batch['cells']})"
        f"{numpy_note}"
    )
    commit_loop = results["commit_loop"]
    numpy_note = (
        "  [floor skipped: no numpy]"
        if commit_loop["skipped_numpy"]
        else ""
    )
    print(
        f"commit:    {commit_loop['scalar_commands_per_sec']:>10.0f} -> "
        f"{commit_loop['column_commands_per_sec']:>10.0f} commands/s  "
        f"({commit_loop['speedup']}x over {commit_loop['merges']} merges)"
        f"{numpy_note}"
    )
    numpy_note = (
        "  [floor skipped: no numpy]"
        if detector_batch["skipped_numpy"]
        else ""
    )
    print(
        f"batch-det: {detector_batch['scalar_snapshots_per_sec']:>10.0f} -> "
        f"{detector_batch['batch_snapshots_per_sec']:>10.0f} snapshots/s "
        f"({detector_batch['speedup']}x, "
        f"{detector_batch['cyclic_snapshots']} cyclic){numpy_note}"
    )
    print(f"json: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
