"""Shared helpers for the benchmark/experiment harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and both prints the rows and writes them
under ``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Return a function writing experiment output to file + stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        path = OUT_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {experiment_id} =====")
        print(text)

    return _emit


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Plain-text table with right-padded columns."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            " | ".join(
                value.ljust(width) for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)
