"""E10 — positioning: pTest vs ConTest-style random vs CHESS-lite.

The paper's introduction positions pTest against ConTest (random
interleaving noise) and CHESS (systematic exploration).  This bench
runs all three on the fault catalogue's schedule-sensitive faults and
reports detection rate and effort, plus the systematic explorer's
state-space blow-up as pattern size grows (the "not efficient when
searching infinite state spaces" point).  The benchmark times one
pTest catalogue sweep entry.
"""

from __future__ import annotations

import os

from repro.baselines.systematic import SystematicExplorer, interleavings
from repro.ptest.campaign import Campaign
from repro.ptest.generator import PatternGenerator
from repro.ptest.patterns import TestPattern
from repro.workloads.scenarios import lifecycle_pfa, philosophers_case2

from conftest import format_table

SEEDS = range(5)
WORKERS = min(4, os.cpu_count() or 1)


def _sweep_rows():
    """pTest and random sweeps dispatched through the campaign executor
    as registry ScenarioRef variants (always process-pool portable)."""
    campaign = Campaign(seeds=tuple(SEEDS), workers=WORKERS)
    campaign.add_scenario("ptest", "philosophers", op="cyclic")
    campaign.add_scenario("random", "philosophers_random")
    campaign.run()
    labels = {
        "ptest": "pTest (adaptive)",
        "random": "ConTest-style random",
    }
    rows = []
    for variant, runs in campaign.results.items():
        found = sum(int(run.found_bug) for run in runs)
        commands = sum(run.commands_issued for run in runs)
        rows.append(
            (labels[variant], f"{found}/{len(runs)}", f"{commands} commands")
        )
    return rows


def _systematic_row():
    found = runs = 0
    for seed in SEEDS:
        scenario = philosophers_case2(seed=seed)
        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=seed
        )
        explorer = SystematicExplorer(
            config=scenario.config,
            patterns=generator.generate_batch(3, 3),
            programs=dict(scenario.programs),
            switch_bound=4,
            max_runs=30,
        )
        result = explorer.explore()
        found += int(result.found_bug)
        runs += result.executed
    return (
        "CHESS-lite systematic",
        f"{found}/{len(list(SEEDS))}",
        f"{runs} full runs",
    )


def _blowup_rows():
    rows = []
    for size in (2, 3, 4, 5):
        patterns = [
            TestPattern(
                pattern_id=i, symbols=tuple(f"s{j}" for j in range(size))
            )
            for i in range(3)
        ]
        count = sum(1 for _ in interleavings(patterns, limit=100_000))
        rows.append((f"3 patterns x {size}", count))
    return rows


def test_baseline_comparison(benchmark, emit):
    detection = _sweep_rows() + [_systematic_row()]
    blowup = _blowup_rows()
    text = (
        "dining-philosophers fault, detection over "
        + f"{len(list(SEEDS))} seeds:\n"
        + format_table(["tester", "found", "effort"], detection)
        + "\n\nsystematic state-space growth (interleavings to enumerate,"
        + "\ncapped at 100000):\n"
        + format_table(["input", "interleavings"], blowup)
        + "\n\nshape vs paper: the adaptive tool finds the deadlock with a"
        + "\nsmall command budget; unstructured noise wastes its budget on"
        + "\nillegal sequences; bounded systematic search is complete on"
        + "\ntiny inputs but its interleaving count explodes factorially."
    )
    emit("E10_baselines", text)

    assert detection[0][1] == f"{len(list(SEEDS))}/{len(list(SEEDS))}"
    assert blowup[-1][1] > blowup[0][1] * 50

    benchmark.pedantic(
        lambda: philosophers_case2(seed=0, op="cyclic").run(),
        rounds=3,
        iterations=1,
    )
