"""E11 — Section II-A's coverage remark, quantified.

"The effects of code coverage influences the quality of fault
detection."  This bench measures PFA-transition and service-pair
coverage as the pattern budget grows, and correlates coverage with
detection of the GC-leak fault at small budgets.  The benchmark times
coverage computation over a large batch.
"""

from __future__ import annotations

from repro.analysis.coverage import (
    pattern_transition_coverage,
    service_pair_coverage,
)
from repro.ptest.config import PTestConfig
from repro.ptest.detector import AnomalyKind
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import pcore_pfa
from repro.workloads.scenarios import stress_case1

from conftest import format_table


def test_coverage_growth(benchmark, emit):
    pfa = pcore_pfa()
    rows = []
    for count in (1, 2, 4, 8, 16, 64):
        generator = PatternGenerator.from_pfa(pfa, seed=3)
        batch = [p.symbols for p in generator.generate_batch(count, 8)]
        transition = pattern_transition_coverage(pfa, batch)
        pairs = service_pair_coverage(pfa, batch)
        rows.append(
            (
                count,
                f"{100 * transition.fraction:.0f}%",
                len(transition.missing),
                f"{100 * pairs.fraction:.0f}%",
            )
        )

    # Detection at small budgets: fewer patterns -> less churn -> the
    # GC crash needs more rounds (or escapes the budget entirely).
    detection_rows = []
    for pairs_count in (2, 4, 8, 16):
        result = stress_case1(seed=0, max_ticks=40_000)
        result.config = PTestConfig(
            **{
                **result.config.__dict__,
                "pattern_count": pairs_count,
            }
        )
        run = result.run()
        found = (
            run.found_bug and run.report.primary.kind is AnomalyKind.CRASH
        )
        detection_rows.append(
            (
                pairs_count,
                "crash" if found else "none",
                run.report.primary.detected_at if found else "-",
                run.commands_issued,
            )
        )

    text = (
        "PFA coverage vs pattern budget (s=8, Fig. 5 distribution):\n"
        + format_table(
            [
                "patterns",
                "transition coverage",
                "transitions missed",
                "service-pair coverage",
            ],
            rows,
        )
        + "\n\nGC-crash detection vs concurrency (buggy GC, 40k tick budget):\n"
        + format_table(
            ["pairs (n)", "found", "detect tick", "commands"], detection_rows
        )
        + "\n\nshape: coverage saturates quickly with patterns; fault"
        + "\nexposure keeps improving with concurrency (n) — load, not"
        + "\njust model coverage, drives the stress result (Section II-A)."
    )
    emit("E11_coverage", text)

    assert rows[-1][1] == "100%"

    generator = PatternGenerator.from_pfa(pfa, seed=1)
    batch = [p.symbols for p in generator.generate_batch(256, 8)]

    def compute_coverage():
        pattern_transition_coverage(pfa, batch)
        service_pair_coverage(pfa, batch)

    benchmark(compute_coverage)
