"""E8 — future work: influence of the probability distribution.

The paper: "we plan to identify the influence of probability
distributions on the generation of test pattern for different testing
scenarios."  This bench closes that loop on the GC-leak fault: the
crash needs task_delete to land on still-running tasks, so
distributions biased toward early termination churn find it faster
than suspend-heavy ones.  Reports time-to-detection per distribution
across seeds.  The benchmark times one churn-heavy crash discovery.
"""

from __future__ import annotations

import statistics

from repro.automata.analysis import expected_pattern_length, mean_entropy
from repro.ptest.detector import AnomalyKind
from repro.ptest.pcore_model import (
    pcore_pfa,
    reweighted_pcore_pfa,
    uniform_pcore_pfa,
)
from repro.workloads.scenarios import stress_case1

from conftest import format_table

SEEDS = range(4)

DISTRIBUTIONS = {
    "paper (Fig. 5)": pcore_pfa,
    "uniform": uniform_pcore_pfa,
    "churn-heavy": lambda: reweighted_pcore_pfa(
        {("TC", "TD"): 0.5, ("TC", "TCH"): 0.3}
    ),
    "suspend-heavy": lambda: reweighted_pcore_pfa(
        {
            ("TC", "TS"): 0.6, ("TC", "TCH"): 0.2,
            ("TC", "TD"): 0.1, ("TC", "TY"): 0.1,
            ("TR", "TS"): 0.5, ("TR", "TCH"): 0.3,
            ("TR", "TD"): 0.1, ("TR", "TY"): 0.1,
        }
    ),
}


def _run_with_distribution(make_pfa, seed: int):
    test = stress_case1(seed=seed, max_ticks=120_000)
    test.pfa = make_pfa()
    return test.run()


def test_distribution_influence(benchmark, emit):
    rows = []
    for name, make_pfa in DISTRIBUTIONS.items():
        pfa = make_pfa()
        ticks, found = [], 0
        for seed in SEEDS:
            result = _run_with_distribution(make_pfa, seed)
            if (
                result.found_bug
                and result.report.primary.kind is AnomalyKind.CRASH
            ):
                found += 1
                ticks.append(result.report.primary.detected_at)
        rows.append(
            (
                name,
                f"{expected_pattern_length(pfa):.2f}",
                f"{mean_entropy(pfa):.2f}",
                f"{found}/{len(list(SEEDS))}",
                f"{statistics.mean(ticks):.0f}" if ticks else "> budget",
            )
        )

    text = (
        "GC-leak crash vs pattern distribution (16 pairs, buggy GC):\n"
        + format_table(
            [
                "distribution",
                "E[lifecycle]",
                "mean entropy",
                "crashes found",
                "mean detect tick",
            ],
            rows,
        )
        + "\n\nshape: shorter expected lifecycles (more TD churn) leak"
        + "\nfaster and crash sooner; suspend-heavy patterns spend their"
        + "\nbudget parking tasks and delay the crash. The paper's"
        + "\nprofiled distribution sits between the extremes."
    )
    emit("E8_distribution_influence", text)

    by_name = {row[0]: row for row in rows}
    assert by_name["churn-heavy"][3] != "0/4"

    benchmark.pedantic(
        lambda: _run_with_distribution(DISTRIBUTIONS["churn-heavy"], 0),
        rounds=2,
        iterations=1,
    )
