"""A1 — ablation: context-switch cost (pCore's multiset context switch).

pCore's design (the paper's reference [9], "Enhancing microkernel
performance on VLIW DSP processors via multiset context switch") exists
to make context switches cheap.  This bench shows why that matters for
pTest-style stress loads: pipeline completion time versus per-switch
cost on the IPC pipeline, whose throughput is context-switch bound.
The benchmark times a zero-cost pipeline run.
"""

from __future__ import annotations

from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.sim.memory import SharedMemory
from repro.workloads.pipeline import build_pipeline, run_pipeline_to_completion

from conftest import format_table

COSTS = (0, 1, 2, 4, 8, 16)


def _run(cost: int, stages: int = 3, count: int = 32) -> tuple[int, int]:
    kernel = PCoreKernel(
        config=KernelConfig(context_switch_cost=cost),
        shared_memory=SharedMemory(size=16 * 1024),
    )
    build_pipeline(kernel, stages=stages, count=count)
    ticks = run_pipeline_to_completion(kernel)
    return ticks, kernel.context_switches


def test_context_switch_ablation(benchmark, emit):
    rows = []
    baseline = None
    for cost in COSTS:
        ticks, switches = _run(cost)
        if baseline is None:
            baseline = ticks
        rows.append(
            (
                cost,
                ticks,
                switches,
                f"{ticks / baseline:.2f}x",
                f"{(ticks - baseline) / max(switches, 1):.1f}",
            )
        )

    text = (
        "3-stage IPC pipeline, 32 items, capacity-2 queues:\n"
        + format_table(
            [
                "switch cost (steps)",
                "completion ticks",
                "switches",
                "slowdown",
                "overhead/switch",
            ],
            rows,
        )
        + "\n\nshape: the schedule (switch count) is invariant; completion"
        + "\ntime grows linearly with per-switch cost — quantifying why"
        + "\npCore's multiset context switch (paper ref. [9]) targets"
        + "\nexactly this constant."
    )
    emit("A1_context_switch", text)

    ticks_by_cost = {row[0]: row[1] for row in rows}
    assert ticks_by_cost[16] > ticks_by_cost[0] * 3
    switch_counts = {row[2] for row in rows}
    assert len(switch_counts) == 1  # same schedule across costs

    benchmark(lambda: _run(0))
