"""E5 — Test case 1: stress test, 16 quicksort tasks, GC crash.

Regenerates the paper's first fault-discovery study: with the buggy
garbage collector the create/delete churn leaks mid-flight kills until
task_create fails and pCore panics; with the fixed collector the same
churn runs clean.  Reports time-to-detection across seeds plus leak
accounting.  The benchmark times one full crash-finding run.
"""

from __future__ import annotations

import statistics

from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import stress_case1

from conftest import format_table

SEEDS = range(5)


def test_case1_stress(benchmark, emit):
    rows = []
    detection_ticks = []
    for seed in SEEDS:
        result = stress_case1(seed=seed).run()
        assert result.found_bug, f"seed {seed}: crash not found"
        anomaly = result.report.primary
        assert anomaly.kind is AnomalyKind.CRASH
        detection_ticks.append(anomaly.detected_at)
        rows.append(
            (
                seed,
                anomaly.detected_at,
                result.rounds,
                result.commands_issued,
                result.report.kernel_panic.split("(")[-1].rstrip(")"),
            )
        )

    control = stress_case1(seed=0, buggy_gc=False, max_ticks=30_000).run()
    assert not control.found_bug

    text = (
        "buggy GC (paper's pCore): crash found on every seed\n"
        + format_table(
            ["seed", "detect tick", "rounds", "commands", "leak accounting"],
            rows,
        )
        + f"\n\nmean time-to-detection: "
        + f"{statistics.mean(detection_ticks):.0f} ticks "
        + f"(stdev {statistics.pstdev(detection_ticks):.0f})"
        + "\n\ncontrol (fixed GC, same churn): "
        + f"{control.summary()} — no crash"
        + "\n\nshape vs paper: pTest's churn finds the GC crash during the"
        + "\nfirst stress period on every seed; the fix eliminates it."
    )
    emit("E5_case1_stress", text)

    benchmark.pedantic(
        lambda: stress_case1(seed=0).run(), rounds=3, iterations=1
    )
