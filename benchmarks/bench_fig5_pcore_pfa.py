"""E3 — Fig. 5 + RE (2): the pCore PFA and its pattern generator.

Regenerates the figure as its transition table (all 13 labelled edges +
the start arc with the paper's probabilities), then characterises the
generator built on it: every sampled pattern re-validates against
RE (2), lifecycle length distribution, expected length from the
fundamental matrix, and per-service issue frequencies.  The benchmark
times Algorithm 2 (pattern generation) on the pCore PFA.
"""

from __future__ import annotations

from collections import Counter

from repro.automata.analysis import expected_pattern_length
from repro.automata.sampling import PatternSampler
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_pfa,
)

from conftest import format_table

SAMPLES = 5_000


def test_fig5_pcore_pfa(benchmark, emit):
    pfa = pcore_pfa()
    edge_labels = "-abcdefghijklm"  # index 0 = unlabelled start arc
    rows = []
    index = 0
    for state in range(pfa.num_states):
        for transition in pfa.outgoing(state):
            pass
    # Preserve the documented edge order (module constant order).
    from repro.ptest.pcore_model import PCORE_EDGES

    for index, (source, symbol, target, probability) in enumerate(PCORE_EDGES):
        rows.append(
            (
                edge_labels[index] if index else "(start)",
                pfa.label(source),
                symbol,
                pfa.label(target),
                f"{probability:.1f}",
            )
        )

    # Validate every sample against the RE (2) structural automaton.
    structural = PatternGenerator(
        regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
    )
    sampler = PatternSampler(pfa, seed=11)
    lengths: Counter[int] = Counter()
    services: Counter[str] = Counter()
    valid = 0
    for _ in range(SAMPLES):
        walk = sampler.sample_to_final()
        if structural.dfa.accepts_word(list(walk.symbols)):
            valid += 1
        lengths[len(walk.symbols)] += 1
        services.update(walk.symbols)

    mean_length = sum(k * v for k, v in lengths.items()) / SAMPLES
    analytic = expected_pattern_length(pfa)
    total_services = sum(services.values())
    service_rows = [
        (symbol, services[symbol], f"{services[symbol] / total_services:.3f}")
        for symbol in PCORE_SERVICES
    ]
    length_rows = [
        (length, count, f"{count / SAMPLES:.3f}")
        for length, count in sorted(lengths.items())[:8]
    ]

    # Exact equivalence proof: the Fig. 5 PFA's support language is
    # precisely the language of RE (2) (product-construction check).
    from repro.automata.operations import equivalent, pfa_support_dfa

    formally_equal = equivalent(structural.dfa, pfa_support_dfa(pfa))

    text = (
        "Fig. 5 transition table (paper probabilities):\n"
        + format_table(["edge", "from", "symbol", "to", "P"], rows)
        + f"\n\nRE (2): {PCORE_REGULAR_EXPRESSION}"
        + f"\nformal language equivalence (product construction): "
        + ("PROVEN" if formally_equal else "FAILED")
        + f"\nsampled lifecycles: {SAMPLES}, RE-valid: {valid} "
        + f"({100 * valid / SAMPLES:.1f}% — must be 100%)"
        + f"\nmean lifecycle length: {mean_length:.2f} services "
        + f"(analytic fundamental-matrix value: {analytic:.2f})"
        + "\n\nlifecycle length distribution (head):\n"
        + format_table(["length", "count", "fraction"], length_rows)
        + "\n\nservice issue mix:\n"
        + format_table(["service", "count", "share"], service_rows)
    )
    emit("E3_fig5_pcore_pfa", text)

    assert formally_equal
    assert valid == SAMPLES
    assert abs(mean_length - analytic) < 0.2

    generator = PatternGenerator.from_pfa(pcore_pfa(), seed=5)

    def algorithm2_batch():
        generator.generate_batch(16, 8)

    benchmark(algorithm2_batch)
