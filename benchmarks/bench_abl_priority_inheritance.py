"""A2 — ablation: mutex priority inheritance vs priority inversion.

The classic low-locker / medium-hog / high-waiter triple on the pCore
model: without inheritance the high-priority task's lock acquisition
waits out the hog's entire burst; with the kernel's
``priority_inheritance`` switch the low owner is boosted and the high
task completes ~20x earlier.  Sweeps the hog's burst length.  The
benchmark times one inversion scenario run.
"""

from __future__ import annotations

from repro.workloads.scenarios import (
    high_task_completion_tick,
    priority_inversion_scenario,
)

from conftest import format_table

HOG_BURSTS = (500, 1_500, 3_000, 6_000)


def _completion(inheritance: bool, hog_steps: int) -> int:
    test = priority_inversion_scenario(
        seed=0,
        inheritance=inheritance,
        hog_steps=hog_steps,
        max_ticks=4 * hog_steps + 4_000,
    )
    test.run()
    tick = high_task_completion_tick(test)
    assert tick is not None, "high task never completed"
    return tick


def test_priority_inheritance_ablation(benchmark, emit):
    rows = []
    for hog_steps in HOG_BURSTS:
        without = _completion(False, hog_steps)
        with_pi = _completion(True, hog_steps)
        rows.append(
            (
                hog_steps,
                without,
                with_pi,
                f"{without / with_pi:.1f}x",
            )
        )

    text = (
        "high-priority task completion tick (lower is better):\n"
        + format_table(
            [
                "hog burst (steps)",
                "no inheritance",
                "with inheritance",
                "speedup",
            ],
            rows,
        )
        + "\n\nshape: without inheritance the critical task's latency"
        + "\ntracks the medium hog's burst length (classic inversion);"
        + "\nwith inheritance it tracks only the low owner's short"
        + "\ncritical section, independent of the hog."
    )
    emit("A2_priority_inheritance", text)

    for hog_steps, without, with_pi, _speedup in rows:
        assert with_pi * 3 < without
    # Inheritance latency is hog-independent; inversion latency is not.
    with_pi_values = [row[2] for row in rows]
    assert max(with_pi_values) - min(with_pi_values) < 100
    without_values = [row[1] for row in rows]
    assert without_values[-1] > without_values[0] * 3

    benchmark.pedantic(
        lambda: _completion(True, 1_500), rounds=3, iterations=1
    )
